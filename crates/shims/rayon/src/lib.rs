//! Minimal, **sequential** drop-in shim for the subset of the `rayon` API
//! this workspace uses.
//!
//! The build environment has no crates.io access, so the real work-stealing
//! thread pool is replaced by plain `std` iterators: `into_par_iter()` /
//! `par_iter()` simply hand back the corresponding sequential iterator, and
//! every downstream adaptor (`map`, `filter_map`, `all`, `sum`,
//! `min_by_key`, `collect`, …) is the ordinary [`Iterator`] machinery.
//!
//! Semantics are identical to rayon's for the combinators used here (rayon
//! guarantees deterministic results for these adaptors); only the wall-clock
//! scaling across cores is lost.  The workspace's hot paths get their speed
//! from 64-lane bit-parallel evaluation instead (see
//! `sortnet_network::bitparallel` and `sortnet_faults::bitsim`), which is
//! orthogonal to thread-level parallelism.

/// The rayon prelude: parallel-iterator conversion traits.
pub mod prelude {
    /// Conversion into a "parallel" iterator (sequential in this shim).
    pub trait IntoParallelIterator {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator (sequentially evaluated).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Rayon-only adaptors that have no [`Iterator`] counterpart, provided
    /// for every sequential iterator so call sites need no changes.
    pub trait ParallelIterator: Iterator + Sized {
        /// Rayon's `flat_map_iter`: sequentially identical to `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Rayon's `find_map_first`: the first (in iterator order) mapped
        /// `Some`.  Sequentially this is exactly `Iterator::find_map`, which
        /// also short-circuits — callers keep their early exit under the
        /// shim.
        fn find_map_first<U, F>(mut self, f: F) -> Option<U>
        where
            F: FnMut(Self::Item) -> Option<U>,
        {
            self.find_map(f)
        }
    }

    impl<I: Iterator> ParallelIterator for I {}

    /// `par_iter()` on collections borrowed by reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (a shared reference).
        type Item: 'data;
        /// Iterates `self` by reference (sequentially evaluated).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C> IntoParallelRefIterator<'data> for C
    where
        C: ?Sized + 'data,
        &'data C: IntoParallelIterator,
    {
        type Iter = <&'data C as IntoParallelIterator>::Iter;
        type Item = <&'data C as IntoParallelIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_par_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_slices_behave_like_std_iterators() {
        let sum: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 9900);
        let v = vec![3, 1, 2];
        let collected: Vec<i32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(collected, vec![4, 2, 3]);
        let smallest_multiple = (1u64..50)
            .into_par_iter()
            .filter_map(|x| if x % 7 == 0 { Some(x * 10) } else { None })
            .min_by_key(|&x| x);
        assert_eq!(smallest_multiple, Some(70));
        assert!((0u32..10).into_par_iter().all(|x| x < 10));
    }
}
