//! Minimal drop-in shim for the subset of the `rayon` API this workspace
//! uses, backed by a real `std::thread::scope` pool.
//!
//! The build environment has no crates.io access, so rayon's work-stealing
//! deque is replaced by the simplest scheme that actually parallelises:
//! **chunked work-splitting**.  A parallel iterator is a lazily composed
//! pipeline over a splittable *source* (an integer range or a slice);
//! adaptors (`map`, `filter`, `filter_map`, `flat_map_iter`) stack without
//! evaluating anything, and every consumer (`sum`, `collect`, `all`,
//! `find_map_first`, `min_by_key`) splits the source into one contiguous
//! chunk per worker, runs the chunks on scoped threads, and merges the
//! per-chunk results in source order — so results are deterministic and
//! identical to the sequential evaluation, exactly as rayon guarantees for
//! these combinators.
//!
//! Worker count: the `RAYON_NUM_THREADS` environment variable if set (the
//! same knob real rayon honours), otherwise `available_parallelism()`.
//! The variable is only ever *read* (at consume time) — mutating the
//! process environment at runtime is a data race under the multithreaded
//! test harness and unsound in Rust 2024, so tests that need a specific
//! worker count inject it per pipeline with
//! [`ParIter::with_max_threads`] instead of `std::env::set_var`.
//! Pipelines over sources with fewer than two items, or with a single
//! worker, run inline on the calling thread with no spawn overhead.
//!
//! Order-sensitive consumers keep their sequential semantics:
//! `find_map_first` returns the match from the earliest source position
//! (later chunks cancel themselves once an earlier chunk has found one),
//! and `all` cancels all chunks on the first counter-example.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of worker threads a consumer may spawn.
fn pool_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of worker threads a consumer started right now would use:
/// the `RAYON_NUM_THREADS` environment variable if set, otherwise the
/// machine's available parallelism — real rayon's `current_num_threads`.
///
/// Callers that partition external state per worker (e.g. per-chunk
/// budget meters) use this to size their partitions to the pool.
#[must_use]
pub fn current_num_threads() -> usize {
    pool_threads()
}

/// A splittable, sequentially drainable work source: the root of every
/// parallel pipeline and the unit handed to worker threads.
pub trait ParallelSource: Send + Sized {
    /// The element type produced.
    type Item: Send;
    /// The sequential iterator a chunk drains into.
    type Iter: Iterator<Item = Self::Item>;

    /// Number of *source* items (an upper bound on produced items for
    /// filtering pipelines; only used to balance chunk sizes).
    fn len(&self) -> usize;

    /// `true` when the source holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `index` source items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Converts the (chunk) source into a sequential iterator.
    fn into_seq(self) -> Self::Iter;
}

macro_rules! range_source {
    ($t:ty) => {
        impl ParallelSource for std::ops::Range<$t> {
            type Item = $t;
            type Iter = Self;

            fn len(&self) -> usize {
                if self.end <= self.start {
                    0
                } else {
                    usize::try_from(self.end - self.start).unwrap_or(usize::MAX)
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start.saturating_add(index as $t).min(self.end);
                (self.start..mid, mid..self.end)
            }

            fn into_seq(self) -> Self::Iter {
                self
            }
        }
    };
}

range_source!(u32);
range_source!(u64);
range_source!(usize);

impl<'data, T: Sync> ParallelSource for &'data [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn len(&self) -> usize {
        (*self).len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        self.split_at(index)
    }

    fn into_seq(self) -> Self::Iter {
        self.iter()
    }
}

/// An owned `Vec` as a work source.
pub struct VecSource<T>(Vec<T>);

impl<T: Send> ParallelSource for VecSource<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index.min(self.0.len()));
        (self, VecSource(tail))
    }

    fn into_seq(self) -> Self::Iter {
        self.0.into_iter()
    }
}

/// Lazy `map` stage.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelSource for Map<P, F>
where
    P: ParallelSource,
    F: FnMut(P::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type Iter = std::iter::Map<P::Iter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.base.into_seq().map(self.f)
    }
}

/// Lazy `filter` stage.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelSource for Filter<P, F>
where
    P: ParallelSource,
    F: FnMut(&P::Item) -> bool + Clone + Send,
{
    type Item = P::Item;
    type Iter = std::iter::Filter<P::Iter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Filter {
                base: a,
                f: self.f.clone(),
            },
            Filter { base: b, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.base.into_seq().filter(self.f)
    }
}

/// Lazy `filter_map` stage.
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelSource for FilterMap<P, F>
where
    P: ParallelSource,
    F: FnMut(P::Item) -> Option<R> + Clone + Send,
    R: Send,
{
    type Item = R;
    type Iter = std::iter::FilterMap<P::Iter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            FilterMap {
                base: a,
                f: self.f.clone(),
            },
            FilterMap { base: b, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.base.into_seq().filter_map(self.f)
    }
}

/// Lazy `flat_map_iter` stage.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> ParallelSource for FlatMapIter<P, F>
where
    P: ParallelSource,
    F: FnMut(P::Item) -> U + Clone + Send,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;
    type Iter = std::iter::FlatMap<P::Iter, U, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            FlatMapIter {
                base: a,
                f: self.f.clone(),
            },
            FlatMapIter { base: b, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.base.into_seq().flat_map(self.f)
    }
}

/// Splits `source` into `chunks` contiguous pieces of near-equal length,
/// in source order.
fn split_even<P: ParallelSource>(source: P, chunks: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(chunks);
    let mut rest = source;
    for remaining in (1..chunks).rev() {
        let cut = rest.len().div_ceil(remaining + 1);
        let (head, tail) = rest.split_at(cut);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

/// Runs `consume` over one chunk per worker on scoped threads, returning
/// the per-chunk results in source order.  Falls back to a single inline
/// call when the source is trivial or only one worker is available.
fn run_chunks<P, R, F>(threads: usize, source: P, consume: F) -> Vec<R>
where
    P: ParallelSource,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    let threads = threads.max(1).min(source.len());
    if threads <= 1 {
        return vec![consume(0, source)];
    }
    let chunks = split_even(source, threads);
    std::thread::scope(|scope| {
        let consume = &consume;
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || consume(i, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// A parallel iterator: a lazily composed pipeline over a splittable
/// source.  Adaptors stack without evaluating; consumers split the source
/// into per-worker chunks and merge the results in source order.
pub struct ParIter<P> {
    source: P,
    /// Worker-count cap injected by [`ParIter::with_max_threads`];
    /// `None` defers to [`pool_threads`] at consume time.
    max_threads: Option<usize>,
}

impl<P: ParallelSource> ParIter<P> {
    /// Caps the worker threads this pipeline's consumer may spawn — the
    /// injectable form of the `RAYON_NUM_THREADS` knob, used by tests to
    /// pin the worker count without mutating the process environment
    /// (which would race the multithreaded test harness).
    #[must_use]
    pub fn with_max_threads(mut self, threads: usize) -> Self {
        self.max_threads = Some(threads.max(1));
        self
    }

    /// The worker count the consumers use: the injected cap, else the
    /// environment/CPU default.
    fn threads(&self) -> usize {
        self.max_threads.unwrap_or_else(pool_threads)
    }

    /// Maps every item through `f` (rayon's `map`).
    pub fn map<R, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        F: FnMut(P::Item) -> R + Clone + Send,
        R: Send,
    {
        let max_threads = self.max_threads;
        ParIter {
            source: Map {
                base: self.source,
                f,
            },
            max_threads,
        }
    }

    /// Keeps the items satisfying `f` (rayon's `filter`).
    pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
    where
        F: FnMut(&P::Item) -> bool + Clone + Send,
    {
        let max_threads = self.max_threads;
        ParIter {
            source: Filter {
                base: self.source,
                f,
            },
            max_threads,
        }
    }

    /// Maps and filters in one stage (rayon's `filter_map`).
    pub fn filter_map<R, F>(self, f: F) -> ParIter<FilterMap<P, F>>
    where
        F: FnMut(P::Item) -> Option<R> + Clone + Send,
        R: Send,
    {
        let max_threads = self.max_threads;
        ParIter {
            source: FilterMap {
                base: self.source,
                f,
            },
            max_threads,
        }
    }

    /// Rayon's `flat_map_iter`: expands each item into a sequential
    /// iterator, keeping the expansion on the worker that produced it.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<FlatMapIter<P, F>>
    where
        F: FnMut(P::Item) -> U + Clone + Send,
        U: IntoIterator,
        U::Item: Send,
    {
        let max_threads = self.max_threads;
        ParIter {
            source: FlatMapIter {
                base: self.source,
                f,
            },
            max_threads,
        }
    }

    /// Sums the items across all workers.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let threads = self.threads();
        run_chunks(threads, self.source, |_, chunk| chunk.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Collects the items, preserving source order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let threads = self.threads();
        run_chunks(threads, self.source, |_, chunk| {
            chunk.into_seq().collect::<Vec<P::Item>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// `true` when every item satisfies `f`; all chunks cancel as soon as
    /// any worker finds a counter-example.
    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Sync,
    {
        let threads = self.threads();
        let failed = AtomicBool::new(false);
        let verdicts = run_chunks(threads, self.source, |_, chunk| {
            for item in chunk.into_seq() {
                if failed.load(Ordering::Relaxed) {
                    // Another chunk already failed; our verdict is moot.
                    return true;
                }
                if !f(item) {
                    failed.store(true, Ordering::Relaxed);
                    return false;
                }
            }
            true
        });
        verdicts.into_iter().all(|v| v)
    }

    /// Rayon's `find_map_first`: the mapped `Some` of the earliest source
    /// position.  Chunks later than an already-successful chunk cancel
    /// themselves; earlier chunks run on, so the result equals the
    /// sequential `find_map`.
    pub fn find_map_first<R, F>(self, f: F) -> Option<R>
    where
        F: Fn(P::Item) -> Option<R> + Sync,
        R: Send,
    {
        let threads = self.threads();
        let best_chunk = AtomicUsize::new(usize::MAX);
        let candidates = run_chunks(threads, self.source, |idx, chunk| {
            for (pos, item) in chunk.into_seq().enumerate() {
                // Periodically bail out once an earlier chunk has a match.
                if pos % 64 == 0 && best_chunk.load(Ordering::Relaxed) < idx {
                    return None;
                }
                if let Some(r) = f(item) {
                    best_chunk.fetch_min(idx, Ordering::Relaxed);
                    return Some(r);
                }
            }
            None
        });
        candidates.into_iter().flatten().next()
    }

    /// The item with the minimum key (the first such item on ties, matching
    /// `Iterator::min_by_key`: per-chunk minima are reduced in source
    /// order).
    pub fn min_by_key<K, F>(self, f: F) -> Option<P::Item>
    where
        K: Ord,
        F: Fn(&P::Item) -> K + Sync,
    {
        let threads = self.threads();
        run_chunks(threads, self.source, |_, chunk| {
            chunk.into_seq().min_by_key(&f)
        })
        .into_iter()
        .flatten()
        .min_by_key(&f)
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The splittable source the pipeline is rooted at.
    type Source: ParallelSource<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

macro_rules! range_into_par {
    ($t:ty) => {
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Source = Self;
            fn into_par_iter(self) -> ParIter<Self> {
                ParIter {
                    source: self,
                    max_threads: None,
                }
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            type Source = std::ops::Range<$t>;
            fn into_par_iter(self) -> ParIter<Self::Source> {
                let (start, end) = (*self.start(), *self.end());
                // Saturating: an inclusive range reaching T::MAX is not a
                // shape this workspace produces.
                ParIter {
                    source: start..end.saturating_add(1),
                    max_threads: None,
                }
            }
        }
    };
}

range_into_par!(u32);
range_into_par!(u64);
range_into_par!(usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;
    fn into_par_iter(self) -> ParIter<Self::Source> {
        ParIter {
            source: VecSource(self),
            max_threads: None,
        }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Source = &'data [T];
    fn into_par_iter(self) -> ParIter<Self::Source> {
        ParIter {
            source: self,
            max_threads: None,
        }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Source = &'data [T];
    fn into_par_iter(self) -> ParIter<Self::Source> {
        ParIter {
            source: self.as_slice(),
            max_threads: None,
        }
    }
}

/// `par_iter()` on collections borrowed by reference.
pub trait IntoParallelRefIterator<'data> {
    /// The splittable source the pipeline is rooted at.
    type Source: ParallelSource;
    /// Iterates `self` by reference, in parallel.
    fn par_iter(&'data self) -> ParIter<Self::Source>;
}

impl<'data, C> IntoParallelRefIterator<'data> for C
where
    C: ?Sized + 'data,
    &'data C: IntoParallelIterator,
{
    type Source = <&'data C as IntoParallelIterator>::Source;
    fn par_iter(&'data self) -> ParIter<Self::Source> {
        self.into_par_iter()
    }
}

/// The rayon prelude: parallel-iterator conversion traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelSource};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn ranges_and_slices_behave_like_std_iterators() {
        let sum: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 9900);
        let v = vec![3, 1, 2];
        let collected: Vec<i32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(collected, vec![4, 2, 3]);
        let smallest_multiple = (1u64..50)
            .into_par_iter()
            .filter_map(|x| if x % 7 == 0 { Some(x * 10) } else { None })
            .min_by_key(|&x| x);
        assert_eq!(smallest_multiple, Some(70));
        assert!((0u32..10).into_par_iter().all(|x| x < 10));
        assert!(!(0u32..10).into_par_iter().all(|x| x < 9));
    }

    #[test]
    fn work_actually_lands_on_multiple_threads() {
        // The worker count is injected per pipeline — no process-global
        // environment mutation, which would race the multithreaded test
        // harness (and `set_var` is unsound in Rust 2024).
        let ids: HashSet<std::thread::ThreadId> = (0..1024usize)
            .into_par_iter()
            .with_max_threads(4)
            .map(|_| std::thread::current().id())
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        assert!(
            ids.len() >= 2,
            "expected work on ≥ 2 threads, saw {}",
            ids.len()
        );
    }

    #[test]
    fn a_single_injected_worker_runs_inline() {
        let ids: HashSet<std::thread::ThreadId> = (0..1024usize)
            .into_par_iter()
            .with_max_threads(1)
            .map(|_| std::thread::current().id())
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        assert_eq!(ids.len(), 1);
        assert!(ids.contains(&std::thread::current().id()));
    }

    #[test]
    fn injected_thread_cap_survives_adaptor_stacking() {
        // with_max_threads before or after the adaptors must pin the same
        // worker count (the cap travels with the pipeline).
        fn check(pairs: Vec<(usize, std::thread::ThreadId)>, cap_first: bool) {
            let ids: HashSet<_> = pairs.iter().map(|(_, id)| *id).collect();
            assert!(
                (1..=3).contains(&ids.len()),
                "cap_first={cap_first}: saw {} threads",
                ids.len()
            );
            assert_eq!(
                pairs.iter().map(|(x, _)| *x).collect::<Vec<_>>(),
                (0..512).collect::<Vec<_>>()
            );
        }
        check(
            (0..512usize)
                .into_par_iter()
                .with_max_threads(3)
                .map(|x| (x, std::thread::current().id()))
                .collect(),
            true,
        );
        check(
            (0..512usize)
                .into_par_iter()
                .map(|x| (x, std::thread::current().id()))
                .with_max_threads(3)
                .collect(),
            false,
        );
    }

    #[test]
    fn collect_preserves_source_order_across_chunks() {
        let out: Vec<u64> = (0u64..10_000)
            .into_par_iter()
            .with_max_threads(4)
            .map(|x| x * 3)
            .collect();
        let expected: Vec<u64> = (0u64..10_000).map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn find_map_first_returns_the_earliest_match() {
        // Matches exist in every chunk; the earliest must win.
        let first = (0u64..100_000)
            .into_par_iter()
            .with_max_threads(4)
            .find_map_first(|x| if x % 97 == 13 { Some(x) } else { None });
        assert_eq!(first, Some(13));
        let none = (0u64..1000)
            .into_par_iter()
            .with_max_threads(4)
            .find_map_first(|_| None::<u64>);
        assert_eq!(none, None);
    }

    #[test]
    fn flat_map_iter_and_filter_compose() {
        let out: Vec<usize> = (0usize..100)
            .into_par_iter()
            .with_max_threads(4)
            .flat_map_iter(|x| vec![x, x])
            .filter(|&x| x % 2 == 0)
            .collect();
        let expected: Vec<usize> = (0usize..100)
            .flat_map(|x| vec![x, x])
            .filter(|&x| x % 2 == 0)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn inclusive_ranges_and_owned_vecs_are_sources() {
        let total: usize = (0usize..=10).into_par_iter().sum();
        assert_eq!(total, 55);
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn empty_sources_are_fine() {
        let total: u64 = (5u64..5).into_par_iter().sum();
        assert_eq!(total, 0);
        let v: Vec<u64> = (5u64..5).into_par_iter().collect();
        assert!(v.is_empty());
        assert!((5u64..5).into_par_iter().all(|_| false));
    }
}
