//! Mini property-testing harness shimming the subset of the `proptest` API
//! this workspace uses (the build environment has no crates.io access).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header and
//!   `name in strategy` argument bindings;
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges
//!   (`Range`, `RangeInclusive`) and tuples of strategies;
//! * `prop::collection::vec(strategy, size)` with exact, `a..b` and `a..=b`
//!   sizes;
//! * [`arbitrary::any`] for the primitive integers;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Differences from real proptest: failing cases are **not shrunk** (the
//! failing case number is printed to stderr and the RNG is deterministic
//! per test name, so failures reproduce exactly), and there is no
//! persistence file.  Each test function runs `config.cases` random cases.

/// Runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    use rand::prelude::{Rng, SeedableRng, StdRng};

    /// Deterministic RNG used to drive strategies — the rand shim's
    /// xoshiro256++ generator behind a name-seeded constructor (real
    /// proptest likewise builds its `TestRng` on the rand crate).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator seeded deterministically from a test's name, so each
        /// `proptest!` test has a stable, independent stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// The next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.random()
        }

        /// Uniform value below `bound` (rejection sampling, exact).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.inner.random_range(0..bound)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Integer types usable as range endpoints.
    pub trait RangeValue: Copy {
        /// To `u128` for uniform span arithmetic.
        fn to_u128(self) -> u128;
        /// Back from `u128`.
        fn from_u128(v: u128) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn to_u128(self) -> u128 { self as u128 }
                fn from_u128(v: u128) -> Self { v as $t }
            }
        )*};
    }
    impl_range_value!(u8, u16, u32, u64, u128, usize);

    fn sample_span(rng: &mut TestRng, span: u128) -> u128 {
        if span <= u128::from(u64::MAX) {
            u128::from(rng.below(span as u64))
        } else {
            // Spans beyond 2^64 never occur in this workspace's tests; a
            // two-word draw modulo the span is plenty uniform for a shim.
            let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            wide % span
        }
    }

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let lo = self.start.to_u128();
            let hi = self.end.to_u128();
            assert!(lo < hi, "cannot sample from an empty range");
            T::from_u128(lo + sample_span(rng, hi - lo))
        }
    }

    impl<T: RangeValue> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let lo = self.start().to_u128();
            let hi = self.end().to_u128();
            assert!(lo <= hi, "cannot sample from an empty range");
            T::from_u128(lo + sample_span(rng, hi - lo + 1))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `prop::collection` — strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted sizes for [`vec()`]: an exact length or a length range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing uniform values over `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Runs `config.cases` random cases of a property (the engine behind
/// [`proptest!`]).  The property returns `ControlFlow::Break` to skip a case
/// (via `prop_assume!`) and panics to fail.
///
/// A failing case is reported to stderr with its case number before the
/// panic propagates, so the (deterministic, name-seeded) failure is easy to
/// locate when re-running.
pub fn run_cases(
    name: &str,
    config: &test_runner::Config,
    mut case: impl FnMut(&mut test_runner::TestRng, u32),
) {
    let mut rng = test_runner::TestRng::deterministic(name);
    for case_number in 0..config.cases {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng, case_number);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: property `{name}` failed at case {case_number} of {} \
                 (deterministic per test name — re-running reproduces it)",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The proptest macro: declares `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategies = ( $($strat,)* );
                $crate::run_cases(stringify!($name), &__config, |__rng, __case| {
                    let ( $($arg,)* ) = {
                        let ( $(ref $arg,)* ) = __strategies;
                        ( $($crate::strategy::Strategy::sample($arg, __rng),)* )
                    };
                    #[allow(clippy::redundant_closure_call)]
                    let __flow: ::core::ops::ControlFlow<()> = (|| {
                        { $body }
                        ::core::ops::ControlFlow::Continue(())
                    })();
                    let _ = (__flow, __case);
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        assert!($cond $(, $($fmt)*)?)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($left, $right $(, $($fmt)*)?)
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn tuples_and_vecs_compose(pair in (0usize..4, 0usize..4), v in prop::collection::vec(0u32..100, 2..=6)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn prop_map_and_any_work(w in any::<u64>(), s in (0u64..100).prop_map(|x| x * 2)) {
            let _ = w;
            prop_assert_eq!(s % 2, 0);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    use std::sync::atomic::{AtomicU32, Ordering};

    static EXECUTED_CASES: AtomicU32 = AtomicU32::new(0);

    // Declared without `#[test]` so only the counting test below drives it
    // (attributes are passed through verbatim by the macro).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(37))]

        fn bodies_actually_run(x in 0u64..1000) {
            let _ = x;
            EXECUTED_CASES.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn proptest_macro_runs_the_configured_number_of_cases() {
        bodies_actually_run();
        assert_eq!(EXECUTED_CASES.load(Ordering::SeqCst), 37);
    }

    #[test]
    #[should_panic(expected = "assertion must trip")]
    fn failing_properties_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 5u64..10) {
                prop_assert!(x < 5, "assertion must trip");
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("abc");
        let mut b = crate::test_runner::TestRng::deterministic("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
