//! Small wall-clock benchmarking harness shimming the subset of the
//! `criterion` API this workspace uses (the build environment has no
//! crates.io access).
//!
//! Measurement model: each benchmark is calibrated with one timed call, the
//! per-sample iteration count is chosen so a sample lasts ≳1 ms, and up to
//! `sample_size` samples are collected subject to the group's
//! `measurement_time` budget.  The reported statistic is the **median**
//! ns/iteration (plus min/mean), which is robust to scheduler noise.
//!
//! Every run appends its results to a JSON summary —
//! `target/bench-summaries/<benchmark-binary>.json` by default, overridable
//! with the `BENCH_SUMMARY_PATH` environment variable — so perf trajectories
//! (the `BENCH_*` records in CHANGES.md/ROADMAP.md) can be diffed across
//! commits without parsing human-oriented output.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation (recorded in the JSON summary).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One measured benchmark, as recorded in the JSON summary.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// `group/function/parameter`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("default");
        let id = id.to_string();
        group.bench_with_input(BenchmarkId::from_parameter(id), &(), move |b, ()| f(b));
        group.finish();
        self
    }

    /// Writes the JSON summary and prints its location.  Called by
    /// [`criterion_main!`] after all groups have run.
    pub fn final_summary(&self) {
        if self.records.is_empty() {
            return;
        }
        let path = std::env::var("BENCH_SUMMARY_PATH").unwrap_or_else(|_| {
            let exe_path = std::env::current_exe().ok();
            let exe = exe_path
                .as_deref()
                .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .unwrap_or_else(|| "bench".to_string());
            // Strip cargo's `-<hash>` suffix from the bench binary name.
            let stem = exe.rsplit_once('-').map_or(exe.clone(), |(head, tail)| {
                if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) {
                    head.to_string()
                } else {
                    exe.clone()
                }
            });
            // Anchor at the build's real `target/` directory (the bench
            // binary lives in `<ws>/target/<profile>/deps/`); cargo runs
            // benches with the *package* dir as cwd, so a relative path
            // would otherwise land in `crates/<pkg>/target/`.
            let summary_dir = exe_path
                .and_then(|p| {
                    p.ancestors()
                        .find(|a| a.file_name().is_some_and(|n| n == "target"))
                        .map(|t| t.join("bench-summaries"))
                })
                .unwrap_or_else(|| std::path::PathBuf::from("target/bench-summaries"));
            summary_dir
                .join(format!("{stem}.json"))
                .display()
                .to_string()
        });
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let out = render_summary(&self.records);
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => println!("\nbench summary written to {path}"),
            Err(e) => eprintln!("\ncould not write bench summary {path}: {e}"),
        }
    }
}

/// Renders the JSON summary for a list of records — a pure function so
/// tests can pin that **every** [`Throughput`] variant round-trips into
/// the JSON (an annotation silently dropped here would vanish from the
/// `target/bench-summaries/` perf trajectory).  The match is exhaustive
/// with no wildcard arm: adding a `Throughput` variant without a JSON
/// field is a compile error, not a silent drop.
fn render_summary(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let throughput = match r.throughput {
            Some(Throughput::Elements(e)) => format!(", \"elements\": {e}"),
            Some(Throughput::Bytes(b)) => format!(", \"bytes\": {b}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}{}}}{}\n",
            r.id, r.median_ns, r.mean_ns, r.min_ns, r.samples, r.iters_per_sample, throughput, sep
        ));
    }
    out.push_str("]\n");
    out
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples to collect per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        if let Some((samples_ns_per_iter, iters)) = bencher.result {
            let mut sorted = samples_ns_per_iter.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
            let record = BenchRecord {
                id: format!("{}/{}", self.name, id),
                median_ns: median,
                mean_ns: mean,
                min_ns: sorted[0],
                samples: sorted.len(),
                iters_per_sample: iters,
                throughput: self.throughput,
            };
            let per_element = match record.throughput {
                Some(Throughput::Elements(e)) if e > 0 => {
                    format!(" = {:.1} ns/elem", record.median_ns / e as f64)
                }
                Some(Throughput::Bytes(bytes)) if bytes > 0 => {
                    format!(" = {:.1} ns/byte", record.median_ns / bytes as f64)
                }
                _ => String::new(),
            };
            println!(
                "bench: {:<60} median {:>12.1} ns/iter{} ({} samples x {} iters)",
                record.id, record.median_ns, per_element, record.samples, record.iters_per_sample
            );
            self.criterion.records.push(record);
        }
        self
    }

    /// Ends the group (statistics are recorded incrementally).
    pub fn finish(&mut self) {}
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// `(ns-per-iter samples, iters per sample)` once [`Bencher::iter`] ran.
    result: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Measures `f`, keeping its output alive so the call is not optimised
    /// away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: one warmup/calibration call.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ≥1 ms per sample so short closures are batch-timed.
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let budget = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            samples.push(ns);
            if budget.elapsed() > self.measurement_time && samples.len() >= 2 {
                break;
            }
        }
        self.result = Some((samples, iters));
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary: runs every group, then writes
/// the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_measurement() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3).measurement_time(Duration::from_millis(50));
            g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].median_ns > 0.0);
        assert_eq!(c.records[0].id, "unit/sum/100");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn summary_serialises_every_throughput_variant() {
        let record = |id: &str, throughput| BenchRecord {
            id: id.into(),
            median_ns: 10.0,
            mean_ns: 11.0,
            min_ns: 9.0,
            samples: 2,
            iters_per_sample: 3,
            throughput,
        };
        let json = render_summary(&[
            record("g/elems/1", Some(Throughput::Elements(7))),
            record("g/bytes/1", Some(Throughput::Bytes(4096))),
            record("g/plain/1", None),
        ]);
        // No annotation vanishes: each variant lands in its record's JSON.
        assert!(json.contains(r#""id": "g/elems/1""#));
        assert!(json.contains(r#""elements": 7"#));
        assert!(json.contains(r#""bytes": 4096"#));
        assert!(!json.contains(r#""elements": 4096"#));
        // The unannotated record carries neither field.
        let plain_line = json
            .lines()
            .find(|l| l.contains("g/plain/1"))
            .expect("plain record rendered");
        assert!(!plain_line.contains("elements") && !plain_line.contains("bytes"));
        // Still a well-formed JSON array with one object per record.
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
        assert_eq!(json.matches("{\"id\"").count(), 3);
    }
}
