//! Minimal shim for the subset of the `rand` 0.9 API this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::random`, and `Rng::random_range` over
//! integer ranges.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — the same
//! construction the real `rand` crate documents for `SeedableRng::seed_from_u64`
//! — so it is a high-quality, reproducible source for the experiment
//! harness.  It is *not* the same stream as the real `StdRng` (which is
//! ChaCha12); seeds are only comparable within this workspace, which is all
//! the experiments need.

/// Integer types samplable by [`Rng::random`] and [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Draws a uniform value of `Self` from 64 raw bits.
    fn from_raw(raw: u64) -> Self;
    /// Converts to `u64` for range arithmetic.
    fn to_u64(self) -> u64;
    /// Converts back from `u64` after range arithmetic.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_raw(raw: u64) -> Self { raw as $t }
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The random-value and random-range interface.
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform random value of `T` over its whole domain.
    fn random<T: SampleUniform>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    /// A uniform random value in `range` (half-open), via Lemire-style
    /// rejection sampling so the distribution is exactly uniform.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "cannot sample from an empty range");
        let span = hi - lo;
        // Rejection sampling on the top bits: unbiased and fast for the
        // small spans used by the samplers.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return T::from_u64(lo + raw % span);
            }
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator (see module docs: a stand-in for the real
    /// `StdRng`, deterministic per seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            Self {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// The rand prelude: the traits users call methods through.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_u64_varies() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: u64 = rng.random();
        let b: u64 = rng.random();
        assert_ne!(a, b);
    }
}
