//! Derive-macro shim for `serde`'s `Serialize` / `Deserialize`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so they
//! are interchange-ready when the real serde is available.  This shim (used
//! because the build environment has no crates.io access) emits **marker
//! impls** of the shimmed traits in `crate serde` — enough for the derives
//! and trait bounds to compile, with no actual serialization format behind
//! them.  It parses the item header with `proc_macro` alone (no `syn`), so
//! it supports the plain non-generic structs and enums this workspace
//! defines; deriving on a generic type is a compile error with a clear
//! message.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a struct/enum definition token stream.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("expected a type name after `{word}`, found {other:?}"),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        assert!(
                            p.as_char() != '<',
                            "the serde shim derive does not support generic types (type `{name}`)"
                        );
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            // Outer attributes (#[...]) and doc comments arrive as Punct +
            // Group pairs; skip them.
            TokenTree::Punct(_) | TokenTree::Group(_) | TokenTree::Literal(_) => {}
        }
    }
    panic!("serde shim derive: no `struct` or `enum` found in input");
}

/// Marker-impl derive for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Marker-impl derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
