//! Marker-trait shim for the `serde` API surface this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so they
//! are interchange-ready; with no crates.io access the real serde cannot be
//! built, so this shim provides the two traits as **markers** (no methods)
//! plus the derive macros from the sibling `serde_derive` shim.  Nothing in
//! the workspace performs actual serialization at build time — the JSON the
//! experiment harness emits is written by hand — so marker impls are all the
//! type system needs.  Dropping the real serde back in is a manifest-only
//! change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for &T where T: ?Sized {}
