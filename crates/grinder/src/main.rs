//! Command-line front end of the differential fuzz grinder.
//!
//! ```text
//! SORTNET_GRINDER_SEED=0xfeed cargo run -p sortnet-grinder -- --cases 256
//! ```
//!
//! The seed comes from `--seed`, the `SORTNET_GRINDER_SEED` environment
//! variable, or the wall clock (printed, so any run is replayable).
//! Exit status is non-zero when any mismatch was found, so the binary
//! doubles as a CI job.

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use sortnet_grinder::{grind_verify, run, run_case, Corruption, GrinderConfig};
use sortnet_network::{Budgeted, SweepBudget};

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sortnet-grinder [--seed N] [--cases N] [--verify-cases N] \
         [--max-blocks N] [--only-case N] [--corrupt-last-fault]\n\
         \n\
         The seed defaults to $SORTNET_GRINDER_SEED, then the wall clock.\n\
         --max-blocks caps the number of cases through the sweep budget;\n\
         --verify-cases additionally grinds the test-set verification\n\
         strategies against the exhaustive sorter oracle;\n\
         --only-case replays one case; --corrupt-last-fault plants a fake\n\
         oracle flip to self-test the catch-and-shrink pipeline."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seed: Option<u64> = std::env::var("SORTNET_GRINDER_SEED")
        .ok()
        .and_then(|s| parse_u64(&s));
    let mut cases: u64 = 128;
    let mut verify_cases: u64 = 0;
    let mut max_blocks: Option<u64> = None;
    let mut only_case: Option<u64> = None;
    let mut corruption = Corruption::None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> Result<u64, ExitCode> {
            args.next().as_deref().and_then(parse_u64).ok_or_else(|| {
                eprintln!("{what} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => match value("--seed") {
                Ok(v) => seed = Some(v),
                Err(code) => return code,
            },
            "--cases" => match value("--cases") {
                Ok(v) => cases = v,
                Err(code) => return code,
            },
            "--verify-cases" => match value("--verify-cases") {
                Ok(v) => verify_cases = v,
                Err(code) => return code,
            },
            "--max-blocks" => match value("--max-blocks") {
                Ok(v) => max_blocks = Some(v),
                Err(code) => return code,
            },
            "--only-case" => match value("--only-case") {
                Ok(v) => only_case = Some(v),
                Err(code) => return code,
            },
            "--corrupt-last-fault" => corruption = Corruption::FlipLastFault,
            _ => return usage(),
        }
    }

    let seed = seed.unwrap_or_else(|| {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0x5EED_CAFE, |d| d.as_nanos() as u64)
    });

    if let Some(index) = only_case {
        println!("replaying case {index} of seed {seed:#x}");
        return match run_case(seed, index, corruption) {
            Some(mismatch) => {
                println!("{mismatch}");
                ExitCode::FAILURE
            }
            None => {
                println!("case {index} is clean: every engine agrees");
                ExitCode::SUCCESS
            }
        };
    }

    let mut budget = SweepBudget::unlimited();
    if let Some(blocks) = max_blocks {
        budget = budget.with_max_blocks(blocks);
    }
    let config = GrinderConfig {
        seed,
        cases,
        budget,
        corruption,
    };
    println!("grinding {cases} cases from seed {seed:#x} (replay: SORTNET_GRINDER_SEED={seed:#x})");
    let outcome = run(&config);
    let mismatches = match outcome {
        Budgeted::Complete(m) => m,
        Budgeted::Partial {
            progress,
            reason,
            best_so_far,
        } => {
            println!(
                "budget tripped ({reason:?}) after {} cases; reporting what was found",
                progress.blocks
            );
            best_so_far
        }
    };
    let verify_mismatches = if verify_cases > 0 {
        println!("grinding {verify_cases} verify cases from seed {seed:#x}");
        grind_verify(seed, verify_cases)
    } else {
        Vec::new()
    };
    if mismatches.is_empty() && verify_mismatches.is_empty() {
        println!("no mismatches: the engines agree on every case");
        return ExitCode::SUCCESS;
    }
    for mismatch in &mismatches {
        println!("{mismatch}");
    }
    for mismatch in &verify_mismatches {
        println!("{mismatch}");
    }
    println!(
        "{} mismatch(es) found",
        mismatches.len() + verify_mismatches.len()
    );
    ExitCode::FAILURE
}
