//! # sortnet-grinder
//!
//! A seeded differential fuzz grinder for the fault-simulation engines.
//!
//! The workspace keeps three implementations of the same detection
//! semantics: the scalar reference (`sortnet_faults::universe`), the
//! width-generic bit-parallel engine (`sortnet_faults::bitsim`) and the
//! runtime-selected lane-ops backends underneath it
//! (`sortnet_network::lanes::Backend`: scalar / portable-chunked / AVX2).
//! The structured differential test suites hold them together on curated
//! networks; the grinder holds them together on *random* ones.
//!
//! Each case is a deterministic function of `(seed, case index)`: a random
//! network (3–9 lines, 0–12 comparators), a random standard fault universe,
//! and a random test list (1–96 vectors, so both one- and two-word matrix
//! rows occur).  The scalar engine's verdict for every fault × test is the
//! oracle; the case fails when any bit-parallel matrix (each runnable
//! backend × lane widths 1 and 4) disagrees, or when scalar and
//! bit-parallel coverage reports diverge.
//!
//! Every fourth case instead crosses the 64-line wall: 65–96 lines with
//! multi-word [`ChannelVec`] test vectors (a single-lesion universe and a
//! smaller test list, keeping the scalar oracle affordable), so the
//! channel-words dimension of every engine is ground under the same seeds
//! as the single-word path.
//!
//! A failing case is **shrunk** before it is reported: comparators, then
//! faults, then tests are dropped greedily while the disagreement persists,
//! so the [`Mismatch`] carries a minimal reproducer.  Every mismatch also
//! prints a replay line — `SORTNET_GRINDER_SEED=<seed> … --only-case <i>`
//! — that regenerates the case from the seed alone.
//!
//! [`Corruption`] is the grinder's self-test hook: it flips one oracle bit
//! so the whole catch-and-shrink pipeline can be exercised (and is, in the
//! smoke tests and CI) without planting a real bug in an engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use rand::prelude::*;

use sortnet_combinat::{BitString, ChannelVec};
use sortnet_faults::bitsim::try_detection_matrix_multi_packed_on;
use sortnet_faults::coverage::{coverage_of_universe_packed_with, FaultSimEngine, RedundancyMode};
use sortnet_faults::universe::{FaultUniverse, MultiFault, StandardUniverse, TestVector};
use sortnet_network::budget::{BudgetMeter, Budgeted, SweepBudget};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::{Backend, PackedFamily};
use sortnet_network::random::NetworkSampler;
use sortnet_network::{properties, Network};
use sortnet_testsets::verify::{try_verify, Property, Strategy};

/// Per-case seed derivation: SplitMix64's golden-ratio increment keeps
/// neighbouring case indices decorrelated.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deliberate oracle corruption — the grinder's self-test hook.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Corruption {
    /// No corruption: any mismatch is a real engine disagreement.
    #[default]
    None,
    /// Flip the scalar oracle's verdict for the last fault on the first
    /// test.  The flip tracks the *current* fault/test lists, so it
    /// survives shrinking — the pipeline must chase it all the way down
    /// to a one-fault, one-test reproducer.
    FlipLastFault,
}

/// Knobs of a grind run.
#[derive(Clone, Debug)]
pub struct GrinderConfig {
    /// Master seed; every case is a pure function of `(seed, index)`.
    pub seed: u64,
    /// Number of cases to grind (case indices `0..cases`).
    pub cases: u64,
    /// Run budget: each case admits one block, so
    /// [`SweepBudget::with_max_blocks`] caps the case count and a
    /// deadline or [`sortnet_network::CancelToken`] stops a long grind
    /// cleanly with a [`Budgeted::Partial`] result.
    pub budget: SweepBudget,
    /// Oracle corruption (self-test hook); [`Corruption::None`] for real
    /// fuzzing.
    pub corruption: Corruption,
}

impl GrinderConfig {
    /// A config grinding `cases` cases from `seed` with no budget and no
    /// corruption.
    #[must_use]
    pub fn new(seed: u64, cases: u64) -> Self {
        Self {
            seed,
            cases,
            budget: SweepBudget::unlimited(),
            corruption: Corruption::None,
        }
    }
}

/// A shrunk engine disagreement, reproducible from `(seed, case_index)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mismatch {
    /// The master seed the run was grinding.
    pub seed: u64,
    /// The case index within the run.
    pub case_index: u64,
    /// The fault universe the case drew.
    pub universe: StandardUniverse,
    /// The shrunk network still exhibiting the disagreement.
    pub network: Network,
    /// Comparator count of the network as generated, before shrinking.
    pub original_size: usize,
    /// The shrunk fault list (a subset of the universe over `network`).
    pub faults: Vec<MultiFault>,
    /// The shrunk test list, stored in the universal multi-word packing
    /// (single-word cases are widened losslessly for the report).
    pub tests: Vec<ChannelVec>,
    /// Human-readable description of the first disagreement.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential mismatch (seed {seed:#x}, case {case})",
            seed = self.seed,
            case = self.case_index
        )?;
        writeln!(f, "  universe: {}", FaultUniverse::name(&self.universe))?;
        writeln!(
            f,
            "  network:  {} ({} of originally {} comparators)",
            self.network,
            self.network.size(),
            self.original_size
        )?;
        writeln!(f, "  faults:   {} kept after shrinking", self.faults.len())?;
        writeln!(f, "  tests:    {} kept after shrinking", self.tests.len())?;
        writeln!(f, "  detail:   {}", self.detail)?;
        write!(
            f,
            "  replay:   SORTNET_GRINDER_SEED={:#x} cargo run -p sortnet-grinder -- --only-case {}",
            self.seed, self.case_index
        )
    }
}

/// Scalar-oracle detection verdict in any packing: the faulty network
/// mis-sorts the test.
fn detects_packed<P: TestVector>(network: &Network, fault: &MultiFault, test: &P) -> bool {
    !P::multi_apply(network, fault, test).is_sorted()
}

/// Scalar-oracle cross-check of the bit-parallel matrices over an explicit
/// fault list.  Returns a description of the first disagreement, `None`
/// when every engine agrees.
fn check_faults<P: TestVector + fmt::Display>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    corruption: Corruption,
) -> Option<String> {
    let mut expected = Vec::with_capacity(faults.len() * tests.len());
    for fault in faults {
        for test in tests {
            expected.push(detects_packed(network, fault, test));
        }
    }
    if corruption == Corruption::FlipLastFault && !faults.is_empty() && !tests.is_empty() {
        let idx = (faults.len() - 1) * tests.len();
        expected[idx] = !expected[idx];
    }
    for backend in Backend::runnable() {
        let matrices = [
            (
                1usize,
                try_detection_matrix_multi_packed_on::<1, P>(network, faults, tests, backend),
            ),
            (
                4usize,
                try_detection_matrix_multi_packed_on::<4, P>(network, faults, tests, backend),
            ),
        ];
        for (width, matrix) in matrices {
            let matrix = match matrix {
                Ok(m) => m,
                Err(e) => {
                    return Some(format!(
                        "typed refusal on a case the scalar oracle accepted ({backend:?}, W{width}): {e}"
                    ))
                }
            };
            for (fi, fault) in faults.iter().enumerate() {
                for (ti, test) in tests.iter().enumerate() {
                    let want = expected[fi * tests.len() + ti];
                    let got = matrix.is_detected_by(fi, ti);
                    if want != got {
                        return Some(format!(
                            "fault {fault} x test {test}: scalar oracle says detected={want}, \
                             {backend:?} W{width} matrix says detected={got}"
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Full case check: matrix cross-check over the whole universe, then
/// scalar-vs-bit-parallel coverage reports (skipped under corruption —
/// the planted flip lives in the matrix comparison only).
fn check_case<P: TestVector + Sync + fmt::Display>(
    network: &Network,
    universe: StandardUniverse,
    tests: &[P],
    corruption: Corruption,
) -> Option<String> {
    let faults: Vec<MultiFault> = universe.iter(network).collect();
    if let Some(detail) = check_faults(network, &faults, tests, corruption) {
        return Some(detail);
    }
    if corruption == Corruption::None {
        let scalar = coverage_of_universe_packed_with(
            network,
            &universe,
            tests,
            false,
            FaultSimEngine::Scalar,
        );
        let wide = coverage_of_universe_packed_with(
            network,
            &universe,
            tests,
            false,
            FaultSimEngine::BitParallel,
        );
        if scalar != wide {
            return Some(format!(
                "coverage reports disagree: scalar {scalar:?} vs bit-parallel {wide:?}"
            ));
        }
    }
    None
}

/// Greedy list shrink: first try pinning a single element (the common
/// case — one fault or one test reproduces), then a single forward
/// removal pass.  `still_fails` returns the mismatch detail when the
/// candidate list still reproduces the disagreement.
fn shrink_list<T: Clone>(
    mut items: Vec<T>,
    detail: &mut String,
    mut still_fails: impl FnMut(&[T]) -> Option<String>,
) -> Vec<T> {
    for item in &items {
        let one = [item.clone()];
        if let Some(d) = still_fails(&one) {
            *detail = d;
            return one.to_vec();
        }
    }
    let mut i = 0;
    while i < items.len() && items.len() > 1 {
        let mut candidate = items.clone();
        candidate.remove(i);
        if let Some(d) = still_fails(&candidate) {
            *detail = d;
            items = candidate;
        } else {
            i += 1;
        }
    }
    items
}

/// Shrinks a failing case to a minimal-ish reproducer: comparators first
/// (the fault universe follows the network automatically), then the fault
/// list, then the test list.
fn shrink<P: TestVector + Sync + fmt::Display>(
    seed: u64,
    case_index: u64,
    universe: StandardUniverse,
    network: Network,
    tests: Vec<P>,
    detail: String,
    corruption: Corruption,
) -> Mismatch {
    let original_size = network.size();
    let mut network = network;
    let mut detail = detail;
    let mut i = 0;
    while i < network.size() {
        let candidate = network.without_comparator(i);
        if let Some(d) = check_case(&candidate, universe, &tests, corruption) {
            detail = d;
            network = candidate;
        } else {
            i += 1;
        }
    }
    let faults = shrink_list(
        universe.iter(&network).collect(),
        &mut detail,
        |candidate| check_faults(&network, candidate, &tests, corruption),
    );
    let tests = shrink_list(tests, &mut detail, |candidate| {
        check_faults(&network, &faults, candidate, corruption)
    });
    Mismatch {
        seed,
        case_index,
        universe,
        network,
        original_size,
        faults,
        tests: tests
            .iter()
            .map(|t| ChannelVec::from_fn(t.len(), |i| t.bit(i)))
            .collect(),
        detail,
    }
}

/// Runs one case: generates the deterministic `(seed, index)` inputs,
/// cross-checks every engine, and returns the shrunk [`Mismatch`] if they
/// disagree.
#[must_use]
pub fn run_case(seed: u64, index: u64, corruption: Corruption) -> Option<Mismatch> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index.wrapping_mul(CASE_STRIDE)));
    if index % 4 == 3 {
        // Wide-channel case: the same cross-check past the 64-line wall.
        // Single-lesion universes and a small test list keep the
        // one-fault-at-a-time scalar oracle affordable at these widths.
        let n = rng.random_range(65usize..97);
        let size = rng.random_range(0usize..13);
        let mut sampler = NetworkSampler::new(rng.next_u64());
        let network = sampler.network(n, size);
        let universe = [
            StandardUniverse::SingleComparator,
            StandardUniverse::StuckLine,
        ][rng.random_range(0usize..2)];
        let test_count = rng.random_range(1usize..17);
        let tests: Vec<ChannelVec> = (0..test_count)
            .map(|_| {
                let words: Vec<u64> = (0..n.div_ceil(64)).map(|_| rng.next_u64()).collect();
                ChannelVec::from_words(&words, n)
            })
            .collect();
        let detail = check_case(&network, universe, &tests, corruption)?;
        return Some(shrink(
            seed, index, universe, network, tests, detail, corruption,
        ));
    }
    let n = rng.random_range(3usize..10);
    let size = rng.random_range(0usize..13);
    let mut sampler = NetworkSampler::new(rng.next_u64());
    let network = sampler.network(n, size);
    let universe = StandardUniverse::ALL[rng.random_range(0usize..StandardUniverse::ALL.len())];
    let test_count = rng.random_range(1usize..97);
    let tests: Vec<BitString> = (0..test_count).map(|_| sampler.random_input(n)).collect();
    let detail = check_case(&network, universe, &tests, corruption)?;
    Some(shrink(
        seed, index, universe, network, tests, detail, corruption,
    ))
}

/// Grinds `config.cases` cases, collecting every (shrunk) mismatch.
///
/// Each case admits one block against `config.budget`, so a block cap,
/// deadline or cancel token stops the grind early with
/// [`Budgeted::Partial`] carrying the mismatches found so far.
#[must_use]
pub fn run(config: &GrinderConfig) -> Budgeted<Vec<Mismatch>> {
    let mut meter = BudgetMeter::new(&config.budget);
    let mut mismatches = Vec::new();
    for index in 0..config.cases {
        if !meter.admit_block(1) {
            break;
        }
        if let Some(m) = run_case(config.seed, index, config.corruption) {
            mismatches.push(m);
        }
    }
    meter.finish(mismatches)
}

/// Stream separator for the verify leg so its cases are decorrelated
/// from [`run_case`]'s at the same `(seed, index)`.
const VERIFY_STREAM: u64 = 0x5645_5249_4659_1E57;

/// A shrunk test-set-verification disagreement, reproducible from
/// `(seed, case index)`.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyMismatch {
    /// The master seed the run was grinding.
    pub seed: u64,
    /// The case index within the verify leg.
    pub case_index: u64,
    /// The shrunk network still exhibiting the disagreement.
    pub network: Network,
    /// Comparator count as generated, before shrinking.
    pub original_size: usize,
    /// The exhaustive oracle's verdict on the shrunk network.
    pub truth: bool,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl fmt::Display for VerifyMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify mismatch (seed {seed:#x}, verify case {case})",
            seed = self.seed,
            case = self.case_index
        )?;
        writeln!(
            f,
            "  network:  {} ({} of originally {} comparators, sorter = {})",
            self.network,
            self.network.size(),
            self.original_size,
            self.truth
        )?;
        writeln!(f, "  detail:   {}", self.detail)?;
        write!(
            f,
            "  replay:   SORTNET_GRINDER_SEED={:#x} cargo run -p sortnet-grinder -- \
             --cases 0 --verify-cases {}",
            self.seed,
            self.case_index + 1
        )
    }
}

/// Cross-checks the three test-set verification strategies against the
/// exhaustive `2^n` oracle (`truth`): the paper's minimal binary test
/// set, its optimal permutation test set, and the same binary test set
/// packed into multi-word [`ChannelVec`] vectors and swept through the
/// packed spot-check engine.  Returns the first disagreement.
fn check_verify_case(network: &Network, truth: bool) -> Option<String> {
    for strategy in [Strategy::MinimalBinary, Strategy::Permutation] {
        match try_verify(network, Property::Sorter, strategy) {
            Ok(report) => {
                if report.passed != truth {
                    return Some(format!(
                        "exhaustive oracle says sorter={truth}, {strategy:?} test set says {}",
                        report.passed
                    ));
                }
            }
            Err(e) => {
                return Some(format!(
                    "typed refusal at a size the exhaustive oracle accepted ({strategy:?}): {e}"
                ))
            }
        }
    }
    // The packed-family leg: the required strings of the property,
    // assembled straight into the multi-word packing.  Test-set
    // sufficiency (Theorem 2.2) makes this check exact, so it must
    // reproduce the exhaustive verdict too.
    let n = network.lines();
    let tests: Vec<ChannelVec> =
        sortnet_testsets::criteria::required_strings_packed(Property::Sorter, n).collect();
    match sortnet_testsets::try_spot_check_sorter_packed(network, &tests) {
        Ok(outcome) => {
            let passed = outcome.witness.is_none();
            if passed != truth {
                return Some(format!(
                    "exhaustive oracle says sorter={truth}, packed-family spot check says {passed}"
                ));
            }
        }
        Err(e) => {
            return Some(format!(
                "typed refusal from the packed-family spot check: {e}"
            ))
        }
    }
    None
}

/// Runs one verify-leg case: a deterministic `(seed, index)` network —
/// a Batcher sorter, a wounded Batcher sorter (one comparator removed),
/// or a random network — every test-set strategy is cross-checked
/// against the exhaustive sorter oracle, and any disagreement is
/// comparator-shrunk before it is reported.
#[must_use]
pub fn run_verify_case(seed: u64, index: u64) -> Option<VerifyMismatch> {
    let mut rng =
        StdRng::seed_from_u64(seed.wrapping_add(index.wrapping_mul(CASE_STRIDE)) ^ VERIFY_STREAM);
    let n = rng.random_range(3usize..10);
    let network = match rng.random_range(0u32..3) {
        // A true sorter: grinds the "passed" arm of every strategy.
        0 => odd_even_merge_sort(n),
        // A wounded sorter: fails, and usually only barely — the
        // near-miss regime where a wrong test set would slip.
        1 => {
            let sorter = odd_even_merge_sort(n);
            let victim = rng.random_range(0..sorter.size());
            sorter.without_comparator(victim)
        }
        // A random network, almost always far from sorting.
        _ => {
            let size = rng.random_range(0usize..13);
            NetworkSampler::new(rng.next_u64()).network(n, size)
        }
    };
    let truth = properties::is_sorter(&network);
    let detail = check_verify_case(&network, truth)?;
    // Shrink comparators while the *disagreement* persists; the truth
    // is recomputed per candidate since removing a comparator moves it.
    let original_size = network.size();
    let mut network = network;
    let mut detail = detail;
    let mut i = 0;
    while i < network.size() {
        let candidate = network.without_comparator(i);
        if let Some(d) = check_verify_case(&candidate, properties::is_sorter(&candidate)) {
            detail = d;
            network = candidate;
        } else {
            i += 1;
        }
    }
    let truth = properties::is_sorter(&network);
    Some(VerifyMismatch {
        seed,
        case_index: index,
        network,
        original_size,
        truth,
        detail,
    })
}

/// Grinds `cases` verify-leg cases, collecting every shrunk
/// disagreement between the test-set strategies and the exhaustive
/// oracle.
#[must_use]
pub fn grind_verify(seed: u64, cases: u64) -> Vec<VerifyMismatch> {
    (0..cases)
        .filter_map(|index| run_verify_case(seed, index))
        .collect()
}

/// Tally of one [`grind_service_cache`] run.
#[derive(Clone, Debug, Default)]
pub struct CacheGrindReport {
    /// Requests submitted across all legs.
    pub queries: u64,
    /// Answer-cache hits observed (every hit was compared to cold).
    pub hits: u64,
    /// Answer-cache evictions forced by the tiny capacity.
    pub evictions: u64,
    /// Human-readable descriptions of every service-vs-cold divergence;
    /// empty on a clean grind.
    pub mismatches: Vec<String>,
}

/// Differential grind of the oracle service's cache: every served
/// answer — cold, batched, cached, and cached-after-eviction — must be
/// bit-identical to [`sortnet_service::answer_cold`] on the same
/// request.
///
/// Legs: lane widths W ∈ {1, 4} × line counts n ∈ {8, 96}, each against
/// a service whose answer cache holds only four entries while the
/// request pool holds six distinct coverage queries — so steady-state
/// traffic rotates entries through eviction and re-insertion, and the
/// comparison covers answers served *after* their cache line was
/// evicted and recomputed.  The lane-ops backend dimension comes from
/// the process environment ([`Backend::active`], forced scalar in one
/// CI leg), like every other grinder strategy.
///
/// The report carries hit/eviction counters so callers can assert the
/// grind actually exercised the cache, not just the cold path.
#[must_use]
pub fn grind_service_cache(seed: u64, queries_per_leg: u64) -> CacheGrindReport {
    use sortnet_network::lanes::LaneWidth;
    use sortnet_service::{CacheStatus, Query, Request, Service, ServiceConfig};

    let mut report = CacheGrindReport::default();
    for (width, engine) in [
        (1usize, FaultSimEngine::BitParallelWide(LaneWidth::W1)),
        (4, FaultSimEngine::BitParallelWide(LaneWidth::W4)),
    ] {
        for n in [8usize, 96] {
            let mut rng =
                StdRng::seed_from_u64(seed.wrapping_add(((width as u64) << 32) | n as u64));
            // Six distinct coverage requests against a four-entry cache:
            // rotation forces evictions while repeats force hits.
            let pool: Vec<Request> = (0..6)
                .map(|_| {
                    let mut sampler = NetworkSampler::new(rng.next_u64());
                    let network = sampler.network(n, rng.random_range(1usize..9));
                    let test_count = rng.random_range(1usize..9);
                    let tests: Vec<ChannelVec> = (0..test_count)
                        .map(|_| {
                            let words: Vec<u64> =
                                (0..n.div_ceil(64)).map(|_| rng.next_u64()).collect();
                            ChannelVec::from_words(&words, n)
                        })
                        .collect();
                    Request {
                        network,
                        query: Query::Coverage {
                            universe: StandardUniverse::StuckLine,
                            tests,
                            redundancy: if n < 32 && rng.random_range(0u32..2) == 0 {
                                RedundancyMode::Exhaustive
                            } else if rng.random_range(0u32..2) == 0 {
                                RedundancyMode::RelativeTo(PackedFamily::SortedStrings)
                            } else {
                                RedundancyMode::Skip
                            },
                        },
                        budget: None,
                        deadline: None,
                    }
                })
                .collect();
            let cold: Vec<_> = pool
                .iter()
                .map(|r| answer_cold_outcome(r, engine))
                .collect();

            let service = Service::start(ServiceConfig {
                workers: 2,
                max_batch: 4,
                engine,
                answer_cache: 4,
                matrix_cache: 2,
                ..ServiceConfig::default()
            });
            for _ in 0..queries_per_leg {
                let pick = rng.random_range(0..pool.len());
                let response = service.submit(pool[pick].clone());
                report.queries += 1;
                if response.cache == CacheStatus::Hit {
                    report.hits += 1;
                }
                let (outcome, completion) = &cold[pick];
                if &response.outcome != outcome || &response.completion != completion {
                    report.mismatches.push(format!(
                        "W{width} n={n} pool[{pick}] ({:?}): service answered {:?}/{:?}, \
                         cold path answered {outcome:?}/{completion:?}",
                        response.cache, response.outcome, response.completion
                    ));
                }
            }
            report.evictions += service.stats().answers.evictions;
        }
    }
    report
}

/// Tally of one [`grind_service_chaos`] run.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// In-process requests submitted (leg 1).
    pub submitted: u64,
    /// Replies received — must equal `submitted` (exactly one reply per
    /// request, panics and stalls notwithstanding).
    pub replies: u64,
    /// Replies that answered `Ok` and complete.
    pub complete: u64,
    /// Replies that degraded to a typed partial (budget or deadline).
    pub partials: u64,
    /// Typed service-level refusals (quarantine, expired deadline,
    /// overload).
    pub refusals: u64,
    /// Typed engine refusals — the cold path reproduces these, so they
    /// take part in the differential comparison.
    pub engine_refusals: u64,
    /// Wire calls that completed (leg 2).
    pub wire_calls: u64,
    /// Client reconnects spent healing torn frames and stalled reads.
    pub wire_retries: u64,
    /// Evaluation panics the pool's supervision caught.
    pub service_panics: u64,
    /// Worker-loop respawns after escaped panics.
    pub worker_restarts: u64,
    /// Divergences and invariant violations; empty on a clean grind.
    pub mismatches: Vec<String>,
}

/// Chaos grind of the oracle service: replays the seeded loadgen
/// workload through a service whose failpoints are armed (per-request
/// panics, escaped worker crashes, queue stalls) and then drives the
/// wire front under torn reply frames and stalled reads with a retrying
/// client.
///
/// Invariants checked (violations land in
/// [`mismatches`](ChaosReport::mismatches)):
///
/// * every submitted request gets exactly one reply — an answer or a
///   typed refusal, never a hang or a dropped channel;
/// * every undecorated request's answer (no budget, no deadline) is
///   bit-identical to [`sortnet_service::answer_cold`], panic-retries
///   and cache traffic notwithstanding;
/// * every wire call, healed by retries where needed, returns the same
///   compacted answer the cold path gives.
///
/// Requires the service's `failpoints` feature (this crate always
/// enables it).  The registry is process-global: do not run this
/// concurrently with other failpoint users in the same process.
#[must_use]
pub fn grind_service_chaos(seed: u64, queries: usize, wire_queries: u64) -> ChaosReport {
    use std::collections::HashMap;
    use std::time::{Duration, Instant};

    use sortnet_service::failpoint::{self, Schedule};
    use sortnet_service::loadgen::{workload, LoadgenOptions};
    use sortnet_service::oracle::AnswerKey;
    use sortnet_service::wire::{compact, WireClient, WireClientConfig, WireServer};
    use sortnet_service::{answer_cold, Completion, Request, Service, ServiceConfig, ServiceError};

    let mut report = ChaosReport::default();
    failpoint::reset();

    // ---- leg 1: the pool under panic / crash / stall injection ------
    failpoint::configure("worker-panic", Schedule::Seeded { seed, permille: 60 });
    failpoint::configure(
        "worker-crash",
        Schedule::Seeded {
            seed: seed ^ 0xA5A5,
            permille: 8,
        },
    );
    failpoint::configure_sleep(
        "queue-stall",
        Schedule::Seeded {
            seed: seed ^ 0x5A5A,
            permille: 40,
        },
        Duration::from_millis(3),
    );

    let config = ServiceConfig {
        workers: 2,
        max_batch: 8,
        ..ServiceConfig::default()
    };
    let mut requests = workload(&LoadgenOptions {
        seed,
        queries,
        check_against_cold: false,
        ..LoadgenOptions::default()
    });
    // Sprinkle tight deadlines: under the injected stalls some expire
    // at dequeue, some degrade mid-sweep — all must come back typed.
    for (index, request) in requests.iter_mut().enumerate() {
        if index % 9 == 3 {
            request.deadline = Some(Instant::now() + Duration::from_millis(1));
        }
    }
    // Cold references, memoised; the failpoint sites live in the pool
    // and wire layers, so the cold path is unaffected by the arming.
    let mut cold: HashMap<AnswerKey, sortnet_service::Response> = HashMap::new();
    let service = Service::start(config.clone());
    for wave in requests.chunks(8) {
        let responses = service.submit_batch(wave.to_vec());
        report.submitted += wave.len() as u64;
        report.replies += responses.len() as u64;
        for (request, response) in wave.iter().zip(&responses) {
            match &response.outcome {
                Err(ServiceError::Engine(_)) => report.engine_refusals += 1,
                Err(_) => {
                    report.refusals += 1;
                    continue;
                }
                Ok(_) => {}
            }
            if matches!(response.completion, Completion::Complete) {
                report.complete += 1;
            } else {
                report.partials += 1;
            }
            // Only undecorated requests are comparable to the memoised
            // cold path — budgets change completion and deadlines ride
            // the bypass path with an intersected budget.
            if request.budget.is_none() && request.deadline.is_none() {
                let reference = cold
                    .entry(AnswerKey::of(request))
                    .or_insert_with(|| answer_cold(&config, request));
                if reference.outcome != response.outcome
                    || reference.completion != response.completion
                {
                    report.mismatches.push(format!(
                        "chaos pool leg: service answered {:?}/{:?}, cold answered {:?}/{:?}",
                        response.outcome,
                        response.completion,
                        reference.outcome,
                        reference.completion,
                    ));
                }
            }
        }
    }
    let stats = service.stats();
    report.service_panics = stats.panics;
    report.worker_restarts = stats.worker_restarts;
    drop(service);
    failpoint::reset();

    // ---- leg 2: the wire front under torn frames and stalled reads --
    failpoint::configure(
        "torn-frame",
        Schedule::Seeded {
            seed: seed ^ 0x0FF0,
            permille: 150,
        },
    );
    failpoint::configure_sleep(
        "slow-read",
        Schedule::Seeded {
            seed: seed ^ 0xF00F,
            permille: 80,
        },
        Duration::from_millis(120),
    );
    let service = std::sync::Arc::new(Service::start(config.clone()));
    let path = std::env::temp_dir().join(format!(
        "sortnet-chaos-grind-{}-{seed:x}.sock",
        std::process::id()
    ));
    match WireServer::bind(&path, std::sync::Arc::clone(&service)) {
        Err(e) => report
            .mismatches
            .push(format!("wire leg: bind failed: {e}")),
        Ok(server) => {
            let wire_pool: Vec<Request> = requests
                .iter()
                .filter(|r| r.budget.is_none() && r.deadline.is_none())
                .take(4)
                .cloned()
                .collect();
            let client = WireClient::connect_with(
                &path,
                WireClientConfig {
                    call_timeout: Some(Duration::from_millis(50)),
                    retries: 12,
                    backoff_base: Duration::from_millis(2),
                    seed,
                    ..WireClientConfig::default()
                },
            );
            match client {
                Err(e) => report
                    .mismatches
                    .push(format!("wire leg: connect failed: {e}")),
                Ok(mut client) => {
                    for index in 0..wire_queries {
                        let request = &wire_pool[(index as usize) % wire_pool.len()];
                        match client.call(request) {
                            Ok(reply) => {
                                report.wire_calls += 1;
                                let reference = compact(
                                    cold.entry(AnswerKey::of(request))
                                        .or_insert_with(|| answer_cold(&config, request)),
                                );
                                if reply.outcome != reference.outcome
                                    || reply.completion != reference.completion
                                {
                                    report.mismatches.push(format!(
                                        "wire leg: call {index} diverged: {:?}/{:?} vs cold \
                                         {:?}/{:?}",
                                        reply.outcome,
                                        reply.completion,
                                        reference.outcome,
                                        reference.completion,
                                    ));
                                }
                            }
                            Err(e) => report.mismatches.push(format!(
                                "wire leg: call {index} failed through all retries: {e}"
                            )),
                        }
                    }
                    report.wire_retries = client.retries_used();
                }
            }
            drop(server);
        }
    }
    failpoint::reset();
    report
}

/// The cold reference (outcome, completion) for one request under one
/// engine, with the grinder's fixed service knobs.
fn answer_cold_outcome(
    request: &sortnet_service::Request,
    engine: FaultSimEngine,
) -> (
    Result<sortnet_service::Answer, sortnet_service::ServiceError>,
    sortnet_service::Completion,
) {
    use sortnet_service::{answer_cold, ServiceConfig};
    let config = ServiceConfig {
        engine,
        ..ServiceConfig::default()
    };
    let response = answer_cold(&config, request);
    (response.outcome, response.completion)
}
