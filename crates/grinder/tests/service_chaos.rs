//! The chaos leg on its pinned CI seed: every request answered exactly
//! once, answers bit-identical to cold, wire calls healed by retries,
//! and no threads leaked once the services are gone.
//!
//! The failpoint registry is process-global, so this is the only
//! failpoint user in this test binary.

use std::time::{Duration, Instant};

use sortnet_grinder::grind_service_chaos;

const PINNED_SEED: u64 = 0xC0FF_EE00_5EED;

/// Live threads of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn chaos_grind_is_clean_on_the_pinned_seed() {
    let baseline = thread_count();
    let report = grind_service_chaos(PINNED_SEED, 120, 24);

    assert_eq!(
        report.submitted, report.replies,
        "every request gets exactly one reply: {report:?}"
    );
    assert_eq!(report.submitted, 120);
    assert!(
        report.mismatches.is_empty(),
        "chaos grind diverged:\n{}",
        report.mismatches.join("\n")
    );
    assert!(
        report.service_panics > 0,
        "the panic failpoint must actually fire: {report:?}"
    );
    assert!(
        report.complete > 0,
        "most of the workload still answers: {report:?}"
    );
    assert_eq!(report.wire_calls, 24, "every wire call must be healed");
    assert!(
        report.wire_retries > 0,
        "the torn-frame/slow-read failpoints must actually fire: {report:?}"
    );

    // Both services and the wire server are dropped: worker, handler,
    // accept and reaper threads must all be gone.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = thread_count();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "threads leaked: {now} alive vs baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
