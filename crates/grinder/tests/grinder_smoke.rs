//! Smoke tests of the differential grinder: a pinned clean run, the
//! catch-and-shrink pipeline against an injected oracle bug, and replay
//! reproducibility from the printed seed alone.

use sortnet_grinder::{grind_verify, run, run_case, run_verify_case, Corruption, GrinderConfig};
use sortnet_network::{BudgetReason, Budgeted, SweepBudget};

/// The pinned CI seed: these cases are ground on every push, under both
/// the forced-scalar backend and whatever SIMD the runner detects.
const PINNED_SEED: u64 = 0xC0FF_EE00_5EED;

#[test]
fn pinned_seed_grind_is_clean() {
    let outcome = run(&GrinderConfig::new(PINNED_SEED, 24));
    let Budgeted::Complete(mismatches) = outcome else {
        panic!("unlimited budget must complete");
    };
    assert!(
        mismatches.is_empty(),
        "engines disagree on pinned cases:\n{}",
        mismatches
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn an_injected_oracle_bug_is_caught_and_shrunk_small() {
    let mut config = GrinderConfig::new(PINNED_SEED, 6);
    config.corruption = Corruption::FlipLastFault;
    let mismatches = run(&config).into_value();
    assert!(
        !mismatches.is_empty(),
        "the planted oracle flip must be caught"
    );
    for m in &mismatches {
        assert!(
            m.network.size() <= 8,
            "reproducer must shrink to <= 8 comparators, kept {} (case {})",
            m.network.size(),
            m.case_index
        );
        assert_eq!(m.faults.len(), 1, "one fault must suffice to reproduce");
        assert_eq!(m.tests.len(), 1, "one test must suffice to reproduce");
        assert!(m.network.size() <= m.original_size);
        assert!(!m.detail.is_empty());
    }
}

#[test]
fn mismatches_replay_from_the_seed_alone() {
    let mut config = GrinderConfig::new(PINNED_SEED, 4);
    config.corruption = Corruption::FlipLastFault;
    let mismatches = run(&config).into_value();
    let first = mismatches.first().expect("the planted flip must be caught");
    // The replay line prints only the seed and case index; regenerating
    // from those two values must reproduce the identical shrunk report.
    let replayed = run_case(first.seed, first.case_index, Corruption::FlipLastFault)
        .expect("replay must reproduce the mismatch");
    assert_eq!(&replayed, first);
}

#[test]
fn wide_channel_cases_cross_the_64_line_wall() {
    // Every fourth case index draws 65–96 lines with multi-word test
    // vectors.  Clean on the pinned seed, and when the oracle flip is
    // planted the catch-and-shrink pipeline must chase it down the same
    // way it does on single-word cases.
    for index in [3u64, 7, 11] {
        assert!(
            run_case(PINNED_SEED, index, Corruption::None).is_none(),
            "engines disagree on pinned wide case {index}"
        );
        let m = run_case(PINNED_SEED, index, Corruption::FlipLastFault)
            .expect("the planted flip must be caught on wide cases");
        assert!(m.tests.iter().all(|t| t.len() > 64));
        assert_eq!(m.faults.len(), 1);
        assert_eq!(m.tests.len(), 1);
    }
}

#[test]
fn grinding_is_deterministic_per_seed() {
    let mut config = GrinderConfig::new(42, 4);
    config.corruption = Corruption::FlipLastFault;
    let a = run(&config).into_value();
    let b = run(&config).into_value();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn pinned_seed_verify_grind_is_clean_and_deterministic() {
    // The verify leg: minimal-binary, permutation and packed-family
    // test-set strategies against the exhaustive sorter oracle, over
    // true sorters, wounded sorters and random networks.
    let mismatches = grind_verify(PINNED_SEED, 32);
    assert!(
        mismatches.is_empty(),
        "test-set strategies disagree with the exhaustive oracle:\n{}",
        mismatches
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Case generation is a pure function of (seed, index).
    for index in [0u64, 5, 13] {
        assert_eq!(
            run_verify_case(PINNED_SEED, index),
            run_verify_case(PINNED_SEED, index)
        );
    }
}

#[test]
fn a_block_budget_caps_the_case_count() {
    let mut config = GrinderConfig::new(PINNED_SEED, 1_000_000);
    config.budget = SweepBudget::unlimited().with_max_blocks(3);
    let Budgeted::Partial {
        progress, reason, ..
    } = run(&config)
    else {
        panic!("a 3-block budget over a million cases must trip");
    };
    assert_eq!(reason, BudgetReason::Blocks);
    assert_eq!(progress.blocks, 3);
}
