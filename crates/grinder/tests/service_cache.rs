//! Differential grind of the oracle service's answer cache: cached (and
//! cached-after-eviction) answers must be bit-identical to the cold
//! path, across lane widths W ∈ {1, 4} and line counts n ∈ {8, 96}.
//! The lane-ops backend dimension comes from the environment
//! (`SORTNET_FORCE_SCALAR`), as in the other grinder CI legs.

use sortnet_grinder::grind_service_cache;

/// The pinned CI seed shared with the engine grind.
const PINNED_SEED: u64 = 0xC0FF_EE00_5EED;

#[test]
fn service_cache_answers_match_cold_across_widths_and_line_counts() {
    let report = grind_service_cache(PINNED_SEED, 48);
    assert!(
        report.mismatches.is_empty(),
        "service answers diverged from the cold path:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(report.queries, 4 * 48);
    assert!(
        report.hits > 0,
        "the grind never hit the cache — it proved nothing about cached answers"
    );
    assert!(
        report.evictions > 0,
        "the grind never evicted — the after-eviction path went unexercised"
    );
}

#[test]
fn service_cache_grind_is_deterministic_per_seed() {
    let a = grind_service_cache(PINNED_SEED, 16);
    let b = grind_service_cache(PINNED_SEED, 16);
    // The request stream and answers are pure functions of the seed;
    // only scheduling-dependent counters could differ, and with
    // single-request submits even those agree.
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.hits, b.hits);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.mismatches, b.mismatches);
}
