//! # sortnet-cli
//!
//! Glue crate hosting the workspace's runnable examples (in the top-level
//! `examples/` directory).  It re-exports the public crates so the examples
//! can be read as self-contained programs against the workspace API.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run -p sortnet-cli --example quickstart
//! cargo run -p sortnet-cli --example verify_batcher --release
//! cargo run -p sortnet-cli --example minimal_testsets
//! cargo run -p sortnet-cli --example fault_testing --release
//! cargo run -p sortnet-cli --example selector_and_merger --release
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sortnet_combinat as combinat;
pub use sortnet_faults as faults;
pub use sortnet_network as network;
pub use sortnet_testsets as testsets;
