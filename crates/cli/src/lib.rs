//! # sortnet-cli
//!
//! Glue crate hosting the workspace's runnable examples (in the top-level
//! `examples/` directory) and the `sortnet-cli` binary — a client for the
//! oracle service's Unix-socket front (`serve` / `verify` / `coverage` /
//! `augment`, with `--timeout`, `--retries` and `--deadline-ms` flags; see
//! `src/main.rs`).  It re-exports the public crates so the examples can be
//! read as self-contained programs against the workspace API.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run -p sortnet-cli --example quickstart
//! cargo run -p sortnet-cli --example verify_batcher --release
//! cargo run -p sortnet-cli --example minimal_testsets
//! cargo run -p sortnet-cli --example fault_testing --release
//! cargo run -p sortnet-cli --example fault_testing --release -- stuck-line
//! cargo run -p sortnet-cli --example selector_and_merger --release
//! ```
//!
//! `fault_testing` takes an optional fault-universe argument (`single`,
//! `stuck-line`, `pairs`, `stuck-pairs` — see
//! `sortnet_faults::universe::StandardUniverse`) and grades the paper's
//! minimal test set against that universe; with no argument it sweeps all
//! of them.  For every universe the minimal set leaves incomplete, it also
//! runs the certified minimal-augmentation search
//! (`sortnet_testsets::augment`) and prints the provably smallest set of
//! extra vectors restoring completeness.
//!
//! The examples all sit on the same width-generic streaming substrate
//! (`sortnet_network::lanes`): test-vector families are generated directly
//! in transposed `WideBlock<W>` form (`W × 64` vectors per pass) by
//! `BlockSource` implementations — counting patterns for the exhaustive
//! `2^n` family, block-filling adapters over the combinat generators for
//! the Theorem 2.2/2.4/2.5 minimal sets — so no sweep materialises its
//! vectors.  `verify_batcher` drives a `BlockSource` by hand to show the
//! machinery; the others go through the `testsets::verify` front end and
//! the fault engine, which use it internally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sortnet_combinat as combinat;
pub use sortnet_faults as faults;
pub use sortnet_network as network;
pub use sortnet_service as service;
pub use sortnet_testsets as testsets;
