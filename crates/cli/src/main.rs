//! Command-line client (and one-shot host) for the oracle service's
//! Unix-socket wire front.
//!
//! ```text
//! # serve a socket until killed
//! cargo run -p sortnet-cli -- serve --socket /tmp/oracle.sock
//!
//! # drive it from another shell, with a resilient client
//! cargo run -p sortnet-cli -- coverage -n 8 --socket /tmp/oracle.sock \
//!     --timeout 500 --retries 3 --deadline-ms 2000
//!
//! # or do both in one process (no second shell needed)
//! cargo run -p sortnet-cli -- verify -n 8 --self-host
//! ```
//!
//! Queries are built deterministically from `-n`: the Batcher
//! odd–even merge sorter on `n` lines, the paper's minimal binary
//! sorter test set (optionally truncated with `--drop`), stuck-line
//! faults.  `verify` asks the sorter property over the minimal binary
//! strategy, `coverage` grades the test set, `augment` searches for
//! the smallest completion of the truncated set.  The exit status is
//! non-zero when the oracle answers with any typed error, so the
//! binary scripts cleanly.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sortnet_combinat::ChannelVec;
use sortnet_faults::coverage::RedundancyMode;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::PackedFamily;
use sortnet_service::wire::{WireClient, WireClientConfig, WireResponse, WireServer};
use sortnet_service::{Query, Request, Service, ServiceConfig};
use sortnet_testsets::verify::{Property, Strategy};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sortnet-cli serve   --socket PATH [--workers N]\n\
         \x20      sortnet-cli verify   -n N [query options]\n\
         \x20      sortnet-cli coverage -n N [query options]\n\
         \x20      sortnet-cli augment  -n N [query options]\n\
         \n\
         query options:\n\
         \x20 --socket PATH     socket of a running `serve` instance\n\
         \x20 --self-host       spin the service up in-process instead\n\
         \x20 --drop K          truncate the test set by K vectors\n\
         \x20 --timeout MS      per-call client timeout (default: none)\n\
         \x20 --retries N       client reconnect retries (default: 0)\n\
         \x20 --deadline-ms D   per-request service deadline (default: none)\n\
         \x20 --redundancy M    coverage redundancy grading: exhaustive,\n\
         \x20                   relative:FAMILY or skip (default: skip);\n\
         \x20                   FAMILY is sorted-strings, weight-le-K,\n\
         \x20                   single-runs or necessity-witnesses"
    );
    ExitCode::from(2)
}

struct Options {
    socket: Option<String>,
    self_host: bool,
    n: usize,
    drop: usize,
    workers: usize,
    timeout: Option<Duration>,
    retries: u32,
    deadline: Option<Duration>,
    redundancy: RedundancyMode,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            socket: None,
            self_host: false,
            n: 8,
            drop: 0,
            workers: 2,
            timeout: None,
            retries: 0,
            deadline: None,
            redundancy: RedundancyMode::Skip,
        }
    }
}

/// Parses a `--redundancy` value; `None` is a malformed mode (the
/// family names are exactly the [`PackedFamily::parse`] vocabulary).
fn parse_redundancy(s: &str) -> Option<RedundancyMode> {
    match s {
        "exhaustive" => Some(RedundancyMode::Exhaustive),
        "skip" => Some(RedundancyMode::Skip),
        _ => s
            .strip_prefix("relative:")
            .and_then(PackedFamily::parse)
            .map(RedundancyMode::RelativeTo),
    }
}

/// The query's base test set, with the last `drop` vectors withheld
/// (so `coverage` has something to miss and `augment` has something
/// feasible to restore).  Below the enumeration wall this is the
/// paper's minimal binary sorter test set (`2^n − n − 1` strings);
/// from `n = 26` that materialisation is refused, so the packed
/// sorted-strings family (`n + 1` vectors) takes over — which is what
/// lets `coverage -n 96` run end to end.
fn binary_tests(n: usize, drop: usize) -> Vec<ChannelVec> {
    let mut tests: Vec<ChannelVec> = if n < 26 {
        sortnet_testsets::sorting::binary_testset(n)
            .into_iter()
            .map(ChannelVec::from_bitstring)
            .collect()
    } else {
        PackedFamily::SortedStrings.collect(n)
    };
    tests.truncate(tests.len().saturating_sub(drop));
    tests
}

fn build_request(command: &str, options: &Options) -> Request {
    let n = options.n;
    let query = match command {
        "verify" => Query::Verify {
            property: Property::Sorter,
            strategy: Strategy::MinimalBinary,
        },
        "coverage" => Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: binary_tests(n, options.drop),
            redundancy: options.redundancy,
        },
        _ => Query::Augment {
            universe: StandardUniverse::StuckLine,
            tests: binary_tests(n, options.drop),
        },
    };
    Request {
        network: odd_even_merge_sort(n),
        query,
        budget: None,
        deadline: options.deadline.map(|d| Instant::now() + d),
    }
}

fn print_response(response: &WireResponse) -> bool {
    println!("completion: {:?}", response.completion);
    println!("cache:      {:?}", response.cache);
    println!("micros:     {}", response.micros);
    match &response.outcome {
        Ok(answer) => {
            println!("answer:     {answer:?}");
            true
        }
        Err(text) => {
            println!("error:      {text}");
            false
        }
    }
}

fn run_query(command: &str, options: &Options) -> ExitCode {
    let request = build_request(command, options);
    let client_config = WireClientConfig {
        call_timeout: options.timeout,
        retries: options.retries,
        ..WireClientConfig::default()
    };

    // One-shot self-hosting: service + wire server + client in-process,
    // over a private socket, torn down before exit.
    let (_host, socket) = if options.self_host {
        let service = Arc::new(Service::start(ServiceConfig {
            workers: options.workers,
            ..ServiceConfig::default()
        }));
        let path = std::env::temp_dir().join(format!("sortnet-cli-{}.sock", std::process::id()));
        match WireServer::bind(&path, service) {
            Ok(server) => (Some(server), path.display().to_string()),
            Err(e) => {
                eprintln!("sortnet-cli: self-host bind failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match &options.socket {
            Some(path) => (None, path.clone()),
            None => {
                eprintln!("sortnet-cli: {command} needs --socket PATH or --self-host");
                return usage();
            }
        }
    };

    let mut client = match WireClient::connect_with(&socket, client_config) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("sortnet-cli: connect to {socket} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.call(&request) {
        Ok(response) => {
            if client.retries_used() > 0 {
                println!("retries:    {}", client.retries_used());
            }
            if print_response(&response) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!(
                "sortnet-cli: call failed after {} retries: {e}",
                options.retries
            );
            ExitCode::FAILURE
        }
    }
}

fn run_serve(options: &Options) -> ExitCode {
    let Some(socket) = &options.socket else {
        eprintln!("sortnet-cli: serve needs --socket PATH");
        return usage();
    };
    let service = Arc::new(Service::start(ServiceConfig {
        workers: options.workers,
        ..ServiceConfig::default()
    }));
    let server = match WireServer::bind(socket, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sortnet-cli: bind {socket} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving on {}; kill the process to stop",
        server.path().display()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    if !matches!(
        command.as_str(),
        "serve" | "verify" | "coverage" | "augment"
    ) {
        return usage();
    }

    let mut options = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> Result<u64, ExitCode> {
            args.next()
                .as_deref()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    eprintln!("sortnet-cli: {what} needs a numeric argument");
                    usage()
                })
        };
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(path) => options.socket = Some(path),
                None => {
                    eprintln!("sortnet-cli: --socket needs a path argument");
                    return usage();
                }
            },
            "--self-host" => options.self_host = true,
            "-n" | "--lines" => match value("-n") {
                Ok(v) if (2..=512).contains(&(v as usize)) => options.n = v as usize,
                Ok(_) => {
                    eprintln!("sortnet-cli: -n must be in 2..=512");
                    return usage();
                }
                Err(code) => return code,
            },
            "--drop" => match value("--drop") {
                Ok(v) => options.drop = v as usize,
                Err(code) => return code,
            },
            "--workers" => match value("--workers") {
                Ok(v) if v >= 1 => options.workers = v as usize,
                Ok(_) => {
                    eprintln!("sortnet-cli: --workers must be at least 1");
                    return usage();
                }
                Err(code) => return code,
            },
            "--timeout" => match value("--timeout") {
                Ok(v) => options.timeout = Some(Duration::from_millis(v)),
                Err(code) => return code,
            },
            "--retries" => match value("--retries") {
                Ok(v) => options.retries = v.min(u64::from(u32::MAX)) as u32,
                Err(code) => return code,
            },
            "--deadline-ms" => match value("--deadline-ms") {
                Ok(v) => options.deadline = Some(Duration::from_millis(v)),
                Err(code) => return code,
            },
            "--redundancy" => match args.next().as_deref().map(parse_redundancy) {
                Some(Some(mode)) => options.redundancy = mode,
                Some(None) => {
                    eprintln!(
                        "sortnet-cli: --redundancy must be exhaustive, skip or \
                         relative:FAMILY (sorted-strings, weight-le-K, \
                         single-runs, necessity-witnesses)"
                    );
                    return usage();
                }
                None => {
                    eprintln!("sortnet-cli: --redundancy needs a mode argument");
                    return usage();
                }
            },
            _ => return usage(),
        }
    }

    match command.as_str() {
        "serve" => run_serve(&options),
        _ => run_query(&command, &options),
    }
}
