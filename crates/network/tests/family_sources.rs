//! Differential tests of the packed structured families: every
//! [`PackedFamily`] is checked, at seam-straddling widths, against a
//! *shift-free* `Vec<u8>` reference model that never touches a word or
//! a bit mask — so an off-by-one in the lane-word range arithmetic
//! cannot hide in a reference built from the same arithmetic.
//!
//! Three layers are graded, per family × n ∈ {63, 64, 65, 96, 127, 128}:
//!
//! 1. the scalar per-index accessor ([`PackedFamily::vector`]);
//! 2. the direct block fill ([`FamilySource`] drained at W ∈ {1, 4} —
//!    family sizes are not multiples of the block capacity, so partial
//!    blocks and the 64-vector seams inside a block are always hit);
//! 3. the full sweep engine over the family, on every runnable lane-ops
//!    backend × W ∈ {1, 4}, against a `Vec<u8>` comparator simulation.

use sortnet_combinat::{ChannelPack, ChannelVec};
use sortnet_network::lanes::{
    collect_packed, sweep_network_packed_with, Backend, FamilySource, PackedFamily,
};
use sortnet_network::Network;

const WIDTHS_N: [usize; 6] = [63, 64, 65, 96, 127, 128];

fn families() -> Vec<PackedFamily> {
    vec![
        PackedFamily::SortedStrings,
        PackedFamily::WeightAtMost(0),
        PackedFamily::WeightAtMost(2),
        PackedFamily::SingleRuns,
        PackedFamily::NecessityWitnesses,
    ]
}

// ---- the shift-free reference model ------------------------------------

/// All subsets of `{0, …, n−1}` of size ≤ `k`, as 0/1 membership rows,
/// weight-ascending and colex within each weight — derived by recursive
/// enumeration plus an explicit sort, sharing no code with the streamed
/// combination advance.
fn reference_weight_at_most(n: usize, k: usize) -> Vec<Vec<u8>> {
    fn subsets(
        n: usize,
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        out.push(current.clone());
        if current.len() == k {
            return;
        }
        for i in start..n {
            current.push(i);
            subsets(n, k, i + 1, current, out);
            current.pop();
        }
    }
    let mut all = Vec::new();
    subsets(n, k.min(n), 0, &mut Vec::new(), &mut all);
    // Weight-ascending, colex within weight: compare member lists from
    // the largest element down.
    all.sort_by(|a, b| {
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    });
    all.iter()
        .map(|members| {
            let mut row = vec![0u8; n];
            for &m in members {
                row[m] = 1;
            }
            row
        })
        .collect()
}

/// The family contents spelled out position-by-position over `Vec<u8>`.
fn reference_family(family: PackedFamily, n: usize) -> Vec<Vec<u8>> {
    match family {
        PackedFamily::SortedStrings => (0..=n)
            .map(|t| {
                let mut row = vec![0u8; n];
                for slot in row.iter_mut().skip(n - t) {
                    *slot = 1;
                }
                row
            })
            .collect(),
        PackedFamily::WeightAtMost(k) => reference_weight_at_most(n, k as usize),
        PackedFamily::SingleRuns => {
            let mut out = vec![vec![0u8; n]];
            for s in 0..n {
                for e in s..n {
                    let mut row = vec![0u8; n];
                    for slot in row.iter_mut().take(e + 1).skip(s) {
                        *slot = 1;
                    }
                    out.push(row);
                }
            }
            out
        }
        PackedFamily::NecessityWitnesses => (1..n)
            .map(|t| {
                // 0^{z−1} 1 0 1^{t−1} with z = n − t: the sorted string
                // of weight t with its 0/1 boundary pair swapped.
                let z = n - t;
                let mut row = vec![0u8; n];
                row[z - 1] = 1;
                for slot in row.iter_mut().skip(z + 1) {
                    *slot = 1;
                }
                row
            })
            .collect(),
    }
}

fn assert_rows_equal(got: &[ChannelVec], want: &[Vec<u8>], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: family size");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{context}: vector {i} length");
        for (line, &bit) in w.iter().enumerate() {
            assert_eq!(g.bit(line), bit == 1, "{context}: vector {i}, line {line}");
        }
    }
}

// ---- layer 1 + 2: accessor and block fill vs the reference -------------

#[test]
fn scalar_accessors_match_the_reference_model() {
    for n in WIDTHS_N {
        for family in families() {
            let want = reference_family(family, n);
            assert_eq!(family.len(n), want.len() as u64, "{family} n={n}");
            let got: Vec<ChannelVec> = (0..family.len(n)).map(|i| family.vector(n, i)).collect();
            assert_rows_equal(&got, &want, &format!("{family} n={n} accessor"));
        }
    }
}

#[test]
fn block_fill_matches_the_reference_model_at_both_widths() {
    for n in WIDTHS_N {
        for family in families() {
            let want = reference_family(family, n);
            let w1: Vec<ChannelVec> =
                collect_packed::<1, _, _>(FamilySource::<ChannelVec>::new(family, n));
            let w4: Vec<ChannelVec> =
                collect_packed::<4, _, _>(FamilySource::<ChannelVec>::new(family, n));
            assert_rows_equal(&w1, &want, &format!("{family} n={n} W=1"));
            assert_rows_equal(&w4, &want, &format!("{family} n={n} W=4"));
        }
    }
}

#[test]
fn source_accessors_agree_with_their_own_stream() {
    // FamilySource::vector is the random-access face of the same family
    // the stream fills block-wise; both must agree at every index.
    for n in [65usize, 96] {
        for family in families() {
            let source = FamilySource::<ChannelVec>::new(family, n);
            let streamed: Vec<ChannelVec> =
                collect_packed::<4, _, _>(FamilySource::<ChannelVec>::new(family, n));
            assert_eq!(source.len(), streamed.len() as u64);
            for (i, vector) in streamed.iter().enumerate() {
                assert_eq!(&source.vector(i as u64), vector, "{family} n={n} i={i}");
            }
        }
    }
}

// ---- layer 3: the sweep engine over the family, per backend ------------

/// Shift-free comparator simulation: apply the network to a `Vec<u8>`
/// row, then report whether the output is non-decreasing.
fn sorts_reference(network: &Network, row: &[u8]) -> bool {
    let mut v = row.to_vec();
    for c in network.comparators() {
        let (a, b) = (c.min_line(), c.max_line());
        if v[a] > v[b] {
            v.swap(a, b);
        }
    }
    v.windows(2).all(|w| w[0] <= w[1])
}

#[test]
fn family_sweeps_agree_with_the_reference_on_every_backend() {
    for n in WIDTHS_N {
        // A deliberately non-sorting network, so both the pass and the
        // witness paths are exercised depending on the family.
        let network = Network::from_pairs(n, &[(0, n - 1), (1, n / 2), (n / 3, n - 2), (0, 1)]);
        for family in families() {
            let want = reference_family(family, n);
            // First reference row the network fails to sort, if any.
            let first_unsorted = want.iter().position(|row| !sorts_reference(&network, row));
            for backend in Backend::runnable() {
                let outcomes = [
                    (
                        1usize,
                        sweep_network_packed_with::<1, ChannelVec, _>(
                            FamilySource::<ChannelVec>::new(family, n),
                            &network,
                            backend,
                        ),
                    ),
                    (
                        4usize,
                        sweep_network_packed_with::<4, ChannelVec, _>(
                            FamilySource::<ChannelVec>::new(family, n),
                            &network,
                            backend,
                        ),
                    ),
                ];
                for (width, outcome) in outcomes {
                    let context = format!("{family} n={n} {backend:?} W={width}");
                    match first_unsorted {
                        None => {
                            assert!(outcome.witness.is_none(), "{context}: spurious witness");
                            assert_eq!(outcome.tests_run, want.len() as u64, "{context}");
                        }
                        Some(index) => {
                            let witness = outcome.witness.unwrap_or_else(|| {
                                panic!("{context}: the engine missed reference row {index}")
                            });
                            // The engine reports the first violating
                            // *input* in source order.
                            let row = &want[index];
                            for (line, &bit) in row.iter().enumerate() {
                                assert_eq!(witness.bit(line), bit == 1, "{context}: line {line}");
                            }
                            assert!(outcome.tests_run > index as u64, "{context}");
                        }
                    }
                }
            }
        }
    }
}
