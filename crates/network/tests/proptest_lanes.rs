//! Property-based cross-check: width-generic [`WideBlock`] sweeps must
//! agree exactly with scalar evaluation on random networks, for every lane
//! width, and the streaming block sources must reproduce their families
//! bit for bit.

use proptest::prelude::*;

use sortnet_combinat::BitString;
use sortnet_network::bitparallel::{
    count_unsorted_outputs_backend, count_unsorted_outputs_wide, find_unsorted_input_backend,
    find_unsorted_input_wide, ParallelismHint,
};
use sortnet_network::lanes::{self, Backend, BlockSource, IterSource, RangeSource, WideBlock};
use sortnet_network::{Comparator, Network};

const N: usize = 9;

/// Strategy: a random standard network on [`N`] lines with up to
/// `max_size` comparators.
fn arb_network(max_size: usize) -> impl Strategy<Value = Network> {
    prop::collection::vec((0..N, 0..N), 1..=max_size).prop_map(|pairs| {
        let mut comparators: Vec<Comparator> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Comparator::new(a, b))
            .collect();
        if comparators.is_empty() {
            comparators.push(Comparator::new(0, 1));
        }
        Network::from_comparators(N, comparators)
    })
}

/// Strategy: a batch of random test vectors on [`N`] lines, long enough to
/// span multiple words of every width under test.
fn arb_tests() -> impl Strategy<Value = Vec<BitString>> {
    prop::collection::vec(0u64..(1u64 << N), 1..=300).prop_map(|words| {
        words
            .into_iter()
            .map(|w| BitString::from_word(w, N))
            .collect()
    })
}

/// Runs `tests` through `net` in `W`-wide blocks, on every runnable
/// lane-ops backend, and checks every output and every unsorted-mask bit
/// against the scalar evaluator.
fn check_width<const W: usize>(net: &Network, tests: &[BitString]) {
    for backend in Backend::runnable() {
        for chunk in tests.chunks(WideBlock::<W>::capacity() as usize) {
            let mut block = WideBlock::<W>::from_strings(N, chunk);
            block.run_with(backend, net);
            let masks = block.unsorted_masks_with(backend);
            for (j, input) in chunk.iter().enumerate() {
                let scalar = net.apply_bits(input);
                assert_eq!(
                    block.extract(j as u32),
                    scalar,
                    "W={W} backend={} input {input} output mismatch",
                    backend.name()
                );
                assert_eq!(
                    (masks[j / 64] >> (j % 64)) & 1 == 1,
                    !scalar.is_sorted(),
                    "W={W} backend={} input {input} mask mismatch",
                    backend.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `WideBlock<W>` sweeps for W ∈ {1, 2, 4, 8, 16} — on every runnable
    /// lane-ops backend — agree exactly with scalar evaluation on random
    /// networks and random test batches.
    #[test]
    fn wide_blocks_agree_with_scalar_evaluation(
        net in arb_network(14),
        tests in arb_tests(),
    ) {
        check_width::<1>(&net, &tests);
        check_width::<2>(&net, &tests);
        check_width::<4>(&net, &tests);
        check_width::<8>(&net, &tests);
        check_width::<16>(&net, &tests);
    }

    /// The exhaustive sweeps return identical verdicts, witnesses and
    /// counts on every runnable backend (scalar, portable, AVX2 where
    /// available), at narrow and wide lane widths.
    #[test]
    fn exhaustive_sweeps_are_backend_independent(net in arb_network(14)) {
        let reference =
            find_unsorted_input_backend::<1>(&net, ParallelismHint::Sequential, Backend::Scalar);
        let count_reference =
            count_unsorted_outputs_backend::<1>(&net, ParallelismHint::Sequential, Backend::Scalar);
        for backend in Backend::runnable() {
            prop_assert_eq!(
                find_unsorted_input_backend::<4>(&net, ParallelismHint::Sequential, backend),
                reference.clone(),
                "backend {}", backend.name()
            );
            prop_assert_eq!(
                find_unsorted_input_backend::<16>(&net, ParallelismHint::Rayon, backend),
                reference.clone(),
                "backend {}", backend.name()
            );
            prop_assert_eq!(
                count_unsorted_outputs_backend::<8>(&net, ParallelismHint::Sequential, backend),
                count_reference,
                "backend {}", backend.name()
            );
        }
    }

    /// The exhaustive sweeps return identical verdicts, witnesses and
    /// counts at every width (and equal to the scalar definition).
    #[test]
    fn exhaustive_sweeps_are_width_independent(net in arb_network(14)) {
        let scalar_first = BitString::all(N).find(|s| !net.apply_bits(s).is_sorted());
        let scalar_count = BitString::all(N)
            .filter(|s| !net.apply_bits(s).is_sorted())
            .count() as u64;
        prop_assert_eq!(
            find_unsorted_input_wide::<1>(&net, ParallelismHint::Sequential),
            scalar_first
        );
        prop_assert_eq!(
            find_unsorted_input_wide::<2>(&net, ParallelismHint::Rayon),
            scalar_first
        );
        prop_assert_eq!(
            find_unsorted_input_wide::<4>(&net, ParallelismHint::Sequential),
            scalar_first
        );
        prop_assert_eq!(
            count_unsorted_outputs_wide::<1>(&net, ParallelismHint::Sequential),
            scalar_count
        );
        prop_assert_eq!(
            count_unsorted_outputs_wide::<4>(&net, ParallelismHint::Rayon),
            scalar_count
        );
    }

    /// `RangeSource` yields bit-for-bit the same vector sequence as the
    /// scalar enumeration, at every width.
    #[test]
    fn range_source_matches_scalar_enumeration(n in 1usize..11) {
        let expected: Vec<BitString> = BitString::all(n).collect();
        prop_assert_eq!(
            lanes::collect_strings::<1, _>(RangeSource::exhaustive(n)),
            expected.clone()
        );
        prop_assert_eq!(
            lanes::collect_strings::<2, _>(RangeSource::exhaustive(n)),
            expected.clone()
        );
        prop_assert_eq!(
            lanes::collect_strings::<4, _>(RangeSource::exhaustive(n)),
            expected
        );
    }

    /// `IterSource` is faithful to an arbitrary underlying iterator:
    /// streaming through blocks of any width loses, duplicates and reorders
    /// nothing.
    #[test]
    fn iter_source_round_trips_random_batches(tests in arb_tests()) {
        prop_assert_eq!(
            lanes::collect_strings::<1, _>(IterSource::new(N, tests.clone())),
            tests.clone()
        );
        prop_assert_eq!(
            lanes::collect_strings::<4, _>(IterSource::new(N, tests.clone())),
            tests.clone()
        );
        // Block counts respect the width's capacity.
        let mut source: IterSource<_> = IterSource::new(N, tests.clone());
        let mut block = WideBlock::<2>::zeroed(N);
        let mut total = 0u64;
        while BlockSource::<2>::next_block(&mut source, &mut block) {
            prop_assert!(block.count() >= 1);
            prop_assert!(block.count() <= WideBlock::<2>::capacity());
            total += u64::from(block.count());
        }
        prop_assert_eq!(total, tests.len() as u64);
    }
}
