//! Property-based tests for the comparator-network substrate.

use proptest::prelude::*;

use sortnet_combinat::BitString;
use sortnet_network::bitparallel::{count_unsorted_outputs, BitBlock, ParallelismHint};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::{Comparator, Network};

fn arb_network(n: usize, max_size: usize) -> impl Strategy<Value = Network> {
    prop::collection::vec((0..n, 0..n), 0..=max_size).prop_map(move |pairs| {
        let comparators = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Comparator::new(a, b))
            .collect();
        Network::from_comparators(n, comparators)
    })
}

fn arb_bitstring(n: usize) -> impl Strategy<Value = BitString> {
    (0u64..(1u64 << n)).prop_map(move |w| BitString::from_word(w, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The packed 0/1 evaluator agrees with evaluating the same input as a
    /// plain slice of integers.
    #[test]
    fn apply_bits_matches_apply_slice(net in arb_network(10, 30), s in arb_bitstring(10)) {
        let via_bits = net.apply_bits(&s).to_vec();
        let via_slice = net.apply_vec(&s.to_vec());
        prop_assert_eq!(via_bits, via_slice);
    }

    /// The 64-lane bit-parallel evaluator agrees with the scalar evaluator
    /// on every lane.
    #[test]
    fn bitblock_matches_scalar(net in arb_network(9, 24), start in 0u64..((1u64 << 9) - 64)) {
        let mut block = BitBlock::from_range(9, start, 64);
        block.run(&net);
        let mask = block.unsorted_mask();
        for j in 0..64u32 {
            let input = BitString::from_word(start + u64::from(j), 9);
            let scalar = net.apply_bits(&input);
            prop_assert_eq!(block.extract(j), scalar);
            prop_assert_eq!((mask >> j) & 1 == 1, !scalar.is_sorted());
        }
    }

    /// Outputs of a comparator network are always a permutation of inputs
    /// (checked on integer slices), and prepending or appending a full
    /// sorter makes any network sort.
    #[test]
    fn composition_with_a_sorter_sorts(net in arb_network(8, 20), s in arb_bitstring(8)) {
        let composed = net.then(&odd_even_merge_sort(8));
        prop_assert!(composed.apply_bits(&s).is_sorted());
        let mut values: Vec<u8> = s.to_vec();
        let out = net.apply_vec(&values);
        values.sort_unstable();
        let mut out_sorted = out.clone();
        out_sorted.sort_unstable();
        prop_assert_eq!(out_sorted, values);
    }

    /// The greedy layering never places two comparators sharing a line in
    /// the same layer, and the sequential count of unsorted outputs matches
    /// the rayon count.
    #[test]
    fn layers_are_conflict_free_and_counters_agree(net in arb_network(8, 24)) {
        for layer in net.layers() {
            for (i, a) in layer.iter().enumerate() {
                for b in &layer[i + 1..] {
                    prop_assert!(!a.conflicts_with(b));
                }
            }
        }
        prop_assert_eq!(
            count_unsorted_outputs(&net, ParallelismHint::Sequential),
            count_unsorted_outputs(&net, ParallelismHint::Rayon)
        );
    }

    /// Compact-notation round trip.
    #[test]
    fn compact_notation_roundtrip(net in arb_network(9, 18)) {
        let parsed = Network::parse_compact(9, &net.to_compact_string()).unwrap();
        prop_assert_eq!(parsed, net);
    }

    /// Standardisation is idempotent and preserves size.
    #[test]
    fn standardisation_is_idempotent(net in arb_network(8, 20)) {
        let std1 = net.standardised();
        prop_assert!(std1.is_standard());
        prop_assert_eq!(std1.size(), net.size());
        prop_assert_eq!(std1.standardised(), std1.clone());
    }
}
