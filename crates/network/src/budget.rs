//! Sweep budgets, cancellation and graceful partial outcomes.
//!
//! Exhaustive sweeps, detection-matrix builds and redundancy checks are
//! open-ended: on a hostile or merely large input they run for as long
//! as the arithmetic says.  A [`SweepBudget`] bounds such a run along
//! three axes — processed blocks, fork-node count, a wall-clock
//! deadline — and a shared [`CancelToken`] lets another thread stop it
//! co-operatively.  A budgeted engine entry point returns a
//! [`Budgeted`] outcome: [`Complete`](Budgeted::Complete) when the run
//! finished, or [`Partial`](Budgeted::Partial) carrying the best answer
//! derivable from the work actually done, the [`SweepProgress`] at the
//! trip point, and the [`BudgetReason`] that tripped.
//!
//! # Granularity and the no-partial-rows guarantee
//!
//! Budgets are checked at *block boundaries* (one block = up to
//! `64 × W` test vectors of a [`WideBlock`](crate::lanes::WideBlock))
//! and at *fork sites* in the multi-fault engine.  A trip mid-block
//! discards that block's contribution entirely: a partial detection
//! matrix or coverage report only ever reflects whole committed blocks,
//! so no partially-written row is observable.  Consequently a budget is
//! coarse — a sweep may overshoot `max_blocks` by at most the block it
//! was processing — but every partial answer is exact for the prefix of
//! tests it covers.
//!
//! Deadlines are polled once per block and once per 64 forks (an
//! `Instant::now` per fork would dominate small forks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, clonable cancellation flag.
///
/// Clones observe the same flag: cancel from any thread, observe from
/// the sweep.  Cancellation is co-operative and permanent (there is no
/// un-cancel).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: every budgeted run holding a clone stops at its
    /// next budget check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](Self::cancel) has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource bounds for one budgeted engine run.
///
/// The default is unlimited on every axis, so
/// `SweepBudget::default()` makes a budgeted entry point behave exactly
/// like its unbudgeted sibling.
#[derive(Clone, Debug, Default)]
pub struct SweepBudget {
    /// Maximum number of blocks to process (`None` = unlimited).
    pub max_blocks: Option<u64>,
    /// Maximum number of fork nodes in the multi-fault engine
    /// (`None` = unlimited).
    pub max_forks: Option<u64>,
    /// Wall-clock deadline (`None` = none).
    pub deadline: Option<Instant>,
    /// Co-operative cancellation flag (`None` = not cancellable).
    pub cancel: Option<CancelToken>,
}

impl SweepBudget {
    /// An unlimited budget (same as [`Default`]).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the number of processed blocks.
    #[must_use]
    pub fn with_max_blocks(mut self, blocks: u64) -> Self {
        self.max_blocks = Some(blocks);
        self
    }

    /// Caps the number of fork nodes in multi-fault sweeps.
    #[must_use]
    pub fn with_max_forks(mut self, forks: u64) -> Self {
        self.max_forks = Some(forks);
        self
    }

    /// Sets an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    #[must_use]
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` when no axis is bounded (the default).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_blocks.is_none()
            && self.max_forks.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// Splits this budget into `parts` per-worker shares for a
    /// fork/join run: each counted axis (`max_blocks`, `max_forks`) is
    /// divided so the shares sum *exactly* to the original cap (share
    /// `i` gets `cap / parts`, plus one while `i < cap % parts`), and
    /// the deadline and cancel token are cloned into every share.
    ///
    /// Chunks consuming their shares independently therefore never
    /// commit more blocks or forks in total than the undivided budget
    /// would have admitted.  A chunk may trip on its share while
    /// another chunk's share goes unused — that under-utilisation is
    /// conservative (less work done than a sequential run), never a
    /// budget overrun.
    ///
    /// # Panics
    /// Panics if `parts` is zero.
    #[must_use]
    pub fn split_shares(&self, parts: usize) -> Vec<SweepBudget> {
        assert!(parts > 0, "cannot split a budget into zero shares");
        let split_axis = |cap: Option<u64>, i: u64| {
            cap.map(|max| max / parts as u64 + u64::from(i < max % parts as u64))
        };
        (0..parts as u64)
            .map(|i| SweepBudget {
                max_blocks: split_axis(self.max_blocks, i),
                max_forks: split_axis(self.max_forks, i),
                deadline: self.deadline,
                cancel: self.cancel.clone(),
            })
            .collect()
    }
}

/// Which budget axis stopped a [`Partial`](Budgeted::Partial) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetReason {
    /// [`SweepBudget::max_blocks`] was exhausted.
    Blocks,
    /// [`SweepBudget::max_forks`] was exhausted.
    Forks,
    /// The wall-clock [`SweepBudget::deadline`] passed.
    Deadline,
    /// The [`CancelToken`] was tripped.
    Cancelled,
}

/// Work accounted by a budgeted run up to the point it returned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepProgress {
    /// Whole blocks committed.
    pub blocks: u64,
    /// Test vectors contained in those blocks.
    pub vectors: u64,
    /// Fork nodes executed in the multi-fault engine.
    pub forks: u64,
}

/// The admission meter a budgeted run threads through its loops.
///
/// One meter spans one logical run even when that run has several
/// phases (e.g. a coverage grade = first-detection sweep + redundancy
/// sweep): the phases share the meter so the budget bounds the whole
/// run, not each phase separately.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: SweepBudget,
    progress: SweepProgress,
    tripped: Option<BudgetReason>,
}

impl BudgetMeter {
    /// A meter enforcing `budget`.
    #[must_use]
    pub fn new(budget: &SweepBudget) -> Self {
        Self {
            budget: budget.clone(),
            progress: SweepProgress::default(),
            tripped: None,
        }
    }

    /// A meter that admits everything (for the unbudgeted legacy paths;
    /// its checks compile to a handful of `None` tests).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::new(&SweepBudget::default())
    }

    fn check_cancel_and_deadline(&mut self) -> bool {
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                self.tripped = Some(BudgetReason::Cancelled);
                return false;
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                self.tripped = Some(BudgetReason::Deadline);
                return false;
            }
        }
        true
    }

    /// Asks to process one more block of `vectors` test vectors.
    ///
    /// `true` admits the block (and accounts it); `false` means the
    /// budget tripped — the caller must stop without committing the
    /// block.  Once tripped, a meter refuses forever.
    #[must_use]
    pub fn admit_block(&mut self, vectors: u64) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if !self.check_cancel_and_deadline() {
            return false;
        }
        if let Some(max) = self.budget.max_blocks {
            if self.progress.blocks >= max {
                self.tripped = Some(BudgetReason::Blocks);
                return false;
            }
        }
        self.progress.blocks += 1;
        self.progress.vectors += vectors;
        true
    }

    /// Asks to execute one more fork node.
    ///
    /// `false` means the budget tripped mid-block; the caller must
    /// discard the in-flight block's contribution (the no-partial-rows
    /// guarantee).  The deadline is polled every 64 forks to amortise
    /// `Instant::now`.
    #[must_use]
    pub fn admit_fork(&mut self) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                self.tripped = Some(BudgetReason::Cancelled);
                return false;
            }
        }
        if self.progress.forks & 63 == 0 {
            if let Some(deadline) = self.budget.deadline {
                if Instant::now() >= deadline {
                    self.tripped = Some(BudgetReason::Deadline);
                    return false;
                }
            }
        }
        if let Some(max) = self.budget.max_forks {
            if self.progress.forks >= max {
                self.tripped = Some(BudgetReason::Forks);
                return false;
            }
        }
        self.progress.forks += 1;
        true
    }

    /// Merges a finished per-chunk meter's outcome into this one at a
    /// fork/join boundary: progress sums across chunks, and the first
    /// observed trip reason (in absorption order) is adopted, so a
    /// parallel run whose chunks ran under [`SweepBudget::split_shares`]
    /// finishes [`Budgeted::Partial`] whenever *any* chunk tripped.
    pub fn absorb(&mut self, progress: SweepProgress, tripped: Option<BudgetReason>) {
        self.progress.blocks += progress.blocks;
        self.progress.vectors += progress.vectors;
        self.progress.forks += progress.forks;
        if self.tripped.is_none() {
            self.tripped = tripped;
        }
    }

    /// The axis that tripped, if any.
    #[must_use]
    pub fn tripped(&self) -> Option<BudgetReason> {
        self.tripped
    }

    /// The work committed so far.
    #[must_use]
    pub fn progress(&self) -> SweepProgress {
        self.progress
    }

    /// Wraps `value` as [`Budgeted::Complete`] when the meter never
    /// tripped, [`Budgeted::Partial`] otherwise.
    #[must_use]
    pub fn finish<T>(&self, value: T) -> Budgeted<T> {
        match self.tripped {
            None => Budgeted::Complete(value),
            Some(reason) => Budgeted::Partial {
                progress: self.progress,
                reason,
                best_so_far: value,
            },
        }
    }
}

/// The outcome of a budgeted run: the full answer, or the best answer
/// derivable from the work done before the budget tripped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Budgeted<T> {
    /// The run finished; the value is the same one the unbudgeted entry
    /// point would have produced.
    Complete(T),
    /// The budget tripped; `best_so_far` is exact for the committed
    /// prefix of the work (a lower bound on detection counts, an
    /// uncertified greedy answer for searches).
    Partial {
        /// Work committed before the trip.
        progress: SweepProgress,
        /// The axis that tripped.
        reason: BudgetReason,
        /// The best answer derivable from the committed work.
        best_so_far: T,
    },
}

impl<T> Budgeted<T> {
    /// `true` for [`Complete`](Self::Complete).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete(_))
    }

    /// The carried value, complete or partial.
    #[must_use]
    pub fn value(&self) -> &T {
        match self {
            Self::Complete(v) | Self::Partial { best_so_far: v, .. } => v,
        }
    }

    /// Consumes the outcome, returning the carried value.
    #[must_use]
    pub fn into_value(self) -> T {
        match self {
            Self::Complete(v) | Self::Partial { best_so_far: v, .. } => v,
        }
    }

    /// Maps the carried value, preserving completeness and progress.
    #[must_use]
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Budgeted<U> {
        match self {
            Self::Complete(v) => Budgeted::Complete(f(v)),
            Self::Partial {
                progress,
                reason,
                best_so_far,
            } => Budgeted::Partial {
                progress,
                reason,
                best_so_far: f(best_so_far),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_admits_everything() {
        let mut meter = BudgetMeter::unlimited();
        for _ in 0..1000 {
            assert!(meter.admit_block(256));
            assert!(meter.admit_fork());
        }
        assert_eq!(meter.tripped(), None);
        assert_eq!(meter.progress().blocks, 1000);
        assert_eq!(meter.progress().vectors, 256_000);
        assert!(meter.finish(7u32).is_complete());
    }

    #[test]
    fn block_budget_trips_exactly_at_the_cap_and_stays_tripped() {
        let mut meter = BudgetMeter::new(&SweepBudget::unlimited().with_max_blocks(3));
        assert!(meter.admit_block(64));
        assert!(meter.admit_block(64));
        assert!(meter.admit_block(64));
        assert!(!meter.admit_block(64));
        assert_eq!(meter.tripped(), Some(BudgetReason::Blocks));
        // Sticky: nothing is admitted after a trip, on any axis.
        assert!(!meter.admit_block(64));
        assert!(!meter.admit_fork());
        assert_eq!(meter.progress().blocks, 3);
        assert_eq!(meter.progress().vectors, 192);
        match meter.finish("partial") {
            Budgeted::Partial {
                reason, progress, ..
            } => {
                assert_eq!(reason, BudgetReason::Blocks);
                assert_eq!(progress.blocks, 3);
            }
            Budgeted::Complete(_) => panic!("tripped meter must finish partial"),
        }
    }

    #[test]
    fn fork_budget_trips_at_the_cap() {
        let mut meter = BudgetMeter::new(&SweepBudget::unlimited().with_max_forks(5));
        for _ in 0..5 {
            assert!(meter.admit_fork());
        }
        assert!(!meter.admit_fork());
        assert_eq!(meter.tripped(), Some(BudgetReason::Forks));
    }

    #[test]
    fn cancel_token_is_shared_across_clones_and_observed_by_the_meter() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        let mut meter = BudgetMeter::new(&SweepBudget::unlimited().with_cancel(observer));
        assert!(meter.admit_block(1));
        token.cancel();
        assert!(!meter.admit_block(1));
        assert_eq!(meter.tripped(), Some(BudgetReason::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_refuses_the_first_block() {
        let budget =
            SweepBudget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let mut meter = BudgetMeter::new(&budget);
        assert!(!meter.admit_block(1));
        assert_eq!(meter.tripped(), Some(BudgetReason::Deadline));
    }

    #[test]
    fn budgeted_accessors_reach_the_value_either_way() {
        let c = Budgeted::Complete(41).map(|v| v + 1);
        assert_eq!(*c.value(), 42);
        let p = Budgeted::Partial {
            progress: SweepProgress::default(),
            reason: BudgetReason::Cancelled,
            best_so_far: 6,
        }
        .map(|v| v * 7);
        assert!(!p.is_complete());
        assert_eq!(p.into_value(), 42);
    }

    #[test]
    fn default_budget_is_unlimited() {
        assert!(SweepBudget::default().is_unlimited());
        assert!(!SweepBudget::default().with_max_blocks(1).is_unlimited());
    }

    #[test]
    fn split_shares_partitions_counted_axes_exactly_and_shares_the_token() {
        let token = CancelToken::new();
        let budget = SweepBudget::unlimited()
            .with_max_blocks(7)
            .with_max_forks(2)
            .with_cancel(token.clone());
        let shares = budget.split_shares(3);
        assert_eq!(shares.len(), 3);
        let blocks: Vec<u64> = shares.iter().map(|s| s.max_blocks.unwrap()).collect();
        let forks: Vec<u64> = shares.iter().map(|s| s.max_forks.unwrap()).collect();
        assert_eq!(blocks, vec![3, 2, 2]);
        assert_eq!(forks, vec![1, 1, 0]);
        assert_eq!(blocks.iter().sum::<u64>(), 7);
        assert_eq!(forks.iter().sum::<u64>(), 2);
        // Every share observes the one shared token.
        token.cancel();
        for share in &shares {
            assert!(share.cancel.as_ref().unwrap().is_cancelled());
        }
        // Unlimited axes stay unlimited in every share.
        let open = SweepBudget::unlimited().split_shares(4);
        assert!(open.iter().all(SweepBudget::is_unlimited));
    }

    #[test]
    fn absorb_sums_progress_and_adopts_the_first_trip() {
        let mut joined = BudgetMeter::unlimited();
        joined.absorb(
            SweepProgress {
                blocks: 2,
                vectors: 128,
                forks: 1,
            },
            None,
        );
        joined.absorb(
            SweepProgress {
                blocks: 1,
                vectors: 64,
                forks: 0,
            },
            Some(BudgetReason::Blocks),
        );
        // A later chunk's different reason does not displace the first.
        joined.absorb(SweepProgress::default(), Some(BudgetReason::Deadline));
        assert_eq!(joined.progress().blocks, 3);
        assert_eq!(joined.progress().vectors, 192);
        assert_eq!(joined.progress().forks, 1);
        assert_eq!(joined.tripped(), Some(BudgetReason::Blocks));
        assert!(!joined.finish(()).is_complete());
    }
}
