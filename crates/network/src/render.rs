//! Rendering comparator networks as Knuth-style ASCII diagrams and Graphviz
//! DOT, mirroring the figures of the paper (vertical bars joining two
//! horizontal lines).

use std::fmt::Write as _;

use crate::network::Network;

/// Renders the network as an ASCII diagram: one row per line, time flowing
/// left to right, each comparator drawn as a column with `o` endpoints and
/// `|` through intermediate lines.
#[must_use]
pub fn ascii_diagram(network: &Network) -> String {
    let n = network.lines();
    let layers = network.layers();
    // Each layer occupies a fixed number of columns: comparators within one
    // layer are drawn side by side to keep the picture readable.
    let mut rows: Vec<String> = vec![String::new(); n];
    for line in rows.iter_mut() {
        line.push_str("--");
    }
    for layer in &layers {
        for c in layer {
            for (i, row) in rows.iter_mut().enumerate() {
                let ch = if i == c.top() || i == c.bottom() {
                    'o'
                } else if i > c.top() && i < c.bottom() {
                    '|'
                } else {
                    '-'
                };
                row.push(ch);
                row.push('-');
            }
        }
        for row in rows.iter_mut() {
            row.push('-');
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "{:>3} {row}", i + 1);
    }
    out
}

/// Renders the network in Graphviz DOT form; lines become horizontal ranks
/// and comparators become edges, so the picture matches the paper's figures
/// when laid out left-to-right.
#[must_use]
pub fn dot(network: &Network) -> String {
    let mut out =
        String::from("digraph comparator_network {\n  rankdir=LR;\n  node [shape=point];\n");
    let n = network.lines();
    let depth = network.layers().len();
    // Nodes: (line, stage).
    for line in 0..n {
        for stage in 0..=depth {
            let _ = writeln!(out, "  l{line}_s{stage} [label=\"\"];");
        }
        for stage in 0..depth {
            let _ = writeln!(
                out,
                "  l{line}_s{stage} -> l{line}_s{next} [arrowhead=none];",
                next = stage + 1
            );
        }
    }
    for (stage, layer) in network.layers().iter().enumerate() {
        for c in layer {
            let _ = writeln!(
                out,
                "  l{}_s{} -> l{}_s{} [constraint=false, arrowhead=none, penwidth=2];",
                c.top(),
                stage + 1,
                c.bottom(),
                stage + 1
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::batcher::odd_even_merge_sort;

    fn fig1() -> Network {
        Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)])
    }

    #[test]
    fn ascii_diagram_has_one_row_per_line() {
        let art = ascii_diagram(&fig1());
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('o'));
        assert!(art.contains('|'));
    }

    #[test]
    fn ascii_diagram_of_empty_network_is_plain_lines() {
        let art = ascii_diagram(&Network::empty(3));
        assert_eq!(art.lines().count(), 3);
        assert!(!art.contains('o'));
    }

    #[test]
    fn ascii_endpoint_count_matches_comparator_count() {
        let net = odd_even_merge_sort(6);
        let art = ascii_diagram(&net);
        let endpoints = art.chars().filter(|&c| c == 'o').count();
        assert_eq!(endpoints, 2 * net.size());
    }

    #[test]
    fn dot_output_mentions_every_line_and_is_well_formed() {
        let net = fig1();
        let d = dot(&net);
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
        for line in 0..4 {
            assert!(d.contains(&format!("l{line}_s0")));
        }
        // One constraint=false edge per comparator.
        assert_eq!(d.matches("constraint=false").count(), net.size());
    }
}
