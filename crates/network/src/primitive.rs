//! Height-restricted networks (§3 of the paper).
//!
//! A *height-k* network only contains comparators `[i, j]` with `j − i ≤ k`;
//! height-1 networks are the *primitive* networks of de Bruijn \[4\], for
//! which the paper recalls a striking fact: a primitive network is a sorter
//! **iff it sorts the single reverse permutation** — a test set of size 1.
//! The test-set side of that result lives in `sortnet-testsets::primitive`;
//! this module provides the structural machinery (height computation,
//! height-restricted enumeration and random generation).

use sortnet_combinat::Permutation;

use crate::comparator::Comparator;
use crate::network::Network;

/// `true` when every comparator of the network has height ≤ `k`.
#[must_use]
pub fn is_height_at_most(network: &Network, k: usize) -> bool {
    network.height() <= k
}

/// All standard comparators of height ≤ `k` on `n` lines, in increasing
/// (top, bottom) order.
#[must_use]
pub fn comparators_of_height_at_most(n: usize, k: usize) -> Vec<Comparator> {
    let mut out = Vec::new();
    for top in 0..n {
        for bottom in top + 1..n.min(top + k + 1) {
            out.push(Comparator::new(top, bottom));
        }
    }
    out
}

/// Enumerates every height-≤`k` network on `n` lines with exactly `size`
/// comparators, invoking `visit` on each.  The number of networks is
/// `|C|^size` where `C` is the comparator alphabet, so this is only
/// feasible for very small parameters (the §3 experiments use n ≤ 6).
pub fn for_each_network(n: usize, k: usize, size: usize, mut visit: impl FnMut(&Network)) {
    let alphabet = comparators_of_height_at_most(n, k);
    let mut stack: Vec<usize> = Vec::with_capacity(size);
    let mut current = Network::empty(n);
    enumerate(&alphabet, size, &mut stack, &mut current, &mut visit);
}

fn enumerate(
    alphabet: &[Comparator],
    remaining: usize,
    stack: &mut Vec<usize>,
    current: &mut Network,
    visit: &mut impl FnMut(&Network),
) {
    if remaining == 0 {
        visit(current);
        return;
    }
    for (idx, c) in alphabet.iter().enumerate() {
        stack.push(idx);
        let mut next = current.clone();
        next.push(*c);
        enumerate(alphabet, remaining - 1, stack, &mut next, visit);
        stack.pop();
    }
}

/// Checks the de Bruijn single-input criterion: does the network sort the
/// reverse permutation `(n, n−1, …, 1)`?
///
/// For *primitive* networks this is equivalent to being a sorter; for
/// general networks it is only a necessary condition.
#[must_use]
pub fn sorts_reverse_permutation(network: &Network) -> bool {
    let n = network.lines();
    network
        .apply_permutation(&Permutation::reverse(n))
        .is_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::bubble::bubble_sort_network;
    use crate::builders::transposition::odd_even_transposition;
    use crate::properties::is_sorter;

    #[test]
    fn comparator_alphabet_sizes() {
        assert_eq!(comparators_of_height_at_most(5, 1).len(), 4);
        assert_eq!(comparators_of_height_at_most(5, 2).len(), 4 + 3);
        assert_eq!(comparators_of_height_at_most(5, 4).len(), 10); // all pairs
        assert_eq!(comparators_of_height_at_most(1, 1).len(), 0);
    }

    #[test]
    fn height_classification() {
        assert!(is_height_at_most(&bubble_sort_network(6), 1));
        let net = Network::from_pairs(5, &[(0, 2)]);
        assert!(!is_height_at_most(&net, 1));
        assert!(is_height_at_most(&net, 2));
    }

    #[test]
    fn enumeration_counts_networks() {
        let mut count = 0usize;
        for_each_network(4, 1, 2, |_| count += 1);
        // 3 height-1 comparators on 4 lines, sequences of length 2.
        assert_eq!(count, 9);
    }

    #[test]
    fn de_bruijn_criterion_exact_for_primitive_networks() {
        // Exhaustively: every height-1 network with up to 4 comparators on 4
        // lines sorts iff it sorts the reverse permutation.
        for size in 0..=4usize {
            for_each_network(4, 1, size, |net| {
                assert_eq!(
                    sorts_reverse_permutation(net),
                    is_sorter(net),
                    "counterexample: {net}"
                );
            });
        }
    }

    #[test]
    fn de_bruijn_criterion_is_only_necessary_for_general_networks() {
        // The Fig. 1 network sorts the reverse permutation but is not a
        // sorter — so the criterion genuinely needs primitivity.
        let fig1 = Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)]);
        assert!(sorts_reverse_permutation(&fig1));
        assert!(!is_sorter(&fig1));
    }

    #[test]
    fn brick_networks_of_decreasing_rounds_lose_the_property_together() {
        for rounds in 0..=6usize {
            let net = odd_even_transposition(6, rounds);
            assert_eq!(sorts_reverse_permutation(&net), is_sorter(&net));
        }
    }
}
