//! # sortnet-network
//!
//! Comparator-network substrate for the reproduction of Chung & Ravikumar,
//! *"Bounds on the size of test sets for sorting and related networks"*.
//!
//! The paper's model (§2): a network over `n` lines is a sequence of
//! comparators `[a, b]` with `a < b`; a comparator exchanges the values on
//! its two lines when they are out of order, routing the smaller value to
//! the smaller line index (a *standard* comparator).  This crate provides:
//!
//! * the model itself — [`Comparator`], [`Network`] — with evaluation over
//!   arbitrary ordered values, 0/1 strings ([`sortnet_combinat::BitString`])
//!   and permutations;
//! * fast exhaustive verification: [`lanes`] is the width-generic batching
//!   substrate (`WideBlock<W>` carries `W × 64` test vectors per pass in
//!   transposed form, `BlockSource` streams vector families directly in
//!   block form), and [`bitparallel`] runs the exhaustive sweeps on it,
//!   fanning blocks out over rayon;
//! * the exhaustive property oracles of the paper — sorter, `(k, n)`-selector,
//!   `(n/2, n/2)`-merger — in [`properties`];
//! * the classical constructions the paper builds on in [`builders`]:
//!   Batcher's merge-exchange and odd–even merge sorters (the `S(i)` boxes in
//!   the Lemma 2.1 figures), odd–even merging networks, pruned selection
//!   networks, primitive (height-1) networks, and the bitonic sorter as the
//!   canonical *non-standard* contrast;
//! * structural tools: layers/depth, the flip symmetry, height restrictions
//!   ([`primitive`]), random networks and mutations ([`random`]), and
//!   ASCII/DOT rendering ([`render`]).
//!
//! ## Quick example
//!
//! ```
//! use sortnet_network::builders::batcher::odd_even_merge_sort;
//! use sortnet_network::properties::is_sorter;
//!
//! let sorter = odd_even_merge_sort(8);
//! assert!(sorter.is_standard());
//! assert!(is_sorter(&sorter));
//! assert_eq!(sorter.apply_vec(&[5, 3, 8, 1, 9, 2, 7, 4]), vec![1, 2, 3, 4, 5, 7, 8, 9]);
//! ```

// `deny` rather than `forbid`: the AVX2 lane backend
// (`lanes::backend`) is the one sanctioned `unsafe` island — `core::arch`
// intrinsics behind runtime feature detection.  Everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitparallel;
pub mod budget;
pub mod builders;
pub mod comparator;
pub mod error;
pub mod lanes;
pub mod network;
pub mod primitive;
pub mod properties;
pub mod random;
pub mod render;

pub use budget::{BudgetMeter, BudgetReason, Budgeted, CancelToken, SweepBudget, SweepProgress};
pub use comparator::Comparator;
pub use error::EngineError;
pub use network::Network;

#[cfg(test)]
mod tests {
    use super::*;
    use builders::batcher::odd_even_merge_sort;

    // Textual interchange round-trips through the compact `[a,b]…` notation
    // (the serde derives compile against the workspace's marker shim; real
    // JSON round-trip tests return when a full serde is vendored).
    #[test]
    fn network_compact_notation_roundtrip() {
        let net = odd_even_merge_sort(6);
        let back = Network::parse_compact(6, &net.to_compact_string()).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn comparator_display_names_one_based_lines() {
        let c = Comparator::new(2, 5);
        assert_eq!(c.to_string(), "[3,6]");
        assert_eq!(Comparator::new(5, 2), c);
    }

    #[test]
    fn doc_example_holds() {
        let sorter = odd_even_merge_sort(8);
        assert!(sorter.is_standard());
        assert!(properties::is_sorter(&sorter));
        assert_eq!(
            sorter.apply_vec(&[5, 3, 8, 1, 9, 2, 7, 4]),
            vec![1, 2, 3, 4, 5, 7, 8, 9]
        );
    }
}
