//! The typed error taxonomy for every engine entry point.
//!
//! Historically the engines guarded their preconditions with `assert!`,
//! which turns a hostile input — a 65-line network handed to the
//! word-packed simulator, a 40-line network handed to an exhaustive
//! sweep — into a process abort.  The service and search directions on
//! the roadmap (millions of submitted networks, long prune-heavy
//! searches) need the opposite: a typed, recoverable verdict.
//!
//! # The taxonomy
//!
//! [`EngineError`] enumerates every way an engine call can be refused
//! *before any work is done*:
//!
//! * [`OversizedNetwork`](EngineError::OversizedNetwork) — the network
//!   exceeds a hard representation limit of the chosen engine (`n <= 64`
//!   for anything word-packed, `n < 24` for scalar exhaustive redundancy);
//! * [`SweepTooLarge`](EngineError::SweepTooLarge) — an exhaustive
//!   `2^n` enumeration was requested for an `n` where it can never
//!   finish (`n >= 32`);
//! * [`ChannelMismatch`](EngineError::ChannelMismatch) — two networks
//!   or a network and a block source disagree on the line count;
//! * [`InputLengthMismatch`](EngineError::InputLengthMismatch) — a test
//!   vector's length disagrees with the network's line count;
//! * [`IndexOutOfRange`](EngineError::IndexOutOfRange) — a fault,
//!   comparator or test index beyond its collection;
//! * [`EmptyUniverse`](EngineError::EmptyUniverse) — a coverage grade
//!   was requested against a universe with no faults;
//! * [`TooLarge`](EngineError::TooLarge) — a universe size computation
//!   overflowed `usize` (degenerate huge inputs);
//! * [`InfeasibleCover`](EngineError::InfeasibleCover) — a test-set
//!   augmentation has no solution in the candidate pool.
//!
//! # Relation to the panicking API
//!
//! Every legacy entry point keeps its signature and now panics with the
//! [`Display`](std::fmt::Display) text of the corresponding
//! `EngineError` — the messages are pinned (they keep the historical
//! `"n <= 64"` / `"exhaustive 2^{n} sweep refused"` substrings), so
//! existing `should_panic` expectations and log scrapes keep working.
//! New code should prefer the `try_*` variants; the panicking wrappers
//! are retained indefinitely for tests and one-shot tools but are the
//! deprecation path — see `docs/ERRORS.md`.

use std::fmt;

/// A typed refusal from an engine entry point.
///
/// Returned by every `try_*` variant in `sortnet-network`,
/// `sortnet-faults` and `sortnet-testsets`; the panicking wrappers
/// panic with this error's [`fmt::Display`] text.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The network has more lines than the engine's representation
    /// admits (`max` is the engine's inclusive limit).
    OversizedNetwork {
        /// Line count of the offending network.
        lines: usize,
        /// Inclusive maximum the engine supports.
        max: usize,
    },
    /// An exhaustive `2^n` enumeration was requested for an `n` at
    /// which it is refused (`n >= 32`).
    SweepTooLarge {
        /// Line count of the offending network.
        lines: usize,
    },
    /// Two parties to an operation disagree on the line count.
    ChannelMismatch {
        /// The line count the callee was built for.
        expected: usize,
        /// The line count the caller supplied.
        actual: usize,
    },
    /// A test vector's length disagrees with the network's line count.
    InputLengthMismatch {
        /// The network's line count.
        expected: usize,
        /// The vector's length.
        actual: usize,
    },
    /// A fault / comparator / test index beyond its collection.
    IndexOutOfRange {
        /// What kind of index (e.g. `"fault"`, `"comparator"`).
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Exclusive limit the index was checked against.
        limit: usize,
    },
    /// A coverage grade was requested against an empty fault universe.
    EmptyUniverse,
    /// A size computation overflowed (degenerate huge input).
    TooLarge {
        /// What overflowed (e.g. `"fault-pair universe"`).
        what: &'static str,
    },
    /// A test-set augmentation is infeasible: no candidate in the pool
    /// detects some of the missed faults.
    InfeasibleCover {
        /// Number of missed faults no candidate detects.
        uncoverable: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OversizedNetwork { lines, max } => write!(
                f,
                "oversized network: this engine needs n <= {max} lines, got n = {lines}"
            ),
            Self::SweepTooLarge { lines } => write!(
                f,
                "exhaustive 2^{lines} sweep refused; use test-set verification"
            ),
            Self::ChannelMismatch { expected, actual } => {
                write!(f, "line count mismatch: expected {expected}, got {actual}")
            }
            Self::InputLengthMismatch { expected, actual } => write!(
                f,
                "input length mismatch: expected {expected} bits, got {actual}"
            ),
            Self::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            Self::EmptyUniverse => write!(f, "the fault universe is empty for this network"),
            Self::TooLarge { what } => {
                write!(f, "{what} is too large: the size computation overflows")
            }
            Self::InfeasibleCover { uncoverable } => write!(
                f,
                "no candidate in the pool detects {uncoverable} of the missed faults"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Guard: the network fits the word-packed engines (`n <= 64`).
///
/// The canonical spelling of the historical
/// `"word-packed fault simulation needs n <= 64 lines"` assert — every
/// engine that packs one line per bit of a `u64` funnels through here,
/// so the error text is pinned in exactly one place.
pub fn ensure_word_packable(lines: usize) -> Result<(), EngineError> {
    if lines <= 64 {
        Ok(())
    } else {
        Err(EngineError::OversizedNetwork { lines, max: 64 })
    }
}

/// The default inclusive line-count cap for the multi-word (channel-lane)
/// engines when `SORTNET_MAX_LINES` is unset.
pub const DEFAULT_MAX_CHANNEL_LINES: usize = 4096;

/// The inclusive line-count cap for the multi-word (channel-lane) engines.
///
/// The multi-word representation has no hard 64-line wall — a vector's
/// payload is simply `ceil(n/64)` channel words — so the cap exists only
/// to keep hostile inputs from allocating absurd lane tables.  It defaults
/// to [`DEFAULT_MAX_CHANNEL_LINES`] and can be raised (or lowered) with
/// the `SORTNET_MAX_LINES` environment variable, read once per process.
pub fn max_channel_lines() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SORTNET_MAX_LINES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(DEFAULT_MAX_CHANNEL_LINES)
    })
}

/// Guard: the network fits the multi-word channel-lane engines
/// (`n <= max_channel_lines()`), and — when the caller already packed its
/// vectors — the supplied channel-word count matches `ceil(n/64)`.
///
/// This is the `ChannelWords ≥ 1` generalisation of
/// [`ensure_word_packable`]: entry points generic over the vector packing
/// funnel through here, while the legacy `BitString`-typed entry points
/// keep the historical 64-line guard (and its pinned `"n <= 64"` text).
pub fn ensure_channel_packable(lines: usize, words: usize) -> Result<(), EngineError> {
    let cap = max_channel_lines();
    if lines > cap {
        return Err(EngineError::OversizedNetwork { lines, max: cap });
    }
    let expected = if lines == 0 { 1 } else { lines.div_ceil(64) };
    if words != expected {
        return Err(EngineError::InputLengthMismatch {
            expected: expected * 64,
            actual: words * 64,
        });
    }
    Ok(())
}

/// Guard: an exhaustive `2^n` sweep over the network is admissible
/// (`n < 32`).
pub fn ensure_sweepable(lines: usize) -> Result<(), EngineError> {
    if lines < 32 {
        Ok(())
    } else {
        Err(EngineError::SweepTooLarge { lines })
    }
}

/// Guard: two parties agree on the line count.
pub fn ensure_same_lines(expected: usize, actual: usize) -> Result<(), EngineError> {
    if expected == actual {
        Ok(())
    } else {
        Err(EngineError::ChannelMismatch { expected, actual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_texts_pin_the_historical_substrings() {
        // The panicking wrappers panic with these Display texts, so the
        // substrings pinned by long-standing should_panic expectations
        // must survive any rewording.
        let oversized = EngineError::OversizedNetwork { lines: 65, max: 64 };
        assert!(oversized.to_string().contains("n <= 64"));
        let sweep = EngineError::SweepTooLarge { lines: 40 };
        assert_eq!(
            sweep.to_string(),
            "exhaustive 2^40 sweep refused; use test-set verification"
        );
        let mismatch = EngineError::ChannelMismatch {
            expected: 8,
            actual: 9,
        };
        assert!(mismatch.to_string().contains("line count mismatch"));
        let input = EngineError::InputLengthMismatch {
            expected: 8,
            actual: 7,
        };
        assert!(input.to_string().contains("input length mismatch"));
        let index = EngineError::IndexOutOfRange {
            what: "fault",
            index: 9,
            limit: 9,
        };
        assert!(index.to_string().contains("fault index 9 out of range"));
    }

    #[test]
    fn guards_accept_the_boundary_and_reject_past_it() {
        assert!(ensure_word_packable(64).is_ok());
        assert_eq!(
            ensure_word_packable(65),
            Err(EngineError::OversizedNetwork { lines: 65, max: 64 })
        );
        assert!(ensure_sweepable(31).is_ok());
        assert_eq!(
            ensure_sweepable(32),
            Err(EngineError::SweepTooLarge { lines: 32 })
        );
        assert!(ensure_same_lines(6, 6).is_ok());
        assert!(ensure_same_lines(6, 7).is_err());
    }

    #[test]
    fn channel_guard_admits_multi_word_networks_up_to_the_cap() {
        // 65..=cap lines are exactly what the old word-packed guard refused.
        assert!(ensure_channel_packable(64, 1).is_ok());
        assert!(ensure_channel_packable(65, 2).is_ok());
        assert!(ensure_channel_packable(128, 2).is_ok());
        assert!(ensure_channel_packable(0, 1).is_ok());
        let cap = max_channel_lines();
        assert!(ensure_channel_packable(cap, cap.div_ceil(64)).is_ok());
        assert_eq!(
            ensure_channel_packable(cap + 1, (cap + 1).div_ceil(64)),
            Err(EngineError::OversizedNetwork {
                lines: cap + 1,
                max: cap
            })
        );
    }

    #[test]
    fn channel_guard_rejects_word_count_mismatches() {
        assert_eq!(
            ensure_channel_packable(65, 1),
            Err(EngineError::InputLengthMismatch {
                expected: 128,
                actual: 64
            })
        );
        assert!(ensure_channel_packable(200, 3).is_err());
    }
}
