//! Comparators — the primitive gates of a comparator network.
//!
//! A comparator connects two lines; when the values on the lines are out of
//! order it exchanges them.  The paper (and Knuth §5.3.4) calls a comparator
//! **standard** when the smaller value is always routed to the line with the
//! smaller index (drawn higher in the diagrams).  The paper's results are
//! stated for standard networks; non-standard comparators (as used by
//! Batcher's bitonic sorter in its textbook form) are supported by the
//! substrate so that the library can also model such networks, but every
//! construction in `sortnet-testsets` produces standard networks only.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single comparator.
///
/// `min_line` receives the minimum of the two incoming values and
/// `max_line` the maximum.  The comparator is *standard* iff
/// `min_line < max_line`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Comparator {
    /// Line that receives the smaller value.
    min_line: u16,
    /// Line that receives the larger value.
    max_line: u16,
}

impl Comparator {
    /// Creates a **standard** comparator between lines `a` and `b`
    /// (0-based); the smaller value goes to the smaller line index.
    ///
    /// # Panics
    /// Panics if `a == b`.
    #[must_use]
    pub fn new(a: usize, b: usize) -> Self {
        assert!(a != b, "a comparator must connect two distinct lines");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        Self {
            min_line: lo as u16,
            max_line: hi as u16,
        }
    }

    /// Creates a comparator with an explicit direction: the minimum is
    /// routed to `min_line`, the maximum to `max_line`.  If
    /// `min_line > max_line` the comparator is non-standard.
    ///
    /// # Panics
    /// Panics if the two lines coincide.
    #[must_use]
    pub fn directed(min_line: usize, max_line: usize) -> Self {
        assert!(
            min_line != max_line,
            "a comparator must connect two distinct lines"
        );
        Self {
            min_line: min_line as u16,
            max_line: max_line as u16,
        }
    }

    /// Line receiving the minimum.
    #[must_use]
    pub fn min_line(&self) -> usize {
        self.min_line as usize
    }

    /// Line receiving the maximum.
    #[must_use]
    pub fn max_line(&self) -> usize {
        self.max_line as usize
    }

    /// The smaller of the two line indices (the "top" line in diagrams).
    #[must_use]
    pub fn top(&self) -> usize {
        self.min_line().min(self.max_line())
    }

    /// The larger of the two line indices (the "bottom" line in diagrams).
    #[must_use]
    pub fn bottom(&self) -> usize {
        self.min_line().max(self.max_line())
    }

    /// `true` when the comparator is standard (minimum routed upward).
    #[must_use]
    pub fn is_standard(&self) -> bool {
        self.min_line < self.max_line
    }

    /// The *height* of the comparator: the distance `|i − j|` between its
    /// lines.  Height-1 comparators make up the primitive networks of §3.
    #[must_use]
    pub fn height(&self) -> usize {
        self.bottom() - self.top()
    }

    /// `true` if the comparator touches `line`.
    #[must_use]
    pub fn touches(&self, line: usize) -> bool {
        self.min_line() == line || self.max_line() == line
    }

    /// `true` if the two comparators share a line (and therefore cannot be
    /// placed in the same parallel layer).
    #[must_use]
    pub fn conflicts_with(&self, other: &Comparator) -> bool {
        self.touches(other.min_line()) || self.touches(other.max_line())
    }

    /// Applies the comparator to a mutable slice of ordered values.
    #[inline]
    pub fn apply_slice<T: Ord>(&self, values: &mut [T]) {
        let (i, j) = (self.min_line(), self.max_line());
        if values[i] > values[j] {
            values.swap(i, j);
        }
    }

    /// Renames the lines of the comparator through `map`, preserving the
    /// direction (min stays min).
    #[must_use]
    pub fn relabel(&self, map: &[usize]) -> Self {
        Self::directed(map[self.min_line()], map[self.max_line()])
    }

    /// The comparator's mirror under the flip symmetry of an `n`-line
    /// network (reverse line order, complement values): the minimum is now
    /// routed to line `n−1−max_line` and the maximum to `n−1−min_line`, so a
    /// standard comparator stays standard and
    /// `flip(H)(flip(σ)) = flip(H(σ))` holds for 0/1 inputs.
    #[must_use]
    pub fn flip(&self, n: usize) -> Self {
        Self::directed(n - 1 - self.max_line(), n - 1 - self.min_line())
    }
}

impl fmt::Debug for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper writes comparators as [a, b] with 1-based lines.
        if self.is_standard() {
            write!(f, "[{},{}]", self.min_line + 1, self.max_line + 1)
        } else {
            write!(f, "[{}↘{}]", self.max_line + 1, self.min_line + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_constructor_normalises_order() {
        let c = Comparator::new(3, 1);
        assert_eq!(c.min_line(), 1);
        assert_eq!(c.max_line(), 3);
        assert!(c.is_standard());
        assert_eq!(c.height(), 2);
    }

    #[test]
    fn directed_constructor_allows_nonstandard() {
        let c = Comparator::directed(4, 2);
        assert!(!c.is_standard());
        assert_eq!(c.top(), 2);
        assert_eq!(c.bottom(), 4);
    }

    #[test]
    #[should_panic(expected = "distinct lines")]
    fn rejects_self_loop() {
        let _ = Comparator::new(2, 2);
    }

    #[test]
    fn apply_orders_values() {
        let c = Comparator::new(0, 2);
        let mut v = vec![5, 1, 3];
        c.apply_slice(&mut v);
        assert_eq!(v, vec![3, 1, 5]);
        // Already ordered: no change.
        c.apply_slice(&mut v);
        assert_eq!(v, vec![3, 1, 5]);
    }

    #[test]
    fn nonstandard_apply_routes_max_up() {
        let c = Comparator::directed(2, 0);
        let mut v = vec![1, 9, 7];
        c.apply_slice(&mut v);
        assert_eq!(v, vec![7, 9, 1]);
    }

    #[test]
    fn conflict_detection() {
        let a = Comparator::new(0, 1);
        let b = Comparator::new(1, 2);
        let c = Comparator::new(2, 3);
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
        assert!(a.conflicts_with(&a));
    }

    #[test]
    fn flip_preserves_standardness_and_is_involutive() {
        let c = Comparator::new(1, 4);
        let f = c.flip(6);
        assert_eq!(f, Comparator::new(1, 4).flip(6));
        assert_eq!(f.min_line(), 1);
        assert_eq!(f.max_line(), 4);
        assert!(f.is_standard());
        assert_eq!(f.flip(6), c);

        let d = Comparator::new(0, 2);
        let fd = d.flip(6);
        assert_eq!(fd, Comparator::new(3, 5));
    }

    #[test]
    fn display_uses_one_based_paper_notation() {
        assert_eq!(Comparator::new(0, 2).to_string(), "[1,3]");
        assert_eq!(Comparator::new(1, 3).to_string(), "[2,4]");
    }

    #[test]
    fn relabel_applies_line_map() {
        let c = Comparator::new(0, 1);
        let r = c.relabel(&[5, 2, 7]);
        assert_eq!(r.min_line(), 5);
        assert_eq!(r.max_line(), 2);
        assert!(!r.is_standard());
    }
}
