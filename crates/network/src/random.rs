//! Random comparator networks and random mutations of existing networks.
//!
//! Used by the experiments in two ways:
//!
//! * random networks provide "typical non-sorters" for measuring how quickly
//!   different test strategies expose them (experiment E9);
//! * random *mutations* of a correct sorter model hardware defects, the
//!   motivation mentioned in §1 of the paper (experiment E10 proper uses the
//!   structured fault models in `sortnet-faults`).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::comparator::Comparator;
use crate::network::Network;

/// A deterministic random-network generator (seeded, reproducible).
#[derive(Debug)]
pub struct NetworkSampler {
    rng: StdRng,
}

impl NetworkSampler {
    /// Creates a sampler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a uniformly random standard comparator on `n` lines.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn comparator(&mut self, n: usize) -> Comparator {
        assert!(n >= 2, "need at least two lines");
        let a = self.rng.random_range(0..n);
        let mut b = self.rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        Comparator::new(a, b)
    }

    /// Samples a random standard network with `size` comparators on `n`
    /// lines.
    pub fn network(&mut self, n: usize, size: usize) -> Network {
        let mut net = Network::empty(n);
        for _ in 0..size {
            let c = self.comparator(n);
            net.push(c);
        }
        net
    }

    /// Returns `base` with one uniformly chosen comparator deleted
    /// (a "missing comparator" defect).  Returns `None` if the network is
    /// empty.
    pub fn drop_random_comparator(&mut self, base: &Network) -> Option<Network> {
        if base.is_empty() {
            return None;
        }
        let idx = self.rng.random_range(0..base.size());
        Some(base.without_comparator(idx))
    }

    /// Returns `base` with one uniformly chosen comparator rewired to a
    /// fresh random pair of lines (a "misrouted comparator" defect).
    /// Returns `None` if the network is empty.
    pub fn rewire_random_comparator(&mut self, base: &Network) -> Option<Network> {
        if base.is_empty() {
            return None;
        }
        let idx = self.rng.random_range(0..base.size());
        let replacement = self.comparator(base.lines());
        let mut comparators = base.comparators().to_vec();
        comparators[idx] = replacement;
        Some(Network::from_comparators(base.lines(), comparators))
    }

    /// Samples a random 0/1 input of length `n` (for random-testing
    /// baselines).
    pub fn random_input(&mut self, n: usize) -> sortnet_combinat::BitString {
        let word: u64 = self.rng.random();
        sortnet_combinat::BitString::from_word(word, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::batcher::odd_even_merge_sort;
    use crate::properties::is_sorter;

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let mut a = NetworkSampler::new(42);
        let mut b = NetworkSampler::new(42);
        assert_eq!(a.network(8, 20), b.network(8, 20));
        let mut c = NetworkSampler::new(43);
        assert_ne!(a.network(8, 20), c.network(8, 20));
    }

    #[test]
    fn sampled_comparators_are_standard_and_in_range() {
        let mut s = NetworkSampler::new(7);
        for _ in 0..1000 {
            let c = s.comparator(9);
            assert!(c.is_standard());
            assert!(c.bottom() < 9);
        }
    }

    #[test]
    fn random_small_networks_are_rarely_sorters() {
        // A random 10-comparator network on 6 lines is essentially never a
        // sorter (needs 12); this guards the experiment's premise.
        let mut s = NetworkSampler::new(1);
        let sorters = (0..50).filter(|_| is_sorter(&s.network(6, 10))).count();
        assert_eq!(sorters, 0);
    }

    #[test]
    fn dropping_a_comparator_reduces_size_by_one() {
        let base = odd_even_merge_sort(8);
        let mut s = NetworkSampler::new(3);
        let mutated = s.drop_random_comparator(&base).unwrap();
        assert_eq!(mutated.size(), base.size() - 1);
        assert!(s.drop_random_comparator(&Network::empty(4)).is_none());
    }

    #[test]
    fn rewiring_keeps_size_constant() {
        let base = odd_even_merge_sort(8);
        let mut s = NetworkSampler::new(3);
        let mutated = s.rewire_random_comparator(&base).unwrap();
        assert_eq!(mutated.size(), base.size());
    }

    #[test]
    fn random_inputs_have_correct_length() {
        let mut s = NetworkSampler::new(9);
        for _ in 0..100 {
            assert_eq!(s.random_input(13).len(), 13);
        }
    }
}
