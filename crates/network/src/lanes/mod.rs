//! Width-generic bit-sliced blocks and streaming test-vector sources.
//!
//! This module is the batching substrate every sweep in the workspace runs
//! on.  Two ideas compose:
//!
//! # `WideBlock<W>`: W×64 vectors per pass
//!
//! A [`WideBlock<W>`] holds up to `W × 64` binary input vectors in
//! transposed (bit-sliced) form: lane `i` is a `[u64; W]`, and bit `j` of
//! word `w` of lane `i` holds the value of network line `i` in vector
//! `w·64 + j` of the block.  A standard comparator on lines `(i, j)` is then
//! `2W` bitwise operations —
//!
//! ```text
//! new_i[w] = lane_i[w] & lane_j[w]      (the minima)
//! new_j[w] = lane_i[w] | lane_j[w]      (the maxima)
//! ```
//!
//! — the classical SIMD-within-a-register trick, widened so that one pass
//! over the comparators (and one *shared-prefix fork* in the fault engine)
//! is amortised over `W × 64` vectors instead of 64.  `W = 1` recovers the
//! original one-word [`BitBlock`](crate::bitparallel::BitBlock) exactly;
//! [`DEFAULT_WIDTH`] is the width the convenience wrappers use.
//!
//! # `BlockSource`: test-vector families generated in block form
//!
//! The paper's theorems are statements about *families* of test vectors
//! (all `2^n` inputs, the minimal 0/1 sets of Theorems 2.2/2.4/2.5, …).  A
//! [`BlockSource`] streams such a family directly into transposed blocks,
//! so sweeps never materialise a `Vec<BitString>`:
//!
//! * [`RangeSource`] — the exhaustive `2^n` family, filled by *counting
//!   patterns* (lane `i < 6` of a 64-aligned word is a fixed alternating
//!   constant; higher lanes are broadcasts of the block-start bit), so block
//!   generation is O(`n·W`) words with no per-vector work;
//! * [`IterSource`] — a block-filling adapter over any iterator of packed
//!   vectors, which turns the `sortnet-combinat` generators (unsorted
//!   strings, low-weight subsets, half-sorted merge inputs) into sources
//!   without intermediate storage.
//!
//! [`sweep_find`] is the streaming driver: it pulls blocks from a source,
//! asks a caller-supplied closure for a violation mask per block, and
//! extracts the first violating *input* vector as a witness.
//!
//! # `ChannelWords`: networks past 64 lines
//!
//! The lane table is indexed by *line*, so nothing in the transposed
//! layout caps `n` at 64: a network with `n` lines simply has `n` lane
//! rows, and a single test vector's payload is `ceil(n/64)` **channel
//! words** (`lanes[line][channel_word][W]` when viewed vector-side).  The
//! historical 64-line wall lived entirely at the *boundaries* — filling
//! blocks from, and extracting witnesses into, the one-word
//! [`BitString`].  Those boundaries are now generic over
//! [`ChannelPack`]: instantiated at [`BitString`] they monomorphise to
//! the exact single-word code the `n ≤ 64` benches have always measured,
//! and instantiated at [`sortnet_combinat::ChannelVec`] they thread any
//! `n` up to [`crate::error::max_channel_lines`] through the identical
//! kernels.  See `docs/LANES.md` for the full layout story.
//!
//! # Backend selection: how the lane words are executed
//!
//! The transposed layout fixes *what* is computed (which words, in which
//! order); a pluggable [`Backend`] chooses *how* the word kernels run.
//! Three [`LaneOps`] implementations exist — plain scalar loops, a
//! portable chunked shape the autovectorizer handles on any target, and an
//! explicit AVX2 `core::arch` path on `x86_64` — all bit-identical, with
//! the best one detected at runtime ([`Backend::active`], overridable with
//! `SORTNET_FORCE_SCALAR=1`).  Every [`WideBlock`] operation has a `*_with`
//! form taking an explicit backend (the plain form uses the active one), so
//! whole sweeps — exhaustive, minimal-test-set, detection-matrix,
//! redundancy — can be pinned to a backend for differential testing and
//! benchmarking.  See [`backend`] for the kernel contract.
//!
//! # The fork invariant: shared prefixes must advance in site order
//!
//! [`WideBlock::copy_from`] + [`WideBlock::run_range`] implement *forking*:
//! a sweep evaluates a shared state incrementally and snapshots it where
//! derived evaluations (faulty networks, in `sortnet-faults`) branch off.
//! Correctness of any such scheme rests on one invariant: **a shared state
//! that has been advanced through comparators `0..p` may only serve forks
//! whose branch site is `≥ p`**, so fork sites must be visited in
//! nondecreasing order (the fault engine sorts its fault universes by fork
//! site, and — for two-lesion faults — nests a second fork level whose
//! sites are visited in order *within* each first-lesion group).  The same
//! rule is why counting-pattern blocks can be regenerated instead of
//! rewound: a block is never run backwards.

use sortnet_combinat::{BitString, ChannelPack};

use crate::budget::{BudgetMeter, Budgeted, SweepBudget};
use crate::error::{self, EngineError};
use crate::network::Network;

pub mod backend;
mod family;

pub use backend::{Backend, LaneOps, PortableOps, ScalarOps};
pub use family::{FamilySource, PackedFamily};

/// The lane width (in 64-bit words) the non-generic convenience entry
/// points use: [`DEFAULT_WIDTH`]`×64 = 256` vectors per block, which keeps
/// the working set of one block (`n` lanes) inside L1 for every `n ≤ 64`
/// while amortising per-block work 4× better than single-word lanes.
pub const DEFAULT_WIDTH: usize = 4;

/// Runtime-selectable lane width, for APIs (engine enums, benches) that
/// choose `W` dynamically and dispatch to the const-generic code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// One `u64` word per lane: 64 vectors per block.
    W1,
    /// Two words per lane: 128 vectors per block.
    W2,
    /// Four words per lane: 256 vectors per block ([`DEFAULT_WIDTH`]).
    W4,
    /// Eight words per lane: 512 vectors per block.
    W8,
    /// Sixteen words per lane: 1024 vectors per block.
    W16,
}

impl LaneWidth {
    /// Every selectable width, narrowest first — the iteration set for
    /// width sweeps in tests and benches.
    pub const ALL: [Self; 5] = [Self::W1, Self::W2, Self::W4, Self::W8, Self::W16];

    /// Number of `u64` words per lane.
    #[must_use]
    pub const fn words(self) -> usize {
        match self {
            Self::W1 => 1,
            Self::W2 => 2,
            Self::W4 => 4,
            Self::W8 => 8,
            Self::W16 => 16,
        }
    }

    /// Number of vectors one block holds (`words × 64`).
    #[must_use]
    pub const fn vectors_per_block(self) -> u32 {
        (self.words() * 64) as u32
    }
}

/// The first six counting patterns: bit `j` of `COUNT_PATTERNS[i]` is bit
/// `i` of `j`, so a 64-aligned word of the exhaustive sweep has lane
/// `i < 6` equal to the constant and every higher lane equal to a broadcast
/// of the corresponding bit of the word's start value.
const COUNT_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A block of up to `W × 64` binary input vectors in transposed
/// (bit-sliced) form.
///
/// See the [module docs](self) for the lane encoding.  `WideBlock<1>` is
/// re-exported as [`BitBlock`](crate::bitparallel::BitBlock) and carries a
/// single-word convenience API ([`lane`](WideBlock::<1>::lane),
/// [`unsorted_mask`](WideBlock::<1>::unsorted_mask),
/// [`live_mask`](WideBlock::<1>::live_mask)); generic code uses the
/// `*_words`/`*_masks` plural forms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WideBlock<const W: usize> {
    /// `lanes[i][w]` holds bit `j` = value of line `i` in vector `w·64+j`.
    lanes: Vec<[u64; W]>,
    /// Number of vectors actually present (`0..=W·64`; 0 only for scratch
    /// blocks awaiting [`WideBlock::copy_from`] or
    /// [`BlockSource::next_block`]).
    count: u32,
}

impl<const W: usize> WideBlock<W> {
    /// Maximum number of vectors a block of this width holds (`W × 64`).
    #[must_use]
    pub const fn capacity() -> u32 {
        (W * 64) as u32
    }

    /// An empty scratch block over `n` lines (count 0), ready to be filled
    /// by [`WideBlock::copy_from`] or [`BlockSource::next_block`].
    #[must_use]
    pub fn zeroed(n: usize) -> Self {
        Self {
            lanes: vec![[0u64; W]; n],
            count: 0,
        }
    }

    /// Builds a block from up to `W × 64` input vectors (all of length `n`).
    ///
    /// Generic over the vector packing: [`BitString`] for the historical
    /// `n ≤ 64` path, [`sortnet_combinat::ChannelVec`] (or any other
    /// [`ChannelPack`]) for multi-word channels — the lane table is indexed
    /// by line, so a block scales to any `n` without a representation
    /// change.
    ///
    /// # Panics
    /// Panics if `inputs` is empty, longer than `W × 64`, or the lengths are
    /// inconsistent with `n`.
    #[must_use]
    pub fn from_strings<P: ChannelPack>(n: usize, inputs: &[P]) -> Self {
        assert!(
            !inputs.is_empty() && inputs.len() <= W * 64,
            "block must hold 1..={} vectors",
            W * 64
        );
        let mut block = Self::zeroed(n);
        block.fill_from_strings(inputs);
        block
    }

    /// Overwrites the block with `inputs` (count becomes `inputs.len()`).
    fn fill_from_strings<P: ChannelPack>(&mut self, inputs: &[P]) {
        let n = self.lanes.len();
        for lane in &mut self.lanes {
            *lane = [0u64; W];
        }
        for (j, s) in inputs.iter().enumerate() {
            assert_eq!(s.len(), n, "input length mismatch");
            let (w, bit) = (j / 64, j % 64);
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if s.bit(i) {
                    lane[w] |= 1 << bit;
                }
            }
        }
        self.count = inputs.len() as u32;
    }

    /// Builds the block containing the `count` consecutive binary vectors
    /// starting at word value `start` (vector `j` of the block is the string
    /// whose packed word is `start + j`).
    ///
    /// When `start` is 64-aligned (as every block of an exhaustive sweep
    /// is), the fill is counting patterns — O(`n·W`) words, no per-vector
    /// loop.
    ///
    /// # Panics
    /// Panics if `count` is 0 or exceeds `W × 64`.
    #[must_use]
    pub fn from_range(n: usize, start: u64, count: u32) -> Self {
        assert!(
            (1..=Self::capacity()).contains(&count),
            "block must hold 1..={} vectors",
            W * 64
        );
        let mut block = Self::zeroed(n);
        block.fill_from_range(start, count);
        block
    }

    /// Overwrites the block with the `count` consecutive vectors starting
    /// at `start`.
    fn fill_from_range(&mut self, start: u64, count: u32) {
        for w in 0..W {
            let base = start + (w as u64) * 64;
            let in_word = count.saturating_sub((w * 64) as u32).min(64);
            let live = if in_word == 64 {
                u64::MAX
            } else {
                (1u64 << in_word) - 1
            };
            if in_word == 0 {
                for lane in &mut self.lanes {
                    lane[w] = 0;
                }
            } else if base.is_multiple_of(64) {
                // Counting patterns: adding j < 64 to a 64-aligned base
                // never carries past bit 5, so lane i < 6 is a constant and
                // lane i ≥ 6 is a broadcast of bit i of `base`.  Lanes
                // i ≥ 64 exist on multi-word-channel networks; the start
                // value is a single word, so those lines are always 0 (a
                // raw `base >> i` would be an overflowing shift).
                for (i, lane) in self.lanes.iter_mut().enumerate() {
                    let bits = if i < 6 {
                        COUNT_PATTERNS[i]
                    } else if i < 64 && (base >> i) & 1 == 1 {
                        u64::MAX
                    } else {
                        0
                    };
                    lane[w] = bits & live;
                }
            } else {
                for (i, lane) in self.lanes.iter_mut().enumerate() {
                    let mut bits = 0u64;
                    if i < 64 {
                        for j in 0..u64::from(in_word) {
                            if ((base + j) >> i) & 1 == 1 {
                                bits |= 1 << j;
                            }
                        }
                    }
                    lane[w] = bits;
                }
            }
        }
        self.count = count;
    }

    /// Number of vectors in the block.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Number of network lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lanes.len()
    }

    /// Per-word bitmasks with one set bit per vector actually present.
    #[must_use]
    pub fn live_masks(&self) -> [u64; W] {
        let mut m = [0u64; W];
        for (w, word) in m.iter_mut().enumerate() {
            let cnt = self.count.saturating_sub((w * 64) as u32).min(64);
            *word = if cnt == 64 {
                u64::MAX
            } else {
                (1u64 << cnt) - 1
            };
        }
        m
    }

    /// Overwrites this block's lanes and count with `other`'s, reusing the
    /// existing allocation — the cheap "fork from a shared prefix"
    /// primitive used by the fault-simulation engine.
    ///
    /// # Panics
    /// Panics if the two blocks have different line counts.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.lanes.len(), other.lanes.len(), "line count mismatch");
        self.lanes.copy_from_slice(&other.lanes);
        self.count = other.count;
    }

    /// Applies one comparator across all lanes: the AND of the two lanes
    /// (the minima) is routed to `min_to`, the OR (the maxima) to `max_to`.
    /// The lines need not be ordered, so this also evaluates non-standard
    /// (inverted) comparators.  Runs on the [active](Backend::active)
    /// backend; see [`WideBlock::apply_comparator_with`].
    ///
    /// # Panics
    /// Panics if either line is out of range or the lines coincide.
    #[inline]
    pub fn apply_comparator(&mut self, min_to: usize, max_to: usize) {
        self.apply_comparator_with(Backend::active(), min_to, max_to);
    }

    /// [`WideBlock::apply_comparator`] on an explicit [`Backend`].
    ///
    /// # Panics
    /// Panics if either line is out of range or the lines coincide.
    #[inline]
    pub fn apply_comparator_with(&mut self, backend: Backend, min_to: usize, max_to: usize) {
        assert_ne!(min_to, max_to, "a comparator needs two distinct lines");
        let mut a = self.lanes[min_to];
        let mut b = self.lanes[max_to];
        backend.compare_exchange(&mut a, &mut b);
        self.lanes[min_to] = a;
        self.lanes[max_to] = b;
    }

    /// Exchanges two lanes unconditionally (the lane-level form of a
    /// stuck-swapping comparator).
    #[inline]
    pub fn swap_lanes(&mut self, i: usize, j: usize) {
        self.lanes.swap(i, j);
    }

    /// Forces line `line` to the constant `value` across every vector of
    /// the block — the lane-level form of a stuck-at-0/1 wire segment.
    /// Combined with [`WideBlock::copy_from`], this is the prefix-fork
    /// injection primitive of the stuck-line fault universe: fork the
    /// fault-free prefix state, overwrite one lane, run the suffix.
    ///
    /// Bits beyond [`WideBlock::count`] are forced too; every mask consumer
    /// (`unsorted_masks`, `selector_violation_masks`) intersects with
    /// [`WideBlock::live_masks`], so dead vectors stay invisible.
    ///
    /// # Panics
    /// Panics if `line` is out of range.
    #[inline]
    pub fn fill_lane(&mut self, line: usize, value: bool) {
        self.lanes[line] = if value { [u64::MAX; W] } else { [0u64; W] };
    }

    /// Rewrites the pair of lanes `(i, j)` through an arbitrary 64-lane
    /// bitwise transfer function, applied word by word — the escape hatch
    /// for behavioural fault models that are not expressible as a plain
    /// comparator.
    ///
    /// # Panics
    /// Panics if `i == j` or either line is out of range.
    #[inline]
    pub fn map_pair(&mut self, i: usize, j: usize, mut f: impl FnMut(u64, u64) -> (u64, u64)) {
        assert_ne!(i, j, "map_pair needs two distinct lines");
        for w in 0..W {
            let (a, b) = f(self.lanes[i][w], self.lanes[j][w]);
            self.lanes[i][w] = a;
            self.lanes[j][w] = b;
        }
    }

    /// Runs `network` over the block in place, on the
    /// [active](Backend::active) backend.
    pub fn run(&mut self, network: &Network) {
        self.run_range(network, 0, network.size());
    }

    /// [`WideBlock::run`] on an explicit [`Backend`].
    pub fn run_with(&mut self, backend: Backend, network: &Network) {
        self.run_range_with(backend, network, 0, network.size());
    }

    /// Runs only comparators `start..end` of `network` over the block — the
    /// suffix-evaluation primitive behind shared-prefix fault forking.
    /// Runs on the [active](Backend::active) backend.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` exceeds the network size.
    pub fn run_range(&mut self, network: &Network, start: usize, end: usize) {
        self.run_range_with(Backend::active(), network, start, end);
    }

    /// [`WideBlock::run_range`] on an explicit [`Backend`]: dispatches once
    /// and evaluates the whole comparator range inside the selected
    /// implementation.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` exceeds the network size.
    pub fn run_range_with(
        &mut self,
        backend: Backend,
        network: &Network,
        start: usize,
        end: usize,
    ) {
        assert!(
            start <= end && end <= network.size(),
            "bad comparator range {start}..{end}"
        );
        backend.run_comparators(&mut self.lanes, &network.comparators()[start..end]);
    }

    /// Per-word bitmasks over the block's vectors: bit `j` of word `w` is
    /// set when the output for vector `w·64 + j` is **not** sorted.
    /// Computed on the [active](Backend::active) backend.
    #[must_use]
    pub fn unsorted_masks(&self) -> [u64; W] {
        self.unsorted_masks_with(Backend::active())
    }

    /// [`WideBlock::unsorted_masks`] on an explicit [`Backend`].
    #[must_use]
    pub fn unsorted_masks_with(&self, backend: Backend) -> [u64; W] {
        let mut unsorted = self.unsorted_masks_raw(backend);
        let live = self.live_masks();
        for w in 0..W {
            unsorted[w] &= live[w];
        }
        unsorted
    }

    /// The sortedness scan *without* the live-mask intersection: bits past
    /// [`WideBlock::count`] are unspecified, so callers must intersect
    /// with [`WideBlock::live_masks`] before consuming the result.  Split
    /// out for sweeps that evaluate many faults over one block and hoist
    /// the (count-only-dependent) live mask once.
    #[must_use]
    pub fn unsorted_masks_raw(&self, backend: Backend) -> [u64; W] {
        // A 0/1 vector is sorted iff there is no i < j with lane_i = 1 and
        // lane_j = 0; each word's 64 vectors are checked independently.
        let mut unsorted = [0u64; W];
        backend.sorted_scan(&self.lanes, &mut unsorted);
        unsorted
    }

    /// Fused tail of a fault fork: runs comparators `start..end` and
    /// returns the **raw** sortedness masks of the result (see
    /// [`WideBlock::unsorted_masks_raw`] for the live-mask caveat) in one
    /// backend dispatch.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` exceeds the network size.
    #[must_use]
    pub fn run_range_scan_with(
        &mut self,
        backend: Backend,
        network: &Network,
        start: usize,
        end: usize,
    ) -> [u64; W] {
        assert!(
            start <= end && end <= network.size(),
            "bad comparator range {start}..{end}"
        );
        let mut unsorted = [0u64; W];
        backend.run_scan(
            &mut self.lanes,
            &network.comparators()[start..end],
            &mut unsorted,
        );
        unsorted
    }

    /// The words of output line `i` across the whole block.
    #[must_use]
    pub fn lane_words(&self, i: usize) -> [u64; W] {
        self.lanes[i]
    }

    /// Extracts the output string for vector `j` of the block.
    ///
    /// # Panics
    /// Panics if `j ≥ count`, or if the block spans more than 64 lines
    /// (use [`WideBlock::extract_packed`] with a multi-word packing then).
    #[must_use]
    pub fn extract(&self, j: u32) -> BitString {
        self.extract_packed(j)
    }

    /// Extracts the output vector `j` of the block into any
    /// [`ChannelPack`] packing — the multi-word-capable form of
    /// [`WideBlock::extract`].
    ///
    /// # Panics
    /// Panics if `j ≥ count`.
    #[must_use]
    pub fn extract_packed<P: ChannelPack>(&self, j: u32) -> P {
        assert!(j < self.count, "vector index out of range");
        let (w, bit) = ((j / 64) as usize, j % 64);
        P::assemble(self.lanes.len(), |i| (self.lanes[i][w] >> bit) & 1 == 1)
    }
}

/// Single-word (`W = 1`) convenience API, so the original
/// [`BitBlock`](crate::bitparallel::BitBlock) call sites read scalar `u64`
/// masks without indexing one-element arrays.
impl WideBlock<1> {
    /// Bitmask with one set bit per vector actually present in the block
    /// (bits `0..count`).
    #[must_use]
    pub fn live_mask(&self) -> u64 {
        self.live_masks()[0]
    }

    /// Returns a bitmask over the block's vectors: bit `j` is set when the
    /// output for vector `j` is **not** sorted.
    #[must_use]
    pub fn unsorted_mask(&self) -> u64 {
        self.unsorted_masks()[0]
    }

    /// Returns, for output line `i`, the 64 output bits of the block.
    #[must_use]
    pub fn lane(&self, i: usize) -> u64 {
        self.lanes[i][0]
    }
}

/// `true` when any bit of a per-word violation mask is set.
#[must_use]
pub fn mask_any<const W: usize>(mask: &[u64; W]) -> bool {
    mask.iter().any(|&w| w != 0)
}

/// Index (within the block) of the first set bit of a per-word mask.
#[must_use]
pub fn mask_first<const W: usize>(mask: &[u64; W]) -> Option<u32> {
    mask.iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(w, word)| (w * 64) as u32 + word.trailing_zeros())
}

/// Total number of set bits of a per-word mask.
#[must_use]
pub fn mask_count<const W: usize>(mask: &[u64; W]) -> u32 {
    mask.iter().map(|w| w.count_ones()).sum()
}

/// A streaming generator of test-vector blocks: the representation the
/// paper's vector *families* travel in, instead of `Vec<BitString>`.
///
/// Implementations overwrite a caller-owned [`WideBlock`] (so the one
/// allocation is reused across the whole sweep) until the family is
/// exhausted.
pub trait BlockSource<const W: usize> {
    /// Number of network lines each vector has.
    fn lines(&self) -> usize;

    /// Fills `block` with the next up-to-`W×64` vectors of the family.
    ///
    /// Returns `false` (leaving `block` unspecified) when the family is
    /// exhausted.  A filled block always holds at least one vector.
    ///
    /// # Panics
    /// Panics if `block` was built for a different line count.
    fn next_block(&mut self, block: &mut WideBlock<W>) -> bool;
}

impl<const W: usize, S: BlockSource<W> + ?Sized> BlockSource<W> for Box<S> {
    fn lines(&self) -> usize {
        (**self).lines()
    }

    fn next_block(&mut self, block: &mut WideBlock<W>) -> bool {
        (**self).next_block(block)
    }
}

/// The exhaustive family of all `2^n` binary vectors, generated directly in
/// transposed form by counting patterns (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct RangeSource {
    n: usize,
    next: u64,
    end: u64,
}

impl RangeSource {
    /// The full `2^n` sweep.
    ///
    /// # Panics
    /// Panics if `n ≥ 32` (a larger sweep would take > 4 G evaluations;
    /// callers wanting larger `n` should use the test-set verifiers
    /// instead).
    #[must_use]
    pub fn exhaustive(n: usize) -> Self {
        Self::try_exhaustive(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The full `2^n` sweep, refusing `n ≥ 32` with a typed error
    /// instead of a panic.
    ///
    /// # Errors
    /// [`EngineError::SweepTooLarge`] when `n ≥ 32`.
    pub fn try_exhaustive(n: usize) -> Result<Self, EngineError> {
        error::ensure_sweepable(n)?;
        Ok(Self {
            n,
            next: 0,
            end: 1u64 << n,
        })
    }
}

impl<const W: usize> BlockSource<W> for RangeSource {
    fn lines(&self) -> usize {
        self.n
    }

    fn next_block(&mut self, block: &mut WideBlock<W>) -> bool {
        assert_eq!(block.lines(), self.n, "line count mismatch");
        if self.next >= self.end {
            return false;
        }
        let count = (self.end - self.next).min(u64::from(WideBlock::<W>::capacity())) as u32;
        block.fill_from_range(self.next, count);
        self.next += u64::from(count);
        true
    }
}

/// Block-filling adapter over any iterator of packed vectors: the bridge
/// from the `sortnet-combinat` generators (unsorted strings, low-weight
/// subset enumerations, half-sorted merge inputs, …) to transposed blocks.
///
/// The item type is any [`ChannelPack`]: `BitString` iterators drive the
/// historical `n ≤ 64` path, `ChannelVec` iterators the multi-word one.
pub struct IterSource<I: Iterator> {
    n: usize,
    iter: I,
    buf: Vec<I::Item>,
}

impl<I: Iterator + Clone> Clone for IterSource<I>
where
    I::Item: Clone,
{
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            iter: self.iter.clone(),
            buf: self.buf.clone(),
        }
    }
}

impl<I: Iterator + std::fmt::Debug> std::fmt::Debug for IterSource<I>
where
    I::Item: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterSource")
            .field("n", &self.n)
            .field("iter", &self.iter)
            .field("buf", &self.buf)
            .finish()
    }
}

impl<I: Iterator> IterSource<I>
where
    I::Item: ChannelPack,
{
    /// Wraps `iter`, whose items must all have length `n`.
    pub fn new(n: usize, iter: impl IntoIterator<IntoIter = I>) -> Self {
        Self {
            n,
            iter: iter.into_iter(),
            buf: Vec::new(),
        }
    }
}

impl<const W: usize, I: Iterator> BlockSource<W> for IterSource<I>
where
    I::Item: ChannelPack,
{
    fn lines(&self) -> usize {
        self.n
    }

    fn next_block(&mut self, block: &mut WideBlock<W>) -> bool {
        assert_eq!(block.lines(), self.n, "line count mismatch");
        self.buf.clear();
        self.buf
            .extend(self.iter.by_ref().take(WideBlock::<W>::capacity() as usize));
        if self.buf.is_empty() {
            return false;
        }
        block.fill_from_strings(&self.buf);
        true
    }
}

/// Concatenation of two block sources over the same line count: streams
/// every block of `first`, then every block of `second` — the combinator
/// candidate families are assembled from (the augmentation search in
/// `sortnet-testsets` chains a structured family ahead of a broader one so
/// greedy tie-breaks prefer the structured candidates).
///
/// A block in the middle of the chained stream may be *partial* (the last
/// block of `first` holds however many vectors that family had left), so
/// consumers must index vectors by cumulative count, not by
/// `block × capacity`.
#[derive(Clone, Debug)]
pub struct ChainSource<A, B> {
    first: A,
    second: B,
    on_second: bool,
}

impl<A, B> ChainSource<A, B> {
    /// Chains `first` and `second`.
    ///
    /// The two sources must agree on the line count; the mismatch is
    /// reported at [`BlockSource::next_block`] time (the constructor is
    /// width-agnostic and cannot call the trait accessor).
    pub fn new(first: A, second: B) -> Self {
        Self {
            first,
            second,
            on_second: false,
        }
    }
}

impl<const W: usize, A: BlockSource<W>, B: BlockSource<W>> BlockSource<W> for ChainSource<A, B> {
    fn lines(&self) -> usize {
        self.first.lines()
    }

    fn next_block(&mut self, block: &mut WideBlock<W>) -> bool {
        assert_eq!(
            self.first.lines(),
            self.second.lines(),
            "chained sources must agree on the line count"
        );
        if !self.on_second {
            if self.first.next_block(block) {
                return true;
            }
            self.on_second = true;
        }
        self.second.next_block(block)
    }
}

/// Outcome of a [`sweep_find`] run.
///
/// Generic over the witness packing `P` (default [`BitString`]); the
/// multi-word drivers ([`sweep_find_packed`] and friends) return
/// `SweepOutcome<ChannelVec>`-style outcomes for `n > 64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome<P = BitString> {
    /// Number of vectors evaluated before the sweep stopped (all of them on
    /// a pass; everything up to and including the failing block otherwise).
    pub tests_run: u64,
    /// The first violating *input* vector, in source order, if any.
    pub witness: Option<P>,
}

/// Streams `source` block by block, asking `violation` for a per-word mask
/// of failing vectors, and stops at the first violating block.
///
/// `violation` receives the pristine *input* block (it typically copies it
/// into a scratch block, runs a network, and masks the outputs), so the
/// witness can be extracted from the inputs without re-generating them.
pub fn sweep_find<const W: usize, S: BlockSource<W>>(
    source: S,
    violation: impl FnMut(&WideBlock<W>) -> [u64; W],
) -> SweepOutcome {
    sweep_find_packed(source, violation)
}

/// [`sweep_find`] with the witness extracted into any [`ChannelPack`]
/// packing — the entry point for sweeps over more than 64 lines.
pub fn sweep_find_packed<const W: usize, P: ChannelPack, S: BlockSource<W>>(
    mut source: S,
    mut violation: impl FnMut(&WideBlock<W>) -> [u64; W],
) -> SweepOutcome<P> {
    let mut block = WideBlock::<W>::zeroed(source.lines());
    let mut tests_run = 0u64;
    while source.next_block(&mut block) {
        tests_run += u64::from(block.count());
        let mask = violation(&block);
        if let Some(j) = mask_first(&mask) {
            return SweepOutcome {
                tests_run,
                witness: Some(block.extract_packed(j)),
            };
        }
    }
    SweepOutcome {
        tests_run,
        witness: None,
    }
}

/// [`sweep_find`] under a [`SweepBudget`]: the budget is consulted once
/// per block, and a trip abandons the stream, returning
/// [`Budgeted::Partial`] whose `best_so_far` outcome covers exactly the
/// committed blocks (no witness was found in them — had one been found,
/// the sweep would have returned it already).
pub fn sweep_find_budgeted<const W: usize, S: BlockSource<W>>(
    source: S,
    budget: &SweepBudget,
    violation: impl FnMut(&WideBlock<W>) -> [u64; W],
) -> Budgeted<SweepOutcome> {
    sweep_find_budgeted_packed(source, budget, violation)
}

/// [`sweep_find_budgeted`] with the witness extracted into any
/// [`ChannelPack`] packing.
pub fn sweep_find_budgeted_packed<const W: usize, P: ChannelPack, S: BlockSource<W>>(
    mut source: S,
    budget: &SweepBudget,
    mut violation: impl FnMut(&WideBlock<W>) -> [u64; W],
) -> Budgeted<SweepOutcome<P>> {
    let mut meter = BudgetMeter::new(budget);
    let mut block = WideBlock::<W>::zeroed(source.lines());
    let mut tests_run = 0u64;
    while source.next_block(&mut block) {
        if !meter.admit_block(u64::from(block.count())) {
            break;
        }
        tests_run += u64::from(block.count());
        let mask = violation(&block);
        if let Some(j) = mask_first(&mask) {
            return meter.finish(SweepOutcome {
                tests_run,
                witness: Some(block.extract_packed(j)),
            });
        }
    }
    meter.finish(SweepOutcome {
        tests_run,
        witness: None,
    })
}

/// Streams `source` through `network` and reports the first input whose
/// output is **not sorted** — the shared "copy block, run, mask" sweep the
/// sorting/merging verifiers and oracles build on.  Runs on the
/// [active](Backend::active) backend.
pub fn sweep_network<const W: usize, S: BlockSource<W>>(
    source: S,
    network: &Network,
) -> SweepOutcome {
    sweep_network_with(source, network, Backend::active())
}

/// [`sweep_network`] on an explicit [`Backend`].
pub fn sweep_network_with<const W: usize, S: BlockSource<W>>(
    source: S,
    network: &Network,
    backend: Backend,
) -> SweepOutcome {
    sweep_network_packed_with(source, network, backend)
}

/// [`sweep_network`] with the witness extracted into any [`ChannelPack`]
/// packing — the sortedness sweep for networks past 64 lines.
pub fn sweep_network_packed<const W: usize, P: ChannelPack, S: BlockSource<W>>(
    source: S,
    network: &Network,
) -> SweepOutcome<P> {
    sweep_network_packed_with(source, network, Backend::active())
}

/// [`sweep_network_packed`] on an explicit [`Backend`].
pub fn sweep_network_packed_with<const W: usize, P: ChannelPack, S: BlockSource<W>>(
    source: S,
    network: &Network,
    backend: Backend,
) -> SweepOutcome<P> {
    let mut work = WideBlock::<W>::zeroed(source.lines());
    sweep_find_packed(source, |block| {
        work.copy_from(block);
        work.run_with(backend, network);
        work.unsorted_masks_with(backend)
    })
}

/// [`sweep_network`] with the source/network agreement checked up front,
/// returning a typed error instead of an engine-internal panic.
///
/// # Errors
/// [`EngineError::ChannelMismatch`] when `source` and `network` disagree
/// on the line count.
pub fn try_sweep_network<const W: usize, S: BlockSource<W>>(
    source: S,
    network: &Network,
) -> Result<SweepOutcome, EngineError> {
    try_sweep_network_with(source, network, Backend::active())
}

/// [`try_sweep_network`] on an explicit [`Backend`].
///
/// # Errors
/// [`EngineError::ChannelMismatch`] when `source` and `network` disagree
/// on the line count.
pub fn try_sweep_network_with<const W: usize, S: BlockSource<W>>(
    source: S,
    network: &Network,
    backend: Backend,
) -> Result<SweepOutcome, EngineError> {
    error::ensure_same_lines(network.lines(), source.lines())?;
    Ok(sweep_network_with(source, network, backend))
}

/// [`sweep_network`] under a [`SweepBudget`]: checked and budgeted.  A
/// [`Budgeted::Partial`] outcome means no violation was found in the
/// committed prefix of the family (the property may still fail on the
/// unswept remainder).
///
/// # Errors
/// [`EngineError::ChannelMismatch`] when `source` and `network` disagree
/// on the line count.
pub fn sweep_network_budgeted<const W: usize, S: BlockSource<W>>(
    source: S,
    network: &Network,
    budget: &SweepBudget,
) -> Result<Budgeted<SweepOutcome>, EngineError> {
    sweep_network_budgeted_with(source, network, budget, Backend::active())
}

/// [`sweep_network_budgeted`] on an explicit [`Backend`].
///
/// # Errors
/// [`EngineError::ChannelMismatch`] when `source` and `network` disagree
/// on the line count.
pub fn sweep_network_budgeted_with<const W: usize, S: BlockSource<W>>(
    source: S,
    network: &Network,
    budget: &SweepBudget,
    backend: Backend,
) -> Result<Budgeted<SweepOutcome>, EngineError> {
    error::ensure_same_lines(network.lines(), source.lines())?;
    let mut work = WideBlock::<W>::zeroed(source.lines());
    Ok(sweep_find_budgeted(source, budget, |block| {
        work.copy_from(block);
        work.run_with(backend, network);
        work.unsorted_masks_with(backend)
    }))
}

/// Per-word masks of vectors whose first `k` output lanes differ between a
/// candidate's evaluated block and a reference sorter's evaluated block
/// over the same inputs — the `(k, n)`-selection violation test shared by
/// the exhaustive sweep and the test-set verifier.  Computed on the
/// [active](Backend::active) backend.
///
/// # Panics
/// Panics if `k` exceeds the line count or the blocks disagree on lines.
#[must_use]
pub fn selector_violation_masks<const W: usize>(
    out: &WideBlock<W>,
    sorted: &WideBlock<W>,
    k: usize,
) -> [u64; W] {
    selector_violation_masks_with(out, sorted, k, Backend::active())
}

/// [`selector_violation_masks`] on an explicit [`Backend`].
///
/// # Panics
/// Panics if `k` exceeds the line count or the blocks disagree on lines.
#[must_use]
pub fn selector_violation_masks_with<const W: usize>(
    out: &WideBlock<W>,
    sorted: &WideBlock<W>,
    k: usize,
    backend: Backend,
) -> [u64; W] {
    assert_eq!(out.lines(), sorted.lines(), "line count mismatch");
    assert!(k <= out.lines(), "k = {k} exceeds the line count");
    let mut wrong = [0u64; W];
    backend.diff_scan(&out.lanes[..k], &sorted.lanes[..k], &mut wrong);
    let live = out.live_masks();
    for w in 0..W {
        wrong[w] &= live[w];
    }
    wrong
}

/// Drains a source into the materialised `Vec<BitString>` form — the thin
/// adapter the `Vec`-returning test-set constructors delegate to.
#[must_use]
pub fn collect_strings<const W: usize, S: BlockSource<W>>(source: S) -> Vec<BitString> {
    collect_packed(source)
}

/// Drains a source into a materialised `Vec` of any [`ChannelPack`]
/// packing — the multi-word form of [`collect_strings`].
#[must_use]
pub fn collect_packed<const W: usize, P: ChannelPack, S: BlockSource<W>>(mut source: S) -> Vec<P> {
    let mut block = WideBlock::<W>::zeroed(source.lines());
    let mut out = Vec::new();
    while source.next_block(&mut block) {
        out.extend((0..block.count()).map(|j| block.extract_packed(j)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::batcher::odd_even_merge_sort;

    #[test]
    fn from_range_counting_patterns_match_from_strings() {
        for n in [3usize, 7, 9] {
            let all: Vec<BitString> = BitString::all(n).collect();
            for (start, count) in [(0u64, 1u32), (0, 64), (64, 64), (0, 65), (5, 37), (64, 100)] {
                if start >= all.len() as u64 {
                    continue;
                }
                let count = count.min((all.len() as u64 - start) as u32);
                let chunk = &all[start as usize..start as usize + count as usize];
                assert_eq!(
                    WideBlock::<2>::from_range(n, start, count),
                    WideBlock::<2>::from_strings(n, chunk),
                    "n={n} start={start} count={count}"
                );
            }
        }
    }

    #[test]
    fn wide_run_matches_scalar_evaluation_across_widths() {
        let net = odd_even_merge_sort(5);
        let inputs: Vec<BitString> = BitString::all(5).collect();
        fn check<const W: usize>(net: &Network, inputs: &[BitString]) {
            let mut block = WideBlock::<W>::from_strings(5, inputs);
            block.run(net);
            for (j, input) in inputs.iter().enumerate() {
                assert_eq!(block.extract(j as u32), net.apply_bits(input), "W={W}");
            }
            assert_eq!(mask_count(&block.unsorted_masks()), 0);
        }
        check::<1>(&net, &inputs[..20]);
        check::<1>(&net, &inputs);
        check::<2>(&net, &inputs);
        check::<4>(&net, &inputs);
    }

    #[test]
    fn unsorted_masks_span_word_boundaries() {
        let net = Network::empty(7);
        let mut block = WideBlock::<2>::from_range(7, 0, 128);
        block.run(&net);
        let masks = block.unsorted_masks();
        let expected: u32 = BitString::all(7)
            .take(128)
            .map(|s| u32::from(!s.is_sorted()))
            .sum();
        assert_eq!(mask_count(&masks), expected);
        let first = mask_first(&masks).unwrap();
        let scalar_first = BitString::all(7).position(|s| !s.is_sorted()).unwrap();
        assert_eq!(first as usize, scalar_first);
        assert!(mask_any(&masks));
    }

    #[test]
    fn range_source_streams_the_exhaustive_family_in_order() {
        let mut source = RangeSource::exhaustive(9);
        let mut block = WideBlock::<4>::zeroed(9);
        let mut seen = Vec::new();
        while BlockSource::<4>::next_block(&mut source, &mut block) {
            seen.extend((0..block.count()).map(|j| block.extract(j)));
        }
        let expected: Vec<BitString> = BitString::all(9).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn iter_source_agrees_with_its_iterator() {
        let collected = collect_strings::<2, _>(IterSource::new(6, BitString::all_unsorted(6)));
        let expected: Vec<BitString> = BitString::all_unsorted(6).collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn chain_source_streams_both_families_in_order() {
        // Sorted strings ahead of the unsorted family: the chain must yield
        // the exact concatenation, including across the partial block the
        // first family ends on.
        let n = 6usize;
        let sorted = (0..=n).map(|ones| BitString::sorted_with(n - ones, ones));
        let chain = ChainSource::new(
            IterSource::new(n, sorted.clone()),
            IterSource::new(n, BitString::all_unsorted(n)),
        );
        let collected = collect_strings::<1, _>(chain);
        let expected: Vec<BitString> = sorted.chain(BitString::all_unsorted(n)).collect();
        assert_eq!(collected, expected);
        // The first family ends mid-block (7 < 64), so the chained stream
        // contains a partial block followed by full ones.
        let mut source = ChainSource::new(
            IterSource::new(
                n,
                (0..=n).map(|ones| BitString::sorted_with(n - ones, ones)),
            ),
            RangeSource::exhaustive(n),
        );
        let mut block = WideBlock::<1>::zeroed(n);
        assert!(BlockSource::<1>::next_block(&mut source, &mut block));
        assert_eq!(block.count(), 7, "first family's partial block");
        assert!(BlockSource::<1>::next_block(&mut source, &mut block));
        assert_eq!(block.count(), 64, "second family restarts full");
        assert_eq!(block.extract(0), BitString::zeros(n));
    }

    #[test]
    #[should_panic(expected = "line count")]
    fn chain_source_rejects_mismatched_line_counts() {
        let mut source = ChainSource::new(RangeSource::exhaustive(4), RangeSource::exhaustive(5));
        let mut block = WideBlock::<1>::zeroed(4);
        while BlockSource::<1>::next_block(&mut source, &mut block) {}
    }

    #[test]
    fn sweep_find_reports_the_first_violation_in_source_order() {
        let net = Network::empty(6);
        let mut work = WideBlock::<2>::zeroed(6);
        let outcome = sweep_find(
            IterSource::new(6, BitString::all(6)),
            |block: &WideBlock<2>| {
                work.copy_from(block);
                work.run(&net);
                work.unsorted_masks()
            },
        );
        let scalar_first = BitString::all(6).find(|s| !s.is_sorted()).unwrap();
        assert_eq!(outcome.witness, Some(scalar_first));
        // The sorter passes the same sweep and counts every vector.
        let sorter = odd_even_merge_sort(6);
        let mut work = WideBlock::<2>::zeroed(6);
        let outcome = sweep_find(RangeSource::exhaustive(6), |block: &WideBlock<2>| {
            work.copy_from(block);
            work.run(&sorter);
            work.unsorted_masks()
        });
        assert_eq!(outcome.witness, None);
        assert_eq!(outcome.tests_run, 64);
    }

    #[test]
    fn try_exhaustive_refuses_oversized_sweeps_with_a_typed_error() {
        assert!(RangeSource::try_exhaustive(10).is_ok());
        assert_eq!(
            RangeSource::try_exhaustive(32).unwrap_err(),
            EngineError::SweepTooLarge { lines: 32 }
        );
    }

    #[test]
    fn try_sweep_network_rejects_line_count_mismatch() {
        let net = odd_even_merge_sort(6);
        let err = try_sweep_network::<1, _>(RangeSource::exhaustive(5), &net).unwrap_err();
        assert_eq!(
            err,
            EngineError::ChannelMismatch {
                expected: 6,
                actual: 5
            }
        );
        let ok = try_sweep_network::<1, _>(RangeSource::exhaustive(6), &net).unwrap();
        assert_eq!(ok.witness, None);
        assert_eq!(ok.tests_run, 64);
    }

    #[test]
    fn budgeted_sweep_trips_at_the_block_cap_with_an_exact_prefix() {
        // 2^9 inputs at W = 1 is 8 blocks; a 3-block budget must commit
        // exactly 192 vectors and report Partial.
        let sorter = odd_even_merge_sort(9);
        let budget = SweepBudget::unlimited().with_max_blocks(3);
        let outcome =
            sweep_network_budgeted::<1, _>(RangeSource::exhaustive(9), &sorter, &budget).unwrap();
        match outcome {
            Budgeted::Partial {
                progress,
                best_so_far,
                ..
            } => {
                assert_eq!(progress.blocks, 3);
                assert_eq!(progress.vectors, 192);
                assert_eq!(best_so_far.tests_run, 192);
                assert_eq!(best_so_far.witness, None);
            }
            Budgeted::Complete(_) => panic!("a 3-block budget cannot cover 8 blocks"),
        }
        // An unlimited budget is the unbudgeted sweep.
        let full = sweep_network_budgeted::<1, _>(
            RangeSource::exhaustive(9),
            &sorter,
            &SweepBudget::unlimited(),
        )
        .unwrap();
        assert!(full.is_complete());
        assert_eq!(full.value().tests_run, 512);
    }

    #[test]
    fn budgeted_sweep_still_reports_witnesses_inside_the_budget() {
        let non_sorter = Network::empty(6);
        let budget = SweepBudget::unlimited().with_max_blocks(1);
        let outcome =
            sweep_network_budgeted::<1, _>(RangeSource::exhaustive(6), &non_sorter, &budget)
                .unwrap();
        // The first violation sits in block 0, inside the budget: the
        // sweep completes early with the witness.
        assert!(outcome.is_complete());
        let scalar_first = BitString::all(6).find(|s| !s.is_sorted()).unwrap();
        assert_eq!(outcome.value().witness, Some(scalar_first));
    }

    #[test]
    fn fill_lane_forces_the_line_in_every_vector() {
        let mut block = WideBlock::<2>::from_range(5, 0, 32);
        block.fill_lane(1, true);
        block.fill_lane(3, false);
        for j in 0..32u32 {
            let s = block.extract(j);
            assert!(s.get(1), "vector {j}");
            assert!(!s.get(3), "vector {j}");
            // Untouched lanes keep the counting-pattern value.
            assert_eq!(s.get(0), (j & 1) == 1, "vector {j}");
        }
        // Forced bits beyond count stay invisible to the mask consumers.
        let mut partial = WideBlock::<1>::from_range(3, 0, 4);
        partial.fill_lane(0, true);
        assert_eq!(partial.unsorted_masks()[0] & !partial.live_mask(), 0);
    }

    #[test]
    fn lane_width_enum_matches_const_widths() {
        assert_eq!(LaneWidth::W1.words(), 1);
        assert_eq!(LaneWidth::W2.vectors_per_block(), 128);
        assert_eq!(LaneWidth::W4.words(), DEFAULT_WIDTH);
        assert_eq!(LaneWidth::W8.vectors_per_block(), 512);
        assert_eq!(LaneWidth::W16.vectors_per_block(), 1024);
        assert_eq!(WideBlock::<8>::capacity(), 512);
        assert_eq!(WideBlock::<16>::capacity(), 1024);
        assert!(LaneWidth::ALL
            .windows(2)
            .all(|p| p[0].words() < p[1].words()));
    }

    #[test]
    fn every_backend_runs_a_network_identically_at_wide_widths() {
        let net = odd_even_merge_sort(6);
        for backend in Backend::runnable() {
            fn check<const W: usize>(net: &Network, backend: Backend) {
                let mut block = WideBlock::<W>::from_range(6, 0, 64);
                block.run_with(backend, net);
                let mut reference = WideBlock::<W>::from_range(6, 0, 64);
                reference.run_with(Backend::Scalar, net);
                assert_eq!(block, reference, "{} W={W}", backend.name());
                assert_eq!(
                    block.unsorted_masks_with(backend),
                    reference.unsorted_masks_with(Backend::Scalar),
                    "{} W={W}",
                    backend.name()
                );
            }
            check::<1>(&net, backend);
            check::<4>(&net, backend);
            check::<8>(&net, backend);
            check::<16>(&net, backend);
        }
    }

    // ------------------------------------------------------------------
    // Multi-word channel (n > 64) boundary audit — the PR 5 n ∈ {63, 64}
    // word-boundary audit, one channel word up.
    // ------------------------------------------------------------------

    use sortnet_combinat::ChannelVec;

    #[test]
    fn packed_fill_and_extract_round_trip_across_channel_words() {
        for n in [63usize, 64, 65, 96, 127, 128] {
            let inputs: Vec<ChannelVec> = (0..100u64)
                .map(|v| {
                    ChannelVec::from_fn(n, |i| {
                        (v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32)) & 1 == 1
                    })
                })
                .collect();
            fn check<const W: usize>(n: usize, inputs: &[ChannelVec]) {
                let chunk = &inputs[..inputs.len().min(W * 64)];
                let block = WideBlock::<W>::from_strings(n, chunk);
                assert_eq!(block.lines(), n);
                for (j, input) in chunk.iter().enumerate() {
                    let got: ChannelVec = block.extract_packed(j as u32);
                    assert_eq!(&got, input, "n={n} W={W} j={j}");
                }
            }
            check::<1>(n, &inputs);
            check::<2>(n, &inputs);
            check::<4>(n, &inputs);
        }
    }

    #[test]
    fn counting_fill_is_consistent_past_64_lines() {
        // On an n > 64 network the range start is still a single word, so
        // lanes 64.. must be all-zero — and, crucially, the fill must not
        // overflow-shift by the lane index.  Cross-check against the
        // explicit per-vector fill at both aligned and unaligned starts.
        for n in [63usize, 64, 65, 128] {
            for (start, count) in [(0u64, 64u32), (64, 64), (5, 37), (64, 100), (1, 128)] {
                let expected: Vec<ChannelVec> = (start..start + u64::from(count))
                    .map(|v| ChannelVec::from_words(&[v, 0], n.max(1)))
                    .collect();
                let range = WideBlock::<2>::from_range(n, start, count);
                let strings = WideBlock::<2>::from_strings(n, &expected);
                assert_eq!(range, strings, "n={n} start={start} count={count}");
            }
        }
    }

    #[test]
    fn network_run_matches_scalar_apply_past_64_lines() {
        // Comparators crossing the word-63/64 channel boundary, run through
        // the block engine on every backend, against a per-vector scalar
        // evaluation on Vec<u8>.
        let n = 96usize;
        let net = Network::from_pairs(
            n,
            &[
                (0, 95),
                (63, 64),
                (0, 1),
                (64, 65),
                (62, 63),
                (1, 94),
                (31, 65),
            ],
        );
        let inputs: Vec<ChannelVec> = (0..128u64)
            .map(|v| {
                ChannelVec::from_fn(n, |i| {
                    (v.wrapping_mul(0xA076_1D64_78BD_642F)
                        .rotate_left((i * 7) as u32))
                        & 1
                        == 1
                })
            })
            .collect();
        let reference: Vec<Vec<u8>> = inputs
            .iter()
            .map(|input| {
                let mut bits = input.to_vec();
                for c in net.comparators() {
                    let (i, j) = (c.top(), c.bottom());
                    if bits[i] > bits[j] {
                        bits.swap(i, j);
                    }
                }
                bits
            })
            .collect();
        for backend in Backend::runnable() {
            fn check<const W: usize>(
                net: &Network,
                inputs: &[ChannelVec],
                reference: &[Vec<u8>],
                backend: Backend,
            ) {
                let n = net.lines();
                for chunk_bounds in [(0, inputs.len().min(W * 64))] {
                    let chunk = &inputs[chunk_bounds.0..chunk_bounds.1];
                    let mut block = WideBlock::<W>::from_strings(n, chunk);
                    block.run_with(backend, net);
                    for (j, expected) in reference[..chunk.len()].iter().enumerate() {
                        let got: ChannelVec = block.extract_packed(j as u32);
                        assert_eq!(&got.to_vec(), expected, "{} W={W} j={j}", backend.name());
                    }
                }
            }
            check::<1>(&net, &inputs, &reference, backend);
            check::<4>(&net, &inputs, &reference, backend);
        }
    }

    #[test]
    fn packed_sweep_finds_witnesses_past_64_lines() {
        // An identity network on 96 lines sorts nothing: the first unsorted
        // vector of the streamed family must come back as the witness, in
        // its multi-word packing.
        let n = 96usize;
        let net = Network::empty(n);
        let sorted: Vec<ChannelVec> = (0..=n)
            .map(|ones| ChannelVec::sorted_of(n - ones, ones))
            .collect();
        let outcome: SweepOutcome<ChannelVec> =
            sweep_network_packed::<4, _, _>(IterSource::new(n, sorted.iter().cloned()), &net);
        assert_eq!(outcome.tests_run, (n + 1) as u64);
        assert_eq!(outcome.witness, None, "sorted inputs pass the identity");
        let mut unsorted = ChannelVec::zeros(n);
        unsorted.set(64, true); // 1 at line 64, 0 at line 65: unsorted
        let family: Vec<ChannelVec> = sorted.iter().cloned().chain([unsorted.clone()]).collect();
        let outcome: SweepOutcome<ChannelVec> =
            sweep_network_packed::<2, _, _>(IterSource::new(n, family), &net);
        assert_eq!(outcome.witness, Some(unsorted));
        // And a real sorter on 96 lines leaves the same family violation-free.
        let sorter = odd_even_merge_sort(n);
        let mixed: Vec<ChannelVec> = (0..64u64)
            .map(|v| {
                ChannelVec::from_fn(n, |i| {
                    (v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32)) & 1 == 1
                })
            })
            .collect();
        let outcome: SweepOutcome<ChannelVec> =
            sweep_network_packed::<1, _, _>(IterSource::new(n, mixed), &sorter);
        assert_eq!(outcome.witness, None, "a Batcher sorter sorts all samples");
        assert_eq!(outcome.tests_run, 64);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn extracting_a_bitstring_witness_past_64_lines_panics_cleanly() {
        let block = WideBlock::<1>::from_strings(65, &[ChannelVec::zeros(65)]);
        let _ = block.extract(0);
    }
}
