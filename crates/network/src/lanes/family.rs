//! Packed structured vector families: the [`FamilySource`] counterpart to
//! [`RangeSource`](super::RangeSource) for the families that stay
//! enumerable past the 64-line wall.
//!
//! [`RangeSource`](super::RangeSource) streams the *exhaustive* `2^n`
//! family and is therefore refused at `n ≥ 32`.  The paper's structured
//! families are polynomial in `n` and remain graded at the widths the
//! bounds actually target (wide merge/selection networks, 96+ lines):
//!
//! | family | size | contents |
//! |---|---|---|
//! | [`PackedFamily::SortedStrings`] | `n + 1` | `0^{n−t} 1^t` for every `t` |
//! | [`PackedFamily::WeightAtMost`]`(k)` | `Σ_{j≤k} C(n,j)` | all strings of weight ≤ `k` |
//! | [`PackedFamily::SingleRuns`] | `1 + n(n+1)/2` | all-zeros plus every single-run string |
//! | [`PackedFamily::NecessityWitnesses`] | `n − 1` | per weight, the sorted string with its 0/1 boundary pair swapped |
//!
//! Each family has a scalar per-index reference ([`PackedFamily::vector`],
//! generic over the [`ChannelPack`] packing) and a *direct block fill*:
//! [`FamilySource`] writes transposed lane words with range-mask arithmetic
//! (or, for the weight family, `O(k)` single-bit writes per vector) —
//! no per-vector string is ever materialised, exactly like the
//! counting-pattern fill of the exhaustive source.
//!
//! The necessity witnesses are the canonical Lemma 2.1 failure outputs
//! `0^{z−1} 1 0 1^{o−1}`: the minimal unsorted string of each weight,
//! i.e. the strings any test set must detect *some* representative of.

use std::marker::PhantomData;

use sortnet_combinat::{binomial_u128, ChannelPack};

use super::{BlockSource, WideBlock};
use crate::error::EngineError;

/// A named structured vector family enumerable past the 64-line wall.
///
/// The name doubles as provenance: coverage reports grade redundancy
/// *relative to* a named family at widths where the exhaustive sweep is
/// inadmissible, and the wire protocol spells the variants exactly as
/// [`PackedFamily::parse`] accepts them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PackedFamily {
    /// The `n + 1` sorted strings `0^{n−t} 1^t`.
    SortedStrings,
    /// Every string of weight at most `k`, weight-ascending and in colex
    /// (Gosper) order within each weight — the enumeration order of
    /// `BitString::all_with_weight`.
    WeightAtMost(u32),
    /// The all-zeros string followed by every string whose ones form one
    /// contiguous run `[s, e]`, ordered by start then end.
    SingleRuns,
    /// For each weight `t ∈ 1..n`: the sorted string of weight `t` with
    /// the adjacent pair at its 0/1 boundary swapped (`0^{z−1} 1 0 1^{t−1}`,
    /// `z = n − t`) — the canonical Lemma 2.1 adversary failure outputs.
    NecessityWitnesses,
}

impl PackedFamily {
    /// The canonical spelling, used by reports, the wire protocol and the
    /// CLI (`relative:<name>`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::SortedStrings => "sorted-strings".to_string(),
            Self::WeightAtMost(k) => format!("weight-le-{k}"),
            Self::SingleRuns => "single-runs".to_string(),
            Self::NecessityWitnesses => "necessity-witnesses".to_string(),
        }
    }

    /// Parses [`PackedFamily::name`] spellings (`sorted-strings`,
    /// `weight-le-<k>`, `single-runs`, `necessity-witnesses`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sorted-strings" => Some(Self::SortedStrings),
            "single-runs" => Some(Self::SingleRuns),
            "necessity-witnesses" => Some(Self::NecessityWitnesses),
            _ => s
                .strip_prefix("weight-le-")
                .and_then(|k| k.parse::<u32>().ok())
                .map(Self::WeightAtMost),
        }
    }

    /// Number of vectors in the family at length `n`, overflow-checked.
    ///
    /// # Errors
    /// [`EngineError::TooLarge`] when the count does not fit a `u64`
    /// (a weight-bounded family on a degenerate huge `n`).
    pub fn try_len(&self, n: usize) -> Result<u64, EngineError> {
        let too_large = || EngineError::TooLarge {
            what: "packed vector family",
        };
        match self {
            Self::SortedStrings => Ok(n as u64 + 1),
            Self::WeightAtMost(k) => {
                let k = (*k as usize).min(n);
                let mut total: u128 = 0;
                for j in 0..=k {
                    total = total
                        .checked_add(binomial_u128(n as u64, j as u64))
                        .ok_or_else(too_large)?;
                }
                u64::try_from(total).map_err(|_| too_large())
            }
            Self::SingleRuns => {
                let runs = (n as u64)
                    .checked_mul(n as u64 + 1)
                    .map(|r| r / 2)
                    .ok_or_else(too_large)?;
                runs.checked_add(1).ok_or_else(too_large)
            }
            Self::NecessityWitnesses => Ok((n as u64).saturating_sub(1)),
        }
    }

    /// [`PackedFamily::try_len`], panicking on overflow.
    ///
    /// # Panics
    /// Panics when the count does not fit a `u64`.
    #[must_use]
    pub fn len(&self, n: usize) -> u64 {
        self.try_len(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The `index`-th vector of the family at length `n`, assembled
    /// bit-by-bit — the scalar reference the direct block fill is graded
    /// against.
    ///
    /// # Panics
    /// Panics when `index ≥ len(n)`, or when the packing cannot hold `n`
    /// lines (`BitString` past 64).
    #[must_use]
    pub fn vector<P: ChannelPack>(&self, n: usize, index: u64) -> P {
        let len = self.len(n);
        assert!(index < len, "family index {index} out of range (len {len})");
        match self {
            Self::SortedStrings => {
                let t = index as usize;
                P::sorted_of(n - t, t)
            }
            Self::WeightAtMost(_) => {
                // Peel the weight groups, then colex-unrank within the
                // group via the combinadic.
                let mut rest = index as u128;
                let mut weight = 0usize;
                loop {
                    let group = binomial_u128(n as u64, weight as u64);
                    if rest < group {
                        break;
                    }
                    rest -= group;
                    weight += 1;
                }
                let mut members = vec![false; n];
                for i in (1..=weight).rev() {
                    // Largest c with C(c, i) <= rest.
                    let mut c = i - 1;
                    while binomial_u128((c + 1) as u64, i as u64) <= rest {
                        c += 1;
                    }
                    rest -= binomial_u128(c as u64, i as u64);
                    members[c] = true;
                }
                P::assemble(n, |i| members[i])
            }
            Self::SingleRuns => {
                if index == 0 {
                    return P::assemble(n, |_| false);
                }
                // Runs grouped by start s (each start has n - s runs).
                let mut v = index - 1;
                let mut s = 0usize;
                while v >= (n - s) as u64 {
                    v -= (n - s) as u64;
                    s += 1;
                }
                let e = s + v as usize;
                P::assemble(n, |i| (s..=e).contains(&i))
            }
            Self::NecessityWitnesses => {
                // index v -> weight t = v + 1, boundary z = n - t >= 1:
                // the sorted string 0^z 1^t with bits z-1 and z swapped.
                let z = n - 1 - index as usize;
                P::assemble(n, |i| i + 1 >= z && i != z)
            }
        }
    }

    /// Every vector of the family at length `n`, in enumeration order —
    /// a thin adapter over [`PackedFamily::vector`]; sweeps should prefer
    /// [`FamilySource`] directly.
    #[must_use]
    pub fn collect<P: ChannelPack>(&self, n: usize) -> Vec<P> {
        (0..self.len(n)).map(|i| self.vector(n, i)).collect()
    }
}

impl std::fmt::Display for PackedFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// ORs the global index range `[lo, hi)` of a family, intersected with the
/// block window `[base, base + count)`, into one transposed lane.
fn or_index_range<const W: usize>(lane: &mut [u64; W], base: u64, count: u32, lo: u64, hi: u64) {
    let a = lo.max(base);
    let b = hi.min(base + u64::from(count));
    if a >= b {
        return;
    }
    let (rel_a, rel_b) = (a - base, b - base);
    let first = (rel_a / 64) as usize;
    let last = ((rel_b - 1) / 64) as usize;
    for (w, word) in lane.iter_mut().enumerate().take(last + 1).skip(first) {
        let word_lo = (w as u64) * 64;
        let lo_bit = rel_a.max(word_lo) - word_lo;
        let hi_bit = rel_b.min(word_lo + 64) - word_lo;
        let mask = if hi_bit - lo_bit == 64 {
            u64::MAX
        } else {
            ((1u64 << (hi_bit - lo_bit)) - 1) << lo_bit
        };
        *word |= mask;
    }
}

/// A [`BlockSource`] streaming a [`PackedFamily`] in transposed blocks by
/// direct lane-word fill — the structured-family counterpart to the
/// exhaustive [`RangeSource`](super::RangeSource).
///
/// Generic over the packing its per-vector accessors return:
/// `FamilySource<BitString>` is the `n ≤ 64` monomorphisation,
/// `FamilySource<ChannelVec>` carries the same families past the wall.
/// The block fill itself is packing-independent (lanes are indexed by
/// line), so both instantiations stream bit-identical blocks.
#[derive(Clone, Debug)]
pub struct FamilySource<P: ChannelPack> {
    family: PackedFamily,
    n: usize,
    next: u64,
    len: u64,
    /// Streaming state for [`PackedFamily::WeightAtMost`]: the positions
    /// of the *next* combination to emit, colex order within the current
    /// weight.
    comb: Vec<usize>,
    weight: usize,
    _pack: PhantomData<P>,
}

impl<P: ChannelPack> FamilySource<P> {
    /// A source streaming `family` at length `n`.
    ///
    /// # Panics
    /// Panics when the family size overflows (see
    /// [`FamilySource::try_new`]).
    #[must_use]
    pub fn new(family: PackedFamily, n: usize) -> Self {
        Self::try_new(family, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`FamilySource::new`] with the size-overflow guard reported as a
    /// typed error.
    ///
    /// # Errors
    /// [`EngineError::TooLarge`] when the family count does not fit a
    /// `u64`.
    pub fn try_new(family: PackedFamily, n: usize) -> Result<Self, EngineError> {
        let len = family.try_len(n)?;
        Ok(Self {
            family,
            n,
            next: 0,
            len,
            comb: Vec::new(),
            weight: 0,
            _pack: PhantomData,
        })
    }

    /// The family being streamed.
    #[must_use]
    pub fn family(&self) -> PackedFamily {
        self.family
    }

    /// Total number of vectors the family holds.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the family holds no vectors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `index`-th vector — [`PackedFamily::vector`] at this source's
    /// length, independent of streaming position.
    ///
    /// # Panics
    /// As [`PackedFamily::vector`].
    #[must_use]
    pub fn vector(&self, index: u64) -> P {
        self.family.vector(self.n, index)
    }

    /// Advances `comb` to the next combination in colex order within the
    /// current weight; on exhaustion, moves to the next weight's first
    /// combination.
    fn advance_combination(&mut self) {
        let k = self.comb.len();
        for i in 0..k {
            let limit = if i + 1 < k { self.comb[i + 1] } else { self.n };
            if self.comb[i] + 1 < limit {
                self.comb[i] += 1;
                for (t, slot) in self.comb.iter_mut().enumerate().take(i) {
                    *slot = t;
                }
                return;
            }
        }
        self.weight += 1;
        self.comb = (0..self.weight).collect();
    }
}

impl<const W: usize, P: ChannelPack> BlockSource<W> for FamilySource<P> {
    fn lines(&self) -> usize {
        self.n
    }

    fn next_block(&mut self, block: &mut WideBlock<W>) -> bool {
        assert_eq!(block.lines(), self.n, "line count mismatch");
        if self.next >= self.len {
            return false;
        }
        let count = (self.len - self.next).min(u64::from(WideBlock::<W>::capacity())) as u32;
        let base = self.next;
        let n = self.n;
        for lane in &mut block.lanes {
            *lane = [0u64; W];
        }
        match self.family {
            PackedFamily::SortedStrings => {
                // Vector t is 0^{n-t} 1^t: lane i is set for t >= n - i,
                // one contiguous index range per lane.
                for (i, lane) in block.lanes.iter_mut().enumerate() {
                    or_index_range(lane, base, count, (n - i) as u64, n as u64 + 1);
                }
            }
            PackedFamily::WeightAtMost(_) => {
                // O(weight) single-bit writes per vector: the positions of
                // the streamed combination, no packed vector materialised.
                for j in 0..count {
                    let (w, bit) = ((j / 64) as usize, j % 64);
                    for &p in &self.comb {
                        block.lanes[p][w] |= 1u64 << bit;
                    }
                    self.advance_combination();
                }
            }
            PackedFamily::SingleRuns => {
                // Runs with start s cover lane i for every end e >= i: one
                // contiguous index range per (lane, start) pair.
                for (i, lane) in block.lanes.iter_mut().enumerate() {
                    let mut group_start = 1u64; // index of run [s, s]
                    for s in 0..=i {
                        let lo = group_start + (i - s) as u64;
                        let hi = group_start + (n - s) as u64;
                        or_index_range(lane, base, count, lo, hi);
                        group_start += (n - s) as u64;
                    }
                }
            }
            PackedFamily::NecessityWitnesses => {
                // Witness v has boundary z = n - 1 - v: lane i is set for
                // v >= n - 2 - i except the single point v = n - 1 - i —
                // a contiguous range with one hole.
                for (i, lane) in block.lanes.iter_mut().enumerate() {
                    let lo = (n.saturating_sub(2).saturating_sub(i)) as u64;
                    let hole = (n - 1 - i.min(n - 1)) as u64;
                    let hi = (n - 1) as u64;
                    or_index_range(lane, base, count, lo, hole);
                    or_index_range(lane, base, count, hole + 1, hi);
                }
            }
        }
        block.count = count;
        self.next += u64::from(count);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::collect_packed;
    use super::*;
    use sortnet_combinat::{BitString, ChannelVec};

    fn families(n: usize) -> Vec<PackedFamily> {
        vec![
            PackedFamily::SortedStrings,
            PackedFamily::WeightAtMost(2),
            PackedFamily::WeightAtMost(0),
            PackedFamily::SingleRuns,
            PackedFamily::NecessityWitnesses,
        ]
        .into_iter()
        .filter(|f| f.try_len(n).is_ok())
        .collect()
    }

    #[test]
    fn names_round_trip_through_parse() {
        for family in families(8) {
            assert_eq!(PackedFamily::parse(&family.name()), Some(family));
        }
        assert_eq!(
            PackedFamily::parse("weight-le-3"),
            Some(PackedFamily::WeightAtMost(3))
        );
        assert_eq!(PackedFamily::parse("weight-le-x"), None);
        assert_eq!(PackedFamily::parse("exhaustive"), None);
    }

    #[test]
    fn family_sizes_match_their_closed_forms() {
        for n in [0usize, 1, 2, 8, 63, 64, 65, 96] {
            assert_eq!(PackedFamily::SortedStrings.len(n), n as u64 + 1);
            assert_eq!(
                PackedFamily::SingleRuns.len(n),
                1 + (n * (n + 1) / 2) as u64
            );
            assert_eq!(
                PackedFamily::NecessityWitnesses.len(n),
                (n as u64).saturating_sub(1)
            );
            let w2 = PackedFamily::WeightAtMost(2).len(n);
            let expected = 1 + n as u64 + (n * n.saturating_sub(1) / 2) as u64;
            assert_eq!(w2, expected, "n={n}");
        }
    }

    #[test]
    fn scalar_vectors_have_the_advertised_shape() {
        let n = 9usize;
        // Sorted strings are sorted with ascending weight.
        for t in 0..=n as u64 {
            let v: BitString = PackedFamily::SortedStrings.vector(n, t);
            assert!(v.is_sorted());
            assert_eq!(v.count_ones() as u64, t);
        }
        // Weight family: weight-ascending, colex within weight, exactly
        // the Gosper enumeration per weight group.
        let fam = PackedFamily::WeightAtMost(3);
        let mut idx = 0u64;
        for weight in 0..=3usize {
            for reference in BitString::all_with_weight(n, weight) {
                let v: BitString = fam.vector(n, idx);
                assert_eq!(v, reference, "idx={idx}");
                idx += 1;
            }
        }
        assert_eq!(idx, fam.len(n));
        // Single runs: the zero vector, then one run per (s, e).
        let runs = PackedFamily::SingleRuns;
        assert_eq!(runs.vector::<BitString>(n, 0).count_ones(), 0);
        let mut idx = 1u64;
        for s in 0..n {
            for e in s..n {
                let v: BitString = runs.vector(n, idx);
                let expected = BitString::assemble(n, |i| (s..=e).contains(&i));
                assert_eq!(v, expected, "s={s} e={e}");
                idx += 1;
            }
        }
        // Necessity witnesses: unsorted, one interchange from sorted.
        for v in 0..PackedFamily::NecessityWitnesses.len(n) {
            let w: BitString = PackedFamily::NecessityWitnesses.vector(n, v);
            assert!(!w.is_sorted(), "v={v}");
            assert_eq!(w.count_ones() as u64, v + 1);
            let z = n - 1 - v as usize;
            assert!(w.get(z - 1) && !w.get(z));
        }
    }

    #[test]
    fn block_fill_matches_the_scalar_reference_across_widths() {
        for n in [2usize, 7, 63, 64, 65, 96] {
            for family in families(n) {
                let reference: Vec<ChannelVec> = family.collect(n);
                let w1: Vec<ChannelVec> =
                    collect_packed::<1, _, _>(FamilySource::<ChannelVec>::new(family, n));
                let w4: Vec<ChannelVec> =
                    collect_packed::<4, _, _>(FamilySource::<ChannelVec>::new(family, n));
                assert_eq!(w1, reference, "{family} n={n} W=1");
                assert_eq!(w4, reference, "{family} n={n} W=4");
            }
        }
    }

    #[test]
    fn bitstring_and_channelvec_sources_agree_below_the_wall() {
        for n in [2usize, 9, 17] {
            for family in families(n) {
                let narrow: Vec<BitString> =
                    collect_packed::<2, _, _>(FamilySource::<BitString>::new(family, n));
                let wide: Vec<ChannelVec> =
                    collect_packed::<2, _, _>(FamilySource::<ChannelVec>::new(family, n));
                assert_eq!(narrow.len(), wide.len());
                for (a, b) in narrow.iter().zip(&wide) {
                    assert_eq!(a.to_string(), b.to_string(), "{family} n={n}");
                }
            }
        }
    }

    #[test]
    fn empty_families_stream_no_blocks() {
        let mut source = FamilySource::<ChannelVec>::new(PackedFamily::NecessityWitnesses, 1);
        assert!(source.is_empty());
        let mut block = WideBlock::<2>::zeroed(1);
        assert!(!BlockSource::next_block(&mut source, &mut block));
    }
}
