//! Pluggable lane-ops backends: how the bitwise kernels of a
//! [`WideBlock`](super::WideBlock) sweep are executed.
//!
//! Every sweep in the workspace bottoms out in three bitwise kernels over
//! `[u64; W]` lane words — the compare-exchange of one comparator, the
//! sortedness scan of a block's outputs, and the lane-difference scan of
//! the selector check.  [`LaneOps`] abstracts those kernels, and a
//! [`Backend`] selects one of three implementations at runtime:
//!
//! * [`ScalarOps`] ([`Backend::Scalar`]) — the reference: one `u64` word at
//!   a time, exactly the loops the engine shipped with.  Forced with
//!   `SORTNET_FORCE_SCALAR=1`, which is how CI pins the non-SIMD path.
//! * [`PortableOps`] ([`Backend::Portable`]) — the same kernels restructured
//!   into fixed [`LANE_CHUNK`]-word chunks with straight-line bodies, the
//!   shape LLVM's autovectorizer turns into whatever vector ISA the target
//!   baseline has (SSE2 on stock `x86_64`, NEON on aarch64).  Works on
//!   every architecture; the default where AVX2 is unavailable.
//! * `Avx2Ops` ([`Backend::Avx2`], `x86_64` only) — explicit 256-bit
//!   `core::arch` intrinsics (`_mm256_and_si256` / `_mm256_or_si256` /
//!   `_mm256_andnot_si256` / `_mm256_xor_si256` over unaligned 4-word
//!   loads), so one operation covers four lane words regardless of how the
//!   crate itself was compiled.  Selected only when
//!   `is_x86_feature_detected!("avx2")` confirms the CPU supports it.
//!
//! All three are **bit-identical** by construction — they compute the same
//! words in the same order, only the grouping of word operations differs —
//! and the differential suites (`proptest_lanes`, the fault-engine
//! differential universes) hold them to exact agreement.  Backends are
//! therefore freely mixable: a block evaluated by one backend can be forked
//! and continued by another.
//!
//! # Dispatch granularity
//!
//! [`Backend::active`] resolves the process-wide default once (environment
//! override first, then CPU detection) and is a cached read afterwards.
//! The hot entry points dispatch **per sweep loop**, not per word: e.g.
//! [`Backend::run_comparators`] matches once and then runs the whole
//! comparator range inside the selected implementation, so the AVX2 path is
//! one `target_feature` region with every intrinsic call inlined into the
//! loop.

// The AVX2 kernels are `core::arch` intrinsics over raw (unaligned) lane
// pointers, which is necessarily `unsafe`; this module confines all of it
// behind runtime feature detection (the crate is otherwise `deny(unsafe_code)`).
#![allow(unsafe_code)]

use std::sync::OnceLock;

use crate::comparator::Comparator;

/// Word granule of the chunked kernels: 4 × `u64` = 256 bits, one AVX2
/// vector (and two SSE2/NEON vectors for the autovectorized portable path).
pub const LANE_CHUNK: usize = 4;

/// The three bitwise kernels every sweep is built from, over `[u64; W]`
/// lane words.  Implementations must be bit-identical to [`ScalarOps`];
/// they may only regroup word operations.
pub trait LaneOps {
    /// Compare-exchange: `lo := lo & hi` (the minima), `hi := lo | hi` (the
    /// maxima), word by word — one comparator over `W × 64` vectors.
    fn compare_exchange<const W: usize>(lo: &mut [u64; W], hi: &mut [u64; W]);

    /// One line of the sortedness scan: `unsorted |= seen & !lane`, then
    /// `seen |= lane` (a vector is unsorted iff a 1 was seen on an earlier
    /// line where this line holds 0).
    fn sorted_scan_step<const W: usize>(
        lane: &[u64; W],
        seen: &mut [u64; W],
        unsorted: &mut [u64; W],
    );

    /// One line of the lane-difference scan: `acc |= a ^ b`.
    fn diff_accumulate<const W: usize>(a: &[u64; W], b: &[u64; W], acc: &mut [u64; W]);
}

/// The reference backend: plain one-word-at-a-time loops.
pub struct ScalarOps;

impl LaneOps for ScalarOps {
    #[inline]
    fn compare_exchange<const W: usize>(lo: &mut [u64; W], hi: &mut [u64; W]) {
        for w in 0..W {
            let (a, b) = (lo[w], hi[w]);
            lo[w] = a & b;
            hi[w] = a | b;
        }
    }

    #[inline]
    fn sorted_scan_step<const W: usize>(
        lane: &[u64; W],
        seen: &mut [u64; W],
        unsorted: &mut [u64; W],
    ) {
        for w in 0..W {
            unsorted[w] |= seen[w] & !lane[w];
            seen[w] |= lane[w];
        }
    }

    #[inline]
    fn diff_accumulate<const W: usize>(a: &[u64; W], b: &[u64; W], acc: &mut [u64; W]) {
        for w in 0..W {
            acc[w] |= a[w] ^ b[w];
        }
    }
}

/// The portable chunked backend: the scalar kernels regrouped into
/// [`LANE_CHUNK`]-word straight-line bodies that LLVM autovectorizes on any
/// target with 128-bit-or-wider vector registers.
pub struct PortableOps;

impl LaneOps for PortableOps {
    #[inline]
    fn compare_exchange<const W: usize>(lo: &mut [u64; W], hi: &mut [u64; W]) {
        let (lo_chunks, lo_rest) = lo.as_chunks_mut::<LANE_CHUNK>();
        let (hi_chunks, hi_rest) = hi.as_chunks_mut::<LANE_CHUNK>();
        for (a, b) in lo_chunks.iter_mut().zip(hi_chunks) {
            for w in 0..LANE_CHUNK {
                let (x, y) = (a[w], b[w]);
                a[w] = x & y;
                b[w] = x | y;
            }
        }
        for (x, y) in lo_rest.iter_mut().zip(hi_rest) {
            let (a, b) = (*x, *y);
            *x = a & b;
            *y = a | b;
        }
    }

    #[inline]
    fn sorted_scan_step<const W: usize>(
        lane: &[u64; W],
        seen: &mut [u64; W],
        unsorted: &mut [u64; W],
    ) {
        let (lane_chunks, lane_rest) = lane.as_chunks::<LANE_CHUNK>();
        let (seen_chunks, seen_rest) = seen.as_chunks_mut::<LANE_CHUNK>();
        let (uns_chunks, uns_rest) = unsorted.as_chunks_mut::<LANE_CHUNK>();
        for ((l, s), u) in lane_chunks.iter().zip(seen_chunks).zip(uns_chunks) {
            for w in 0..LANE_CHUNK {
                u[w] |= s[w] & !l[w];
                s[w] |= l[w];
            }
        }
        for ((l, s), u) in lane_rest.iter().zip(seen_rest).zip(uns_rest) {
            *u |= *s & !*l;
            *s |= *l;
        }
    }

    #[inline]
    fn diff_accumulate<const W: usize>(a: &[u64; W], b: &[u64; W], acc: &mut [u64; W]) {
        let (a_chunks, a_rest) = a.as_chunks::<LANE_CHUNK>();
        let (b_chunks, b_rest) = b.as_chunks::<LANE_CHUNK>();
        let (acc_chunks, acc_rest) = acc.as_chunks_mut::<LANE_CHUNK>();
        for ((x, y), z) in a_chunks.iter().zip(b_chunks).zip(acc_chunks) {
            for w in 0..LANE_CHUNK {
                z[w] |= x[w] ^ y[w];
            }
        }
        for ((x, y), z) in a_rest.iter().zip(b_rest).zip(acc_rest) {
            *z |= *x ^ *y;
        }
    }
}

/// Generic comparator-range driver: applies `comparators` in order to the
/// transposed lane array, using `O`'s compare-exchange kernel.
#[inline]
fn run_comparators_ops<const W: usize, O: LaneOps>(
    lanes: &mut [[u64; W]],
    comparators: &[Comparator],
) {
    for c in comparators {
        let (i, j) = (c.min_line(), c.max_line());
        let mut a = lanes[i];
        let mut b = lanes[j];
        O::compare_exchange(&mut a, &mut b);
        lanes[i] = a;
        lanes[j] = b;
    }
}

/// Generic sortedness-scan driver: ORs into `unsorted` a mask of the
/// vectors whose lane values are not nondecreasing down the lane array.
#[inline]
fn sorted_scan_ops<const W: usize, O: LaneOps>(lanes: &[[u64; W]], unsorted: &mut [u64; W]) {
    let mut seen = [0u64; W];
    for lane in lanes {
        O::sorted_scan_step(lane, &mut seen, unsorted);
    }
}

/// Generic lane-difference driver: ORs into `acc` a mask of the vectors on
/// which any paired lane of `a` and `b` differs.
#[inline]
fn diff_scan_ops<const W: usize, O: LaneOps>(a: &[[u64; W]], b: &[[u64; W]], acc: &mut [u64; W]) {
    for (x, y) in a.iter().zip(b) {
        O::diff_accumulate(x, y, acc);
    }
}

/// Generic fused driver: comparator range, then sortedness scan, in one
/// pass — the tail of every fault fork (run the suffix, grade the output),
/// fused so the fork pays a single dispatch.
#[inline]
fn run_scan_ops<const W: usize, O: LaneOps>(
    lanes: &mut [[u64; W]],
    comparators: &[Comparator],
    unsorted: &mut [u64; W],
) {
    run_comparators_ops::<W, O>(lanes, comparators);
    sorted_scan_ops::<W, O>(lanes, unsorted);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 backend: 256-bit `core::arch` kernels plus
    //! `#[target_feature(enable = "avx2")]` shells around the generic
    //! drivers, so the whole sweep loop compiles as one AVX2 region.
    //!
    //! Everything here has the same precondition: **the CPU supports AVX2**
    //! ([`Backend::Avx2`](super::Backend::Avx2) is only dispatched after
    //! `is_x86_feature_detected!("avx2")`).

    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    use super::{Comparator, LaneOps, LANE_CHUNK};

    /// Loads a [`LANE_CHUNK`]-word chunk as one 256-bit vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load(chunk: &[u64; LANE_CHUNK]) -> __m256i {
        // SAFETY: `chunk` is 32 readable bytes; the unaligned-load intrinsic
        // has no alignment requirement.
        unsafe { _mm256_loadu_si256(chunk.as_ptr().cast::<__m256i>()) }
    }

    /// Stores one 256-bit vector back to a [`LANE_CHUNK`]-word chunk.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn store(chunk: &mut [u64; LANE_CHUNK], v: __m256i) {
        // SAFETY: `chunk` is 32 writable bytes; the unaligned-store
        // intrinsic has no alignment requirement.
        unsafe { _mm256_storeu_si256(chunk.as_mut_ptr().cast::<__m256i>(), v) }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn compare_exchange_avx2<const W: usize>(lo: &mut [u64; W], hi: &mut [u64; W]) {
        let (lo_chunks, lo_rest) = lo.as_chunks_mut::<LANE_CHUNK>();
        let (hi_chunks, hi_rest) = hi.as_chunks_mut::<LANE_CHUNK>();
        for (a, b) in lo_chunks.iter_mut().zip(hi_chunks) {
            let (va, vb) = (load(a), load(b));
            store(a, _mm256_and_si256(va, vb));
            store(b, _mm256_or_si256(va, vb));
        }
        for (x, y) in lo_rest.iter_mut().zip(hi_rest) {
            let (a, b) = (*x, *y);
            *x = a & b;
            *y = a | b;
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn sorted_scan_step_avx2<const W: usize>(
        lane: &[u64; W],
        seen: &mut [u64; W],
        unsorted: &mut [u64; W],
    ) {
        let (lane_chunks, lane_rest) = lane.as_chunks::<LANE_CHUNK>();
        let (seen_chunks, seen_rest) = seen.as_chunks_mut::<LANE_CHUNK>();
        let (uns_chunks, uns_rest) = unsorted.as_chunks_mut::<LANE_CHUNK>();
        for ((l, s), u) in lane_chunks.iter().zip(seen_chunks).zip(uns_chunks) {
            let (vl, vs) = (load(l), load(s));
            // andnot(a, b) = !a & b, so this is `seen & !lane`.
            store(u, _mm256_or_si256(load(u), _mm256_andnot_si256(vl, vs)));
            store(s, _mm256_or_si256(vs, vl));
        }
        for ((l, s), u) in lane_rest.iter().zip(seen_rest).zip(uns_rest) {
            *u |= *s & !*l;
            *s |= *l;
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn diff_accumulate_avx2<const W: usize>(a: &[u64; W], b: &[u64; W], acc: &mut [u64; W]) {
        let (a_chunks, a_rest) = a.as_chunks::<LANE_CHUNK>();
        let (b_chunks, b_rest) = b.as_chunks::<LANE_CHUNK>();
        let (acc_chunks, acc_rest) = acc.as_chunks_mut::<LANE_CHUNK>();
        for ((x, y), z) in a_chunks.iter().zip(b_chunks).zip(acc_chunks) {
            store(
                z,
                _mm256_or_si256(load(z), _mm256_xor_si256(load(x), load(y))),
            );
        }
        for ((x, y), z) in a_rest.iter().zip(b_rest).zip(acc_rest) {
            *z |= *x ^ *y;
        }
    }

    /// The AVX2 [`LaneOps`] implementation.  Every method requires a CPU
    /// with AVX2; the enclosing module keeps the type private so the only
    /// routes to it are the detection-guarded [`Backend`](super::Backend)
    /// dispatchers and the feature-enabled shells below.
    pub(super) struct Avx2Ops;

    impl LaneOps for Avx2Ops {
        #[inline]
        fn compare_exchange<const W: usize>(lo: &mut [u64; W], hi: &mut [u64; W]) {
            debug_assert!(is_x86_feature_detected!("avx2"));
            // SAFETY: only reachable through detection-guarded dispatch.
            unsafe { compare_exchange_avx2(lo, hi) }
        }

        #[inline]
        fn sorted_scan_step<const W: usize>(
            lane: &[u64; W],
            seen: &mut [u64; W],
            unsorted: &mut [u64; W],
        ) {
            debug_assert!(is_x86_feature_detected!("avx2"));
            // SAFETY: only reachable through detection-guarded dispatch.
            unsafe { sorted_scan_step_avx2(lane, seen, unsorted) }
        }

        #[inline]
        fn diff_accumulate<const W: usize>(a: &[u64; W], b: &[u64; W], acc: &mut [u64; W]) {
            debug_assert!(is_x86_feature_detected!("avx2"));
            // SAFETY: only reachable through detection-guarded dispatch.
            unsafe { diff_accumulate_avx2(a, b, acc) }
        }
    }

    /// Whole-loop shell: the generic comparator driver instantiated with
    /// [`Avx2Ops`] inside one `target_feature` region, so the kernels
    /// inline into the comparator loop.
    #[target_feature(enable = "avx2")]
    pub(super) fn run_comparators<const W: usize>(
        lanes: &mut [[u64; W]],
        comparators: &[Comparator],
    ) {
        super::run_comparators_ops::<W, Avx2Ops>(lanes, comparators);
    }

    /// Whole-loop shell for the sortedness scan (see [`run_comparators`]).
    #[target_feature(enable = "avx2")]
    pub(super) fn sorted_scan<const W: usize>(lanes: &[[u64; W]], unsorted: &mut [u64; W]) {
        super::sorted_scan_ops::<W, Avx2Ops>(lanes, unsorted);
    }

    /// Whole-loop shell for the lane-difference scan (see
    /// [`run_comparators`]).
    #[target_feature(enable = "avx2")]
    pub(super) fn diff_scan<const W: usize>(a: &[[u64; W]], b: &[[u64; W]], acc: &mut [u64; W]) {
        super::diff_scan_ops::<W, Avx2Ops>(a, b, acc);
    }

    /// Whole-loop shell for the fused run-and-scan (see
    /// [`run_comparators`]).
    #[target_feature(enable = "avx2")]
    pub(super) fn run_scan<const W: usize>(
        lanes: &mut [[u64; W]],
        comparators: &[Comparator],
        unsorted: &mut [u64; W],
    ) {
        super::run_scan_ops::<W, Avx2Ops>(lanes, comparators, unsorted);
    }
}

/// Panics unless the running CPU supports AVX2 — the guard that makes the
/// [`Backend::Avx2`] dispatch arms sound even for a hand-constructed enum
/// value (detection caches in an atomic, so the check is a load).
#[cfg(target_arch = "x86_64")]
#[inline]
fn assert_avx2() {
    assert!(
        is_x86_feature_detected!("avx2"),
        "Backend::Avx2 dispatched on a CPU without AVX2; use Backend::detect()"
    );
}

/// Runtime selection of a [`LaneOps`] implementation.
///
/// [`Backend::detect`] picks the best backend for the running process
/// (honouring `SORTNET_FORCE_SCALAR=1`); [`Backend::active`] caches that
/// choice process-wide, and is what every sweep uses unless an explicit
/// backend is threaded in.  All backends produce bit-identical results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// [`ScalarOps`]: one word at a time (the reference, and the
    /// `SORTNET_FORCE_SCALAR=1` override target).
    Scalar,
    /// [`PortableOps`]: chunked loops shaped for autovectorization; works
    /// on every architecture.
    Portable,
    /// 256-bit `core::arch` intrinsics; `x86_64` with runtime-detected
    /// AVX2 only.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// Selects the backend for this process: [`Backend::Scalar`] when the
    /// `SORTNET_FORCE_SCALAR` environment variable is set to anything but
    /// `0`/empty, else AVX2 when the CPU has it, else the portable chunked
    /// backend.
    #[must_use]
    pub fn detect() -> Self {
        if std::env::var("SORTNET_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
            return Self::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            return Self::Avx2;
        }
        Self::Portable
    }

    /// The process-wide backend: [`Backend::detect`] resolved once and
    /// cached.
    #[must_use]
    pub fn active() -> Self {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(Self::detect)
    }

    /// Every backend the running CPU can execute, scalar first — the
    /// iteration set for differential tests and benchmark sweeps.
    #[must_use]
    pub fn runnable() -> Vec<Self> {
        #[allow(unused_mut)]
        let mut all = vec![Self::Scalar, Self::Portable];
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            all.push(Self::Avx2);
        }
        all
    }

    /// Short lowercase name for reports, bench labels and logs.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => "avx2",
        }
    }

    /// One compare-exchange on a pair of lane-word arrays (the single-op
    /// form used by fault injection; sweeps go through
    /// [`Backend::run_comparators`]).
    #[inline]
    pub fn compare_exchange<const W: usize>(self, lo: &mut [u64; W], hi: &mut [u64; W]) {
        match self {
            Self::Scalar => ScalarOps::compare_exchange(lo, hi),
            Self::Portable => PortableOps::compare_exchange(lo, hi),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                assert_avx2();
                avx2::Avx2Ops::compare_exchange(lo, hi);
            }
        }
    }

    /// Applies a comparator range to a transposed lane array — dispatches
    /// once, then runs the whole loop in the selected implementation.
    #[inline]
    pub fn run_comparators<const W: usize>(
        self,
        lanes: &mut [[u64; W]],
        comparators: &[Comparator],
    ) {
        // Fork-heavy fault sweeps issue many empty ranges (a lesion right
        // at the current cut position); skip the dispatch for those.
        if comparators.is_empty() {
            return;
        }
        match self {
            Self::Scalar => run_comparators_ops::<W, ScalarOps>(lanes, comparators),
            Self::Portable => run_comparators_ops::<W, PortableOps>(lanes, comparators),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                assert_avx2();
                // SAFETY: AVX2 support was just asserted.
                unsafe { avx2::run_comparators(lanes, comparators) }
            }
        }
    }

    /// ORs into `unsorted` the mask of vectors whose lane values are not
    /// nondecreasing down the lane array (the raw form of
    /// [`WideBlock::unsorted_masks`](super::WideBlock::unsorted_masks),
    /// before live-mask intersection).
    #[inline]
    pub fn sorted_scan<const W: usize>(self, lanes: &[[u64; W]], unsorted: &mut [u64; W]) {
        match self {
            Self::Scalar => sorted_scan_ops::<W, ScalarOps>(lanes, unsorted),
            Self::Portable => sorted_scan_ops::<W, PortableOps>(lanes, unsorted),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                assert_avx2();
                // SAFETY: AVX2 support was just asserted.
                unsafe { avx2::sorted_scan(lanes, unsorted) }
            }
        }
    }

    /// ORs into `acc` the mask of vectors on which any paired lane of `a`
    /// and `b` differs (the raw form of the selector-violation check).
    #[inline]
    pub fn diff_scan<const W: usize>(self, a: &[[u64; W]], b: &[[u64; W]], acc: &mut [u64; W]) {
        match self {
            Self::Scalar => diff_scan_ops::<W, ScalarOps>(a, b, acc),
            Self::Portable => diff_scan_ops::<W, PortableOps>(a, b, acc),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                assert_avx2();
                // SAFETY: AVX2 support was just asserted.
                unsafe { avx2::diff_scan(a, b, acc) }
            }
        }
    }

    /// Fused [`Backend::run_comparators`] + [`Backend::sorted_scan`]: one
    /// dispatch runs the comparator range and ORs the raw sortedness mask
    /// of the result into `unsorted` — the per-fork tail of the
    /// fault-simulation sweeps.
    #[inline]
    pub fn run_scan<const W: usize>(
        self,
        lanes: &mut [[u64; W]],
        comparators: &[Comparator],
        unsorted: &mut [u64; W],
    ) {
        match self {
            Self::Scalar => run_scan_ops::<W, ScalarOps>(lanes, comparators, unsorted),
            Self::Portable => run_scan_ops::<W, PortableOps>(lanes, comparators, unsorted),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                assert_avx2();
                // SAFETY: AVX2 support was just asserted.
                unsafe { avx2::run_scan(lanes, comparators, unsorted) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern<const W: usize>(seed: u64) -> [u64; W] {
        let mut out = [0u64; W];
        let mut x = seed | 1;
        for w in out.iter_mut() {
            // xorshift64 — deterministic, full-period word noise.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *w = x;
        }
        out
    }

    fn check_all_ops<const W: usize>() {
        let reference = Backend::Scalar;
        for backend in Backend::runnable() {
            for seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
                let (mut lo_a, mut hi_a) = (pattern::<W>(seed), pattern::<W>(seed ^ 0x55));
                let (mut lo_b, mut hi_b) = (lo_a, hi_a);
                reference.compare_exchange(&mut lo_a, &mut hi_a);
                backend.compare_exchange(&mut lo_b, &mut hi_b);
                assert_eq!((lo_a, hi_a), (lo_b, hi_b), "{} W={W}", backend.name());

                let lanes: Vec<[u64; W]> = (0..7).map(|i| pattern::<W>(seed ^ (i * 977))).collect();
                let (mut uns_a, mut uns_b) = ([0u64; W], [0u64; W]);
                reference.sorted_scan(&lanes, &mut uns_a);
                backend.sorted_scan(&lanes, &mut uns_b);
                assert_eq!(uns_a, uns_b, "{} W={W}", backend.name());

                let other: Vec<[u64; W]> =
                    (0..7).map(|i| pattern::<W>(seed ^ (i * 31 + 5))).collect();
                let (mut acc_a, mut acc_b) = ([0u64; W], [0u64; W]);
                reference.diff_scan(&lanes, &other, &mut acc_a);
                backend.diff_scan(&lanes, &other, &mut acc_b);
                assert_eq!(acc_a, acc_b, "{} W={W}", backend.name());
            }
        }
    }

    #[test]
    fn every_runnable_backend_matches_scalar_on_every_width() {
        check_all_ops::<1>();
        check_all_ops::<2>();
        check_all_ops::<4>();
        check_all_ops::<5>(); // odd width exercises the chunk remainders
        check_all_ops::<8>();
        check_all_ops::<16>();
    }

    #[test]
    fn runnable_backends_start_with_scalar_and_have_distinct_names() {
        let all = Backend::runnable();
        assert_eq!(all[0], Backend::Scalar);
        assert!(all.contains(&Backend::Portable));
        let names: std::collections::HashSet<&str> = all.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), all.len());
        // The active backend must be one the CPU can actually run.
        assert!(all.contains(&Backend::active()));
    }

    #[test]
    fn backends_compose_across_a_fork() {
        // A prefix evaluated by one backend and a suffix by another must
        // agree with a single-backend run: backends are freely mixable.
        let comparators: Vec<Comparator> = [(0usize, 2usize), (1, 3), (0, 1), (2, 3), (1, 2)]
            .iter()
            .map(|&(a, b)| Comparator::new(a, b))
            .collect();
        let make_lanes =
            || -> Vec<[u64; 4]> { (0..4).map(|i| pattern::<4>(i * 7919 + 1)).collect() };
        let mut whole = make_lanes();
        Backend::Scalar.run_comparators(&mut whole, &comparators);
        for backend in Backend::runnable() {
            let mut split = make_lanes();
            backend.run_comparators(&mut split, &comparators[..2]);
            Backend::Scalar.run_comparators(&mut split, &comparators[2..]);
            assert_eq!(split, whole, "{}", backend.name());
        }
    }
}
