//! Comparator networks: a fixed number of lines and a sequence of
//! comparators, exactly the model of §2 of the paper
//! (`[a₁,b₁][a₂,b₂]…[a_m,b_m]` with `1 ≤ aᵢ < bᵢ ≤ n`).

use serde::{Deserialize, Serialize};
use std::fmt;

use sortnet_combinat::{BitString, Permutation};

use crate::comparator::Comparator;

/// A comparator network over `n` lines.
///
/// Line 0 is the top line (the first character of the paper's 0/1 strings).
/// Comparators are applied in sequence order.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Network {
    lines: usize,
    comparators: Vec<Comparator>,
}

impl Network {
    /// Creates the empty network (no comparators) over `n` lines.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > u16::MAX`.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        assert!(n >= 1, "a network needs at least one line");
        assert!(n <= usize::from(u16::MAX), "too many lines");
        Self {
            lines: n,
            comparators: Vec::new(),
        }
    }

    /// Creates a network from an explicit comparator sequence.
    ///
    /// # Panics
    /// Panics if any comparator references a line ≥ `n`.
    #[must_use]
    pub fn from_comparators(n: usize, comparators: Vec<Comparator>) -> Self {
        let mut net = Self::empty(n);
        for c in comparators {
            net.push(c);
        }
        net
    }

    /// Convenience constructor from `(a, b)` index pairs (0-based,
    /// standard direction).
    ///
    /// # Panics
    /// Panics if any index is out of range or a pair is degenerate.
    #[must_use]
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        let comparators = pairs.iter().map(|&(a, b)| Comparator::new(a, b)).collect();
        Self::from_comparators(n, comparators)
    }

    /// Number of lines `n`.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The comparator sequence.
    #[must_use]
    pub fn comparators(&self) -> &[Comparator] {
        &self.comparators
    }

    /// Number of comparators (the network's *size*).
    #[must_use]
    pub fn size(&self) -> usize {
        self.comparators.len()
    }

    /// `true` when the network has no comparators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.comparators.is_empty()
    }

    /// `true` when every comparator is standard (the paper's model).
    #[must_use]
    pub fn is_standard(&self) -> bool {
        self.comparators.iter().all(Comparator::is_standard)
    }

    /// The maximum comparator height (see §3: height-k networks); `0` for an
    /// empty network.
    #[must_use]
    pub fn height(&self) -> usize {
        self.comparators
            .iter()
            .map(Comparator::height)
            .max()
            .unwrap_or(0)
    }

    /// `true` when the network is *primitive* (height-1): every comparator
    /// joins adjacent lines.
    #[must_use]
    pub fn is_primitive(&self) -> bool {
        self.height() <= 1
    }

    /// Appends a comparator.
    ///
    /// # Panics
    /// Panics if the comparator references a line ≥ `lines`.
    pub fn push(&mut self, c: Comparator) {
        assert!(
            c.bottom() < self.lines,
            "comparator {c} out of range for {} lines",
            self.lines
        );
        self.comparators.push(c);
    }

    /// Appends a standard comparator between lines `a` and `b`.
    pub fn push_pair(&mut self, a: usize, b: usize) {
        self.push(Comparator::new(a, b));
    }

    /// Appends all comparators of `other` (which must have the same number
    /// of lines).
    ///
    /// # Panics
    /// Panics if the line counts differ.
    pub fn extend(&mut self, other: &Network) {
        assert_eq!(self.lines, other.lines, "line count mismatch");
        self.comparators.extend_from_slice(&other.comparators);
    }

    /// Sequential composition: `self` followed by `other`.
    ///
    /// # Panics
    /// Panics if the line counts differ.
    #[must_use]
    pub fn then(&self, other: &Network) -> Self {
        let mut out = self.clone();
        out.extend(other);
        out
    }

    /// Embeds `inner` (a network on `k` lines) into this network by routing
    /// its line `i` onto line `line_map[i]` of `self`, appending the
    /// relabelled comparators.
    ///
    /// This is how the paper's constructions wire a smaller sorter `S(i)` or
    /// a 3-line widget onto a chosen subset of lines ("all other lines
    /// bypass" it).
    ///
    /// # Panics
    /// Panics if `line_map` has the wrong length, repeats a line, or maps
    /// outside the network.
    pub fn embed(&mut self, inner: &Network, line_map: &[usize]) {
        assert_eq!(line_map.len(), inner.lines(), "line map length mismatch");
        let mut seen = vec![false; self.lines];
        for &l in line_map {
            assert!(l < self.lines, "line map target {l} out of range");
            assert!(!seen[l], "line map repeats line {l}");
            seen[l] = true;
        }
        for c in inner.comparators() {
            self.push(c.relabel(line_map));
        }
    }

    /// Applies the network to a mutable slice of ordered values.
    ///
    /// # Panics
    /// Panics if the slice length differs from the number of lines.
    pub fn apply_slice<T: Ord>(&self, values: &mut [T]) {
        assert_eq!(values.len(), self.lines, "input length mismatch");
        for c in &self.comparators {
            c.apply_slice(values);
        }
    }

    /// Evaluates the network on a vector of ordered values, returning the
    /// output vector.
    #[must_use]
    pub fn apply_vec<T: Ord + Clone>(&self, values: &[T]) -> Vec<T> {
        let mut v = values.to_vec();
        self.apply_slice(&mut v);
        v
    }

    /// Evaluates the network on a 0/1 string (the paper's `H(σ)`).
    ///
    /// For a standard comparator on lines `(i, j)` with `i < j` the new
    /// values are `(σᵢ ∧ σⱼ, σᵢ ∨ σⱼ)`; the word-packed representation makes
    /// this a few bit operations per comparator.
    ///
    /// # Panics
    /// Panics if the string length differs from the number of lines.
    #[must_use]
    pub fn apply_bits(&self, input: &BitString) -> BitString {
        assert_eq!(input.len(), self.lines, "input length mismatch");
        let mut w = input.word();
        for c in &self.comparators {
            let i = c.min_line();
            let j = c.max_line();
            let bi = (w >> i) & 1;
            let bj = (w >> j) & 1;
            let min = bi & bj;
            let max = bi | bj;
            w = (w & !((1 << i) | (1 << j))) | (min << i) | (max << j);
        }
        BitString::from_word(w, self.lines)
    }

    /// Evaluates the network on a permutation, returning the output sequence
    /// (which is again a permutation of the same values).
    ///
    /// # Panics
    /// Panics if the permutation length differs from the number of lines.
    #[must_use]
    pub fn apply_permutation(&self, p: &Permutation) -> Permutation {
        let mut v = p.values().to_vec();
        self.apply_slice(&mut v);
        Permutation::from_values(&v).expect("a comparator network permutes its input")
    }

    /// The *flip* of the network: reverse the line order.  Standard
    /// comparators remain standard, and `flip(H)` sorts `flip(σ)` iff `H`
    /// sorts `σ` — the symmetry used by the Lemma 2.1 construction.
    #[must_use]
    pub fn flip(&self) -> Self {
        Self {
            lines: self.lines,
            comparators: self
                .comparators
                .iter()
                .map(|c| c.flip(self.lines))
                .collect(),
        }
    }

    /// The reverse of the comparator sequence (not the same as
    /// [`Network::flip`];
    /// useful for structural experiments).
    #[must_use]
    pub fn reversed_sequence(&self) -> Self {
        Self {
            lines: self.lines,
            comparators: self.comparators.iter().rev().copied().collect(),
        }
    }

    /// Returns the network with comparator `index` removed (used by the
    /// fault models and the minimality experiments).
    ///
    /// # Panics
    /// Panics if `index ≥ size`.
    #[must_use]
    pub fn without_comparator(&self, index: usize) -> Self {
        assert!(index < self.size(), "comparator index out of range");
        let mut comparators = self.comparators.clone();
        comparators.remove(index);
        Self {
            lines: self.lines,
            comparators,
        }
    }

    /// Converts the network into a **standard** network of the same size
    /// using the classical transformation (Knuth, exercise 5.3.4-16):
    /// whenever a comparator routes its maximum upward, re-orient it and
    /// exchange its two lines in the remainder of the network.
    ///
    /// If the original network sorts every input, so does the standardised
    /// one.  (The converse does not hold in general: standardising can only
    /// help.)
    #[must_use]
    pub fn standardised(&self) -> Self {
        let mut map: Vec<usize> = (0..self.lines).collect();
        let mut out = Self::empty(self.lines);
        for c in &self.comparators {
            let a = map[c.min_line()];
            let b = map[c.max_line()];
            if a < b {
                out.push_pair(a, b);
            } else {
                out.push_pair(b, a);
                for v in &mut map {
                    if *v == a {
                        *v = b;
                    } else if *v == b {
                        *v = a;
                    }
                }
            }
        }
        out
    }

    /// Partitions the comparator sequence greedily into parallel layers
    /// (no two comparators in a layer share a line, order preserved) and
    /// returns the layers.
    #[must_use]
    pub fn layers(&self) -> Vec<Vec<Comparator>> {
        let mut layers: Vec<Vec<Comparator>> = Vec::new();
        // busy_until[line] = first layer index where the line is free.
        let mut busy_until = vec![0usize; self.lines];
        for c in &self.comparators {
            let layer = busy_until[c.top()].max(busy_until[c.bottom()]);
            if layer == layers.len() {
                layers.push(Vec::new());
            }
            layers[layer].push(*c);
            busy_until[c.top()] = layer + 1;
            busy_until[c.bottom()] = layer + 1;
        }
        layers
    }

    /// The network's *depth*: number of parallel layers under the greedy
    /// (as-soon-as-possible) schedule.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers().len()
    }

    /// Compact textual form in the paper's notation, e.g. `[1,3][2,4][1,2][3,4]`.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        self.comparators.iter().map(ToString::to_string).collect()
    }

    /// Parses the compact `[a,b][c,d]…` notation (1-based lines, standard
    /// comparators only).  Returns `None` on malformed input or out-of-range
    /// lines.
    #[must_use]
    pub fn parse_compact(n: usize, s: &str) -> Option<Self> {
        let mut net = Self::empty(n);
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Some(net);
        }
        for part in trimmed.split(']') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let body = part.strip_prefix('[')?;
            let (a, b) = body.split_once(',')?;
            let a: usize = a.trim().parse().ok()?;
            let b: usize = b.trim().parse().ok()?;
            if a == 0 || b == 0 || a > n || b > n || a == b {
                return None;
            }
            net.push_pair(a - 1, b - 1);
        }
        Some(net)
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network(n={}, size={}, \"{}\")",
            self.lines,
            self.size(),
            self.to_compact_string()
        )
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_compact_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 network: `[1,3][2,4][1,2][3,4]`.
    fn fig1() -> Network {
        Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)])
    }

    #[test]
    fn fig1_processes_the_papers_example_input() {
        // The paper shows the network processing (4 1 3 2).
        let out = fig1().apply_vec(&[4, 1, 3, 2]);
        // [1,3]: (4,3) swap -> (3,1,4,2); [2,4]: (1,2) ok; [1,2]: (3,1) swap
        // -> (1,3,4,2); [3,4]: (4,2) swap -> (1,3,2,4).
        assert_eq!(out, vec![1, 3, 2, 4]);
    }

    #[test]
    fn fig1_compact_notation_matches_paper() {
        assert_eq!(fig1().to_compact_string(), "[1,3][2,4][1,2][3,4]");
    }

    #[test]
    fn parse_compact_roundtrip() {
        let net = fig1();
        let parsed = Network::parse_compact(4, &net.to_compact_string()).unwrap();
        assert_eq!(parsed, net);
        assert_eq!(Network::parse_compact(4, "").unwrap(), Network::empty(4));
        assert!(Network::parse_compact(4, "[0,2]").is_none());
        assert!(Network::parse_compact(4, "[1,5]").is_none());
        assert!(Network::parse_compact(4, "[1,1]").is_none());
        assert!(Network::parse_compact(4, "junk").is_none());
    }

    #[test]
    fn apply_bits_agrees_with_apply_slice_on_all_inputs() {
        let net = fig1();
        for s in BitString::all(4) {
            let bits_out = net.apply_bits(&s);
            let slice_out = net.apply_vec(&s.to_vec());
            assert_eq!(bits_out.to_vec(), slice_out, "input {s}");
        }
    }

    #[test]
    fn fig1_is_not_a_sorter_but_sorts_the_example_weights() {
        // (1100) is the classic failure of this half-cleaner-style network.
        let net = fig1();
        let failing: Vec<_> = BitString::all(4)
            .filter(|s| !net.apply_bits(s).is_sorted())
            .collect();
        assert!(!failing.is_empty());
    }

    #[test]
    fn standard_comparators_never_unsort_a_sorted_input() {
        let net = fig1();
        for s in BitString::all(4).filter(BitString::is_sorted) {
            assert!(net.apply_bits(&s).is_sorted());
        }
    }

    #[test]
    fn apply_permutation_preserves_multiset() {
        let net = fig1();
        for p in Permutation::all(4) {
            let out = net.apply_permutation(&p);
            let mut sorted_in = p.values().to_vec();
            let mut sorted_out = out.values().to_vec();
            sorted_in.sort_unstable();
            sorted_out.sort_unstable();
            assert_eq!(sorted_in, sorted_out);
        }
    }

    #[test]
    fn flip_symmetry_on_bitstrings() {
        // flip(H)(flip(σ)) == flip(H(σ)) for standard networks.
        let net = fig1();
        let flipped = net.flip();
        assert!(flipped.is_standard());
        for s in BitString::all(4) {
            assert_eq!(flipped.apply_bits(&s.flip()), net.apply_bits(&s).flip());
        }
    }

    #[test]
    fn layers_and_depth() {
        let net = fig1();
        let layers = net.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 2);
        assert_eq!(layers[1].len(), 2);
        assert_eq!(net.depth(), 2);
        assert_eq!(Network::empty(5).depth(), 0);
    }

    #[test]
    fn layers_respect_conflicts_and_preserve_multiset() {
        let net = Network::from_pairs(5, &[(0, 1), (1, 2), (0, 4), (2, 3), (3, 4), (0, 1)]);
        let layers = net.layers();
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, net.size());
        for layer in &layers {
            for (i, a) in layer.iter().enumerate() {
                for b in &layer[i + 1..] {
                    assert!(
                        !a.conflicts_with(b),
                        "{a} and {b} share a line in one layer"
                    );
                }
            }
        }
    }

    #[test]
    fn embed_relabels_lines() {
        // Embed a 2-line comparator onto lines (3, 1): min goes to line 3.
        let inner = Network::from_pairs(2, &[(0, 1)]);
        let mut outer = Network::empty(5);
        outer.embed(&inner, &[3, 1]);
        assert_eq!(outer.size(), 1);
        let out = outer.apply_vec(&[0, 9, 0, 2, 0]);
        // min(9,2)=2 to line 3, max=9 to line 1.
        assert_eq!(out, vec![0, 9, 0, 2, 0]);
        let out2 = outer.apply_vec(&[0, 1, 0, 2, 0]);
        assert_eq!(out2, vec![0, 2, 0, 1, 0]);
    }

    #[test]
    fn height_and_primitivity() {
        let brick = Network::from_pairs(4, &[(0, 1), (2, 3), (1, 2)]);
        assert_eq!(brick.height(), 1);
        assert!(brick.is_primitive());
        assert!(!fig1().is_primitive());
        assert_eq!(fig1().height(), 2);
    }

    #[test]
    fn without_comparator_removes_exactly_one() {
        let net = fig1();
        let smaller = net.without_comparator(2);
        assert_eq!(smaller.size(), 3);
        assert_eq!(smaller.to_compact_string(), "[1,3][2,4][3,4]");
    }

    #[test]
    fn then_concatenates() {
        let a = Network::from_pairs(3, &[(0, 1)]);
        let b = Network::from_pairs(3, &[(1, 2)]);
        let ab = a.then(&b);
        assert_eq!(ab.to_compact_string(), "[1,2][2,3]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_comparator() {
        let mut net = Network::empty(3);
        net.push(Comparator::new(1, 3));
    }
}
