//! Batcher's bitonic sorter.
//!
//! The textbook bitonic sorter alternates ascending and descending
//! sub-sorts, which requires **non-standard** comparators (max routed to the
//! upper line).  The paper explicitly excludes such networks from its model
//! ("Batcher's bitonic sorter is not a network in our sense"); we build it
//! anyway as the canonical example of a correct sorter that is *not* a
//! standard network, and to exercise the substrate's directed comparators.

use crate::comparator::Comparator;
use crate::network::Network;

/// The bitonic sorting network on `n = 2^k` lines, in its textbook
/// (alternating-direction) form.  Contains non-standard comparators for all
/// `n ≥ 4`.
///
/// # Panics
/// Panics if `n` is not a power of two.
#[must_use]
pub fn bitonic_sorter(n: usize) -> Network {
    assert!(
        n.is_power_of_two(),
        "the bitonic sorter requires n to be a power of two"
    );
    let mut net = Network::empty(n);
    bitonic_sort(&mut net, 0, n, true);
    net
}

fn bitonic_sort(net: &mut Network, lo: usize, count: usize, ascending: bool) {
    if count <= 1 {
        return;
    }
    let half = count / 2;
    bitonic_sort(net, lo, half, true);
    bitonic_sort(net, lo + half, half, false);
    bitonic_merge(net, lo, count, ascending);
}

fn bitonic_merge(net: &mut Network, lo: usize, count: usize, ascending: bool) {
    if count <= 1 {
        return;
    }
    let half = count / 2;
    for i in lo..lo + half {
        if ascending {
            net.push(Comparator::directed(i, i + half));
        } else {
            net.push(Comparator::directed(i + half, i));
        }
    }
    bitonic_merge(net, lo, half, ascending);
    bitonic_merge(net, lo + half, half, ascending);
}

/// The *standardised* bitonic sorter: the bitonic sorter passed through the
/// classical standardisation transformation ([`Network::standardised`]),
/// which re-orients reversed comparators while exchanging lines downstream.
/// The result is a standard network of the same size that still sorts, so
/// the paper's theory applies to it.
#[must_use]
pub fn bitonic_sorter_standardised(n: usize) -> Network {
    bitonic_sorter(n).standardised()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_sorter;

    #[test]
    fn bitonic_sorter_sorts_powers_of_two() {
        for k in 0..=4usize {
            let n = 1 << k;
            assert!(is_sorter(&bitonic_sorter(n)), "n = {n}");
        }
    }

    #[test]
    fn bitonic_sorter_is_nonstandard_for_n_at_least_4() {
        assert!(bitonic_sorter(2).is_standard());
        for n in [4usize, 8, 16] {
            assert!(!bitonic_sorter(n).is_standard(), "n = {n}");
        }
    }

    #[test]
    fn standardised_bitonic_still_sorts_and_is_standard() {
        for n in [2usize, 4, 8, 16] {
            let net = bitonic_sorter_standardised(n);
            assert!(net.is_standard());
            assert!(is_sorter(&net), "n = {n}");
        }
    }

    #[test]
    fn bitonic_size_is_n_log2_squared_over_4() {
        // size = n * k * (k + 1) / 4 for n = 2^k.
        assert_eq!(bitonic_sorter(8).size(), 8 * 3 * 4 / 4);
        assert_eq!(bitonic_sorter(16).size(), 16 * 4 * 5 / 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = bitonic_sorter(6);
    }
}
