//! Reference data on optimal sorting networks for small `n`.
//!
//! The paper's model is the one in which the famous optimal-size and
//! optimal-depth questions are posed (Knuth §5.3.4).  This module records
//! the known optimal comparator counts and depths for small `n` — useful as
//! a baseline when the experiments report sizes of constructed networks —
//! together with explicit optimal networks for the first few `n`, which
//! double as additional fixtures for the test-set machinery.
//!
//! Sources: Knuth Vol. 3 (sizes up to n = 8 proved optimal there), and the
//! later exhaustive results for n = 9, 10 (25 and 29 comparators) and the
//! optimal depths up to n = 16.  Only values that are *proved* optimal are
//! listed; `None` marks anything beyond that.

use crate::network::Network;

/// Proved-optimal comparator counts for sorting networks on `n = 1..=10`
/// lines, indexed by `n − 1`.
pub const OPTIMAL_SIZE: [usize; 10] = [0, 1, 3, 5, 9, 12, 16, 19, 25, 29];

/// Proved-optimal depths for sorting networks on `n = 1..=10` lines,
/// indexed by `n − 1`.
pub const OPTIMAL_DEPTH: [usize; 10] = [0, 1, 3, 3, 5, 5, 6, 6, 7, 7];

/// The proved-optimal number of comparators of an `n`-line sorter, when
/// known (`n ≤ 10`).
#[must_use]
pub fn optimal_size(n: usize) -> Option<usize> {
    OPTIMAL_SIZE.get(n.checked_sub(1)?).copied()
}

/// The proved-optimal depth of an `n`-line sorter, when known (`n ≤ 10`).
#[must_use]
pub fn optimal_depth(n: usize) -> Option<usize> {
    OPTIMAL_DEPTH.get(n.checked_sub(1)?).copied()
}

/// An explicit optimal-size sorting network for `n ≤ 4` (1-, 3- and 5-
/// comparator networks for n = 2, 3, 4).  Larger optimal networks exist but
/// are not reproduced here; Batcher's constructions in
/// [`crate::builders::batcher`] are used wherever an explicit sorter is
/// required.
#[must_use]
pub fn optimal_sorter(n: usize) -> Option<Network> {
    let net = match n {
        1 => Network::empty(1),
        2 => Network::from_pairs(2, &[(0, 1)]),
        3 => Network::from_pairs(3, &[(0, 1), (1, 2), (0, 1)]),
        4 => Network::from_pairs(4, &[(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)]),
        _ => return None,
    };
    Some(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::batcher::odd_even_merge_sort;
    use crate::properties::is_sorter;

    #[test]
    fn explicit_optimal_sorters_sort_and_meet_the_recorded_size() {
        for n in 1..=4usize {
            let net = optimal_sorter(n).unwrap();
            assert!(is_sorter(&net), "n = {n}");
            assert_eq!(Some(net.size()), optimal_size(n));
        }
        assert!(optimal_sorter(5).is_none());
    }

    #[test]
    fn batcher_meets_the_optimum_up_to_8_and_never_beats_it() {
        for n in 1..=10usize {
            let batcher = odd_even_merge_sort(n);
            let optimum = optimal_size(n).unwrap();
            assert!(
                batcher.size() >= optimum,
                "Batcher beats a proved optimum at n = {n}"
            );
            if n <= 8 {
                // Batcher's merge exchange is optimal for n ≤ 8.
                assert_eq!(batcher.size(), optimum, "n = {n}");
            }
        }
    }

    #[test]
    fn batcher_depth_respects_the_optimal_depth_table() {
        for n in 1..=10usize {
            assert!(odd_even_merge_sort(n).depth() >= optimal_depth(n).unwrap());
        }
    }

    #[test]
    fn tables_are_monotone() {
        for w in OPTIMAL_SIZE.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for w in OPTIMAL_DEPTH.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(optimal_size(0), None);
        assert_eq!(optimal_size(11), None);
    }
}
