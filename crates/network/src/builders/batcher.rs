//! Batcher's constructions: merge-exchange sorting networks, recursive
//! odd–even merge sort, and stand-alone odd–even merging networks.
//!
//! The Lemma 2.1 figures use `S(i)`, "an i-input sorting network such as an
//! odd-even merge sorter \[2\]"; [`odd_even_merge_sort`] provides exactly
//! that for every `i`.  [`odd_even_merger`] builds the `(p, q)`-merging
//! networks evaluated by Theorem 2.5.

use crate::network::Network;

/// Batcher's **merge-exchange** sorting network for any number of lines
/// (Knuth, Vol. 3, Algorithm 5.2.2 M).  Size `Θ(n log² n)`, standard
/// comparators only, valid for every `n ≥ 1`.
#[must_use]
pub fn odd_even_merge_sort(n: usize) -> Network {
    let mut net = Network::empty(n.max(1));
    if n < 2 {
        return net;
    }
    let t = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut p = 1usize << (t - 1);
    while p > 0 {
        let mut q = 1usize << (t - 1);
        let mut r = 0usize;
        let mut d = p;
        loop {
            for i in 0..n.saturating_sub(d) {
                if (i & p) == r {
                    net.push_pair(i, i + d);
                }
            }
            if q == p {
                break;
            }
            d = q - p;
            q /= 2;
            r = p;
        }
        p /= 2;
    }
    net
}

/// Recursive odd–even **merge sort**: sort the top and bottom halves
/// recursively, then merge them with [`append_odd_even_merge`].  Standard
/// comparators only, valid for every `n`.
#[must_use]
pub fn odd_even_merge_sort_recursive(n: usize) -> Network {
    let mut net = Network::empty(n.max(1));
    let lines: Vec<usize> = (0..n).collect();
    sort_lines(&mut net, &lines);
    net
}

fn sort_lines(net: &mut Network, lines: &[usize]) {
    if lines.len() <= 1 {
        return;
    }
    let mid = lines.len() / 2;
    sort_lines(net, &lines[..mid]);
    sort_lines(net, &lines[mid..]);
    append_odd_even_merge(net, &lines[..mid], &lines[mid..]);
}

/// Appends Batcher's odd–even merge of two sorted runs living on the line
/// lists `a` and `b` (each list already sorted top-to-bottom) to `net`.
/// After the appended comparators run, reading `a` then `b` gives the merged
/// (sorted) sequence.  Works for arbitrary, possibly different, run lengths.
pub fn append_odd_even_merge(net: &mut Network, a: &[usize], b: &[usize]) {
    let (p, q) = (a.len(), b.len());
    if p == 0 || q == 0 {
        return;
    }
    if p == 1 && q == 1 {
        net.push_pair(a[0], b[0]);
        return;
    }
    let a_even: Vec<usize> = a.iter().step_by(2).copied().collect();
    let a_odd: Vec<usize> = a.iter().skip(1).step_by(2).copied().collect();
    let b_even: Vec<usize> = b.iter().step_by(2).copied().collect();
    let b_odd: Vec<usize> = b.iter().skip(1).step_by(2).copied().collect();

    // The merge operates on the parity classes of the *combined* sequence
    // C = a ++ b.  When |a| is even, b's positions keep their parity; when
    // |a| is odd they flip.
    let combined: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
    if p % 2 == 0 {
        append_odd_even_merge(net, &a_even, &b_even);
        append_odd_even_merge(net, &a_odd, &b_odd);
        // Clean-up: compare C[2i+1] with C[2i+2].
        let mut i = 1;
        while i + 1 < combined.len() {
            net.push_pair(combined[i], combined[i + 1]);
            i += 2;
        }
    } else {
        append_odd_even_merge(net, &a_even, &b_odd);
        append_odd_even_merge(net, &a_odd, &b_even);
        // Clean-up: compare C[2i] with C[2i+1].
        let mut i = 0;
        while i + 1 < combined.len() {
            net.push_pair(combined[i], combined[i + 1]);
            i += 2;
        }
    }
}

/// A stand-alone `(p, q)`-merging network on `p + q` lines: assuming lines
/// `0..p` and lines `p..p+q` each carry a sorted sequence, the output is the
/// fully sorted sequence.  Standard comparators only.
#[must_use]
pub fn odd_even_merger(p: usize, q: usize) -> Network {
    let n = (p + q).max(1);
    let mut net = Network::empty(n);
    let a: Vec<usize> = (0..p).collect();
    let b: Vec<usize> = (p..p + q).collect();
    append_odd_even_merge(&mut net, &a, &b);
    net
}

/// The `(m, m)`-merging network used by the Theorem 2.5 experiments.
///
/// # Panics
/// Panics if `n` is odd.
#[must_use]
pub fn half_half_merger(n: usize) -> Network {
    assert!(n.is_multiple_of(2), "(n/2, n/2)-merging needs even n");
    odd_even_merger(n / 2, n / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{is_merger, is_sorter};

    #[test]
    fn merge_exchange_is_a_sorter_for_all_small_n() {
        for n in 1..=16 {
            let net = odd_even_merge_sort(n);
            assert!(net.is_standard());
            assert!(is_sorter(&net), "merge exchange failed for n = {n}");
        }
    }

    #[test]
    fn recursive_merge_sort_is_a_sorter_for_all_small_n() {
        for n in 1..=16 {
            let net = odd_even_merge_sort_recursive(n);
            assert!(net.is_standard());
            assert!(
                is_sorter(&net),
                "recursive odd-even merge sort failed for n = {n}"
            );
        }
    }

    #[test]
    fn known_sizes_for_powers_of_two() {
        // Batcher's size for n = 2^k: (k^2 - k + 4) * 2^(k-2) - 1.
        assert_eq!(odd_even_merge_sort(2).size(), 1);
        assert_eq!(odd_even_merge_sort(4).size(), 5);
        assert_eq!(odd_even_merge_sort(8).size(), 19);
        assert_eq!(odd_even_merge_sort(16).size(), 63);
    }

    #[test]
    fn mergers_merge_for_all_half_sizes() {
        for m in 1..=8 {
            let net = half_half_merger(2 * m);
            assert!(net.is_standard());
            assert!(is_merger(&net), "odd-even merger failed for m = {m}");
        }
    }

    #[test]
    fn asymmetric_mergers_are_correct() {
        use sortnet_combinat::BitString;
        for p in 0..=5usize {
            for q in 0..=5usize {
                let net = odd_even_merger(p, q);
                // Exhaustively check all pairs of sorted halves.
                for zp in 0..=p {
                    for zq in 0..=q {
                        let input = BitString::sorted_with(zp, p - zp)
                            .concat(&BitString::sorted_with(zq, q - zq));
                        if input.is_empty() {
                            continue;
                        }
                        assert!(
                            net.apply_bits(&input).is_sorted(),
                            "merger ({p},{q}) failed on {input}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn merger_is_not_a_sorter_for_n_at_least_4() {
        for m in 2..=5 {
            let net = half_half_merger(2 * m);
            assert!(
                !is_sorter(&net),
                "a merger should not sort arbitrary inputs (m={m})"
            );
        }
    }

    #[test]
    fn merger_size_is_subquadratic_in_practice() {
        // Batcher's (m, m) merge uses m*log2(m)+... comparators; just pin the
        // small values to catch accidental regressions.
        assert_eq!(half_half_merger(2).size(), 1);
        assert_eq!(half_half_merger(4).size(), 3);
        assert_eq!(half_half_merger(8).size(), 9);
    }
}
