//! Classic comparator-network constructions.
//!
//! These are the substrates the paper leans on: Batcher's odd–even merge
//! sorters (`S(i)` in the Lemma 2.1 figures), odd–even merging networks
//! (Theorem 2.5), selection networks (Theorem 2.4), the primitive
//! (height-1) networks of §3, and — for contrast — the bitonic sorter,
//! which the paper explicitly excludes because it uses non-standard
//! comparators.

pub mod batcher;
pub mod bitonic;
pub mod bubble;
pub mod optimal_small;
pub mod selection;
pub mod transposition;
