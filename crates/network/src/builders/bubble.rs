//! Quadratic sorting networks: bubble sort and insertion sort.
//!
//! Both use only adjacent (height-1) comparators, i.e. they are *primitive*
//! networks in the sense of §3 of the paper, and both have exactly
//! `n(n−1)/2` comparators — the optimum for primitive sorters
//! (de Bruijn \[4\]).

use crate::network::Network;

/// The bubble-sort network: pass `n−1` bubbles the maximum to the bottom,
/// pass `n−2` the next maximum, and so on.
#[must_use]
pub fn bubble_sort_network(n: usize) -> Network {
    let mut net = Network::empty(n.max(1));
    if n < 2 {
        return net;
    }
    for pass in 0..n - 1 {
        for i in 0..n - 1 - pass {
            net.push_pair(i, i + 1);
        }
    }
    net
}

/// The insertion-sort network: element `i` is inserted into the sorted
/// prefix by a chain of adjacent comparators running upward.
#[must_use]
pub fn insertion_sort_network(n: usize) -> Network {
    let mut net = Network::empty(n.max(1));
    if n < 2 {
        return net;
    }
    for i in 1..n {
        for j in (1..=i).rev() {
            net.push_pair(j - 1, j);
        }
    }
    net
}

/// A single upward "bubble" chain `[m−1, m], [m−2, m−1], …, [lo+1, lo+2],
/// [lo, lo+1]` on lines `lo..=m`: moves the minimum of the range to line
/// `lo`, and — crucially for the Lemma 2.1 reproduction — sorts any input
/// of the shape `0^a 1^b 0` restricted to that range.
#[must_use]
pub fn bubble_up_chain(n: usize, lo: usize, hi: usize) -> Network {
    assert!(
        lo <= hi && hi < n,
        "invalid chain range {lo}..={hi} on {n} lines"
    );
    let mut net = Network::empty(n);
    let mut i = hi;
    while i > lo {
        net.push_pair(i - 1, i);
        i -= 1;
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_sorter;
    use sortnet_combinat::BitString;

    #[test]
    fn bubble_and_insertion_sort_are_sorters() {
        for n in 1..=10 {
            assert!(is_sorter(&bubble_sort_network(n)), "bubble n={n}");
            assert!(is_sorter(&insertion_sort_network(n)), "insertion n={n}");
        }
    }

    #[test]
    fn both_are_primitive_with_triangular_size() {
        for n in 2..=10 {
            let b = bubble_sort_network(n);
            let i = insertion_sort_network(n);
            assert!(b.is_primitive());
            assert!(i.is_primitive());
            assert_eq!(b.size(), n * (n - 1) / 2);
            assert_eq!(i.size(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn dropping_any_comparator_breaks_the_bubble_sorter() {
        // The primitive sorter of triangular size is exactly minimal.
        let n = 6;
        let net = bubble_sort_network(n);
        for idx in 0..net.size() {
            assert!(
                !is_sorter(&net.without_comparator(idx)),
                "comparator {idx} is redundant"
            );
        }
    }

    #[test]
    fn bubble_up_chain_sorts_trailing_zero_patterns() {
        // The Lemma 2.1 unified construction relies on this exact property:
        // the chain sorts every 0^a 1^b 0 pattern and every already-sorted
        // pattern on its range.
        for n in 2..=9usize {
            let chain = bubble_up_chain(n, 0, n - 1);
            for a in 0..n {
                let b = n - 1 - a;
                let input = BitString::sorted_with(a, b).concat(&BitString::zeros(1));
                assert!(chain.apply_bits(&input).is_sorted(), "failed on {input}");
            }
            for s in BitString::all(n).filter(BitString::is_sorted) {
                assert!(chain.apply_bits(&s).is_sorted());
            }
        }
    }

    #[test]
    fn bubble_up_chain_moves_minimum_to_top() {
        let chain = bubble_up_chain(6, 0, 5);
        let out = chain.apply_vec(&[9, 4, 7, 1, 8, 5]);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn partial_chain_only_touches_its_range() {
        let chain = bubble_up_chain(8, 2, 5);
        for c in chain.comparators() {
            assert!(c.top() >= 2 && c.bottom() <= 5);
        }
        assert_eq!(chain.size(), 3);
    }
}
