//! Selection networks: networks whose first `k` outputs carry the `k`
//! smallest inputs (the paper's `(k, n)`-selectors, Theorem 2.4).
//!
//! The constructions here derive selectors from sorting networks by *output
//! pruning*: comparators that cannot influence the first `k` output lines
//! are removed.  The pruned network computes exactly the same values on
//! those lines, so pruning a sorter yields a `(k, n)`-selector — usually a
//! much smaller one.

use crate::builders::batcher::odd_even_merge_sort;
use crate::network::Network;

/// Removes every comparator of `network` that cannot influence output lines
/// `0..k`.  The remaining network produces identical values on those lines
/// for every input.
///
/// # Panics
/// Panics if `k > n`.
#[must_use]
pub fn prune_to_outputs(network: &Network, k: usize) -> Network {
    let n = network.lines();
    assert!(k <= n, "k = {k} exceeds n = {n}");
    let mut relevant = vec![false; n];
    for line in relevant.iter_mut().take(k) {
        *line = true;
    }
    let mut keep = vec![false; network.size()];
    for (idx, c) in network.comparators().iter().enumerate().rev() {
        let (a, b) = (c.min_line(), c.max_line());
        if relevant[a] || relevant[b] {
            keep[idx] = true;
            relevant[a] = true;
            relevant[b] = true;
        }
    }
    let comparators = network
        .comparators()
        .iter()
        .zip(keep.iter())
        .filter_map(|(c, &k)| k.then_some(*c))
        .collect();
    Network::from_comparators(n, comparators)
}

/// A `(k, n)`-selection network obtained by pruning Batcher's merge-exchange
/// sorter down to its first `k` outputs.
#[must_use]
pub fn pruned_selector(n: usize, k: usize) -> Network {
    prune_to_outputs(&odd_even_merge_sort(n), k)
}

/// A naive `(k, n)`-selection network built from `k` successive
/// minimum-extraction chains: chain `r` bubbles the minimum of lines
/// `r..n` up to line `r`.  Quadratic but straightforwardly correct —
/// useful as an independent baseline in tests and benches.
#[must_use]
pub fn chain_selector(n: usize, k: usize) -> Network {
    assert!(k <= n, "k = {k} exceeds n = {n}");
    let mut net = Network::empty(n.max(1));
    for r in 0..k.min(n.saturating_sub(1)) {
        let mut i = n - 1;
        while i > r {
            net.push_pair(i - 1, i);
            i -= 1;
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{is_selector, is_sorter};
    use sortnet_combinat::BitString;

    #[test]
    fn pruning_preserves_the_tracked_outputs_exactly() {
        for n in 2..=9usize {
            let sorter = odd_even_merge_sort(n);
            for k in 0..=n {
                let pruned = prune_to_outputs(&sorter, k);
                for input in BitString::all(n) {
                    let full = sorter.apply_bits(&input);
                    let part = pruned.apply_bits(&input);
                    for i in 0..k {
                        assert_eq!(
                            full.get(i),
                            part.get(i),
                            "n={n} k={k} input={input} line={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_selectors_select() {
        for n in 2..=10usize {
            for k in [1, 2, n / 2, n] {
                let sel = pruned_selector(n, k);
                assert!(is_selector(&sel, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn chain_selectors_select_but_do_not_sort() {
        for n in 3..=8usize {
            for k in 1..n {
                let sel = chain_selector(n, k);
                assert!(is_selector(&sel, k), "n={n} k={k}");
                if k < n - 1 {
                    assert!(
                        !is_sorter(&sel),
                        "chain selector n={n} k={k} should not be a sorter"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_to_all_outputs_keeps_the_full_sorter() {
        for n in 2..=8usize {
            let sorter = odd_even_merge_sort(n);
            let pruned = prune_to_outputs(&sorter, n);
            assert_eq!(pruned.size(), sorter.size());
            assert!(is_sorter(&pruned));
        }
    }

    #[test]
    fn pruning_to_few_outputs_shrinks_the_network() {
        let n = 16;
        let sorter = odd_even_merge_sort(n);
        let sel1 = prune_to_outputs(&sorter, 1);
        let sel2 = prune_to_outputs(&sorter, 2);
        assert!(sel1.size() < sel2.size() || sel1.size() == sel2.size());
        assert!(sel2.size() < sorter.size());
        // Selecting the single minimum of 16 needs at least 15 comparators.
        assert!(sel1.size() >= 15);
    }

    #[test]
    fn pruning_to_zero_outputs_gives_the_empty_network() {
        let sorter = odd_even_merge_sort(8);
        assert_eq!(prune_to_outputs(&sorter, 0).size(), 0);
    }

    #[test]
    fn chain_selector_sizes() {
        // Chain r has n-1-r comparators.
        assert_eq!(chain_selector(6, 1).size(), 5);
        assert_eq!(chain_selector(6, 2).size(), 5 + 4);
        assert_eq!(chain_selector(6, 6).size(), 15);
    }
}
