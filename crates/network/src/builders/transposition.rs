//! Odd–even transposition ("brick-wall") networks — the canonical
//! primitive (height-1) networks of §3.

use crate::network::Network;

/// `rounds` rounds of odd–even transposition on `n` lines: round `r`
/// compares `(i, i+1)` for all `i ≡ r (mod 2)`.  With `rounds = n` the
/// network sorts (the classical odd–even transposition sort); with fewer
/// rounds it generally does not.
#[must_use]
pub fn odd_even_transposition(n: usize, rounds: usize) -> Network {
    let mut net = Network::empty(n.max(1));
    if n < 2 {
        return net;
    }
    for r in 0..rounds {
        let start = r % 2;
        let mut i = start;
        while i + 1 < n {
            net.push_pair(i, i + 1);
            i += 2;
        }
    }
    net
}

/// The full odd–even transposition sorter (`n` rounds).
#[must_use]
pub fn odd_even_transposition_sort(n: usize) -> Network {
    odd_even_transposition(n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_sorter;
    use sortnet_combinat::Permutation;

    #[test]
    fn full_transposition_network_sorts() {
        for n in 1..=10 {
            let net = odd_even_transposition_sort(n);
            assert!(net.is_primitive());
            assert!(is_sorter(&net), "n = {n}");
        }
    }

    #[test]
    fn too_few_rounds_do_not_sort() {
        for n in 4..=9 {
            let net = odd_even_transposition(n, n - 2);
            assert!(!is_sorter(&net), "n = {n} with n-2 rounds should not sort");
        }
    }

    #[test]
    fn size_is_rounds_times_half_n() {
        let net = odd_even_transposition(8, 8);
        // Even rounds have 4 comparators, odd rounds 3 on 8 lines.
        assert_eq!(net.size(), 4 * 4 + 4 * 3);
        assert_eq!(net.depth(), 8);
    }

    #[test]
    fn primitive_sorter_failure_is_witnessed_by_reverse_permutation() {
        // de Bruijn's criterion (§3): a primitive network sorts iff it sorts
        // the reverse permutation.  Check both directions on brick networks.
        for n in 2..=8usize {
            for rounds in 0..=n {
                let net = odd_even_transposition(n, rounds);
                let sorts_reverse = net
                    .apply_permutation(&Permutation::reverse(n))
                    .is_identity();
                assert_eq!(sorts_reverse, is_sorter(&net), "n={n} rounds={rounds}");
            }
        }
    }
}
