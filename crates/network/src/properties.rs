//! Exhaustive decision procedures for the three properties studied by the
//! paper: *sorter*, *(k, n)-selector* and *(n/2, n/2)-merging network*.
//!
//! These are the "ground truth" oracles the test-set machinery in
//! `sortnet-testsets` is benchmarked against: they sweep all `2^n` binary
//! inputs (justified by the zero–one principle and its refinements), so they
//! are exponential but exact.

use rayon::prelude::*;

use sortnet_combinat::{BitString, Permutation};

use crate::bitparallel::{self, ParallelismHint};
use crate::lanes::{self, Backend, WideBlock, DEFAULT_WIDTH};
use crate::network::Network;

/// `true` iff the network sorts every input (checked over all `2^n` binary
/// vectors; the zero–one principle extends the conclusion to arbitrary
/// inputs).
#[must_use]
pub fn is_sorter(network: &Network) -> bool {
    bitparallel::is_sorter_exhaustive(network, ParallelismHint::Rayon)
}

/// Exhaustively checks the sorter property by enumerating all `n!`
/// permutations instead of 0/1 vectors.  Only feasible for small `n`; used
/// in tests to validate the zero–one principle itself.
///
/// # Panics
/// Panics if `n > 10`.
#[must_use]
pub fn is_sorter_by_permutations(network: &Network) -> bool {
    let n = network.lines();
    assert!(n <= 10, "n! enumeration refused for n = {n}");
    Permutation::all(n).all(|p| network.apply_permutation(&p).is_identity())
}

/// `true` iff the first `k` outputs of the network always carry the `k`
/// smallest input values (the paper's `(k, n)`-selector), checked over all
/// `2^n` binary inputs.
///
/// For a 0/1 input `σ`, output `i` (0-based, `i < k`) must equal the `i`-th
/// smallest bit of `σ`, i.e. outputs `0..|σ|₀` must be 0 and outputs
/// `|σ|₀..k` must be 1.  The sweep runs 64 vectors per pass through
/// [`bitparallel::find_selector_violation`].
///
/// # Panics
/// Panics if `k > n` or `n ≥ 32`.
#[must_use]
pub fn is_selector(network: &Network, k: usize) -> bool {
    bitparallel::is_selector_exhaustive(network, k, ParallelismHint::Rayon)
}

/// `true` iff `output` carries the correct `k` smallest bits of `input` on
/// its first `k` lines.
#[must_use]
pub fn selects_correctly(input: &BitString, output: &BitString, k: usize) -> bool {
    let zeros = input.count_zeros();
    (0..k).all(|i| output.get(i) == (i >= zeros))
}

/// `true` iff the network merges every pair of sorted halves (the paper's
/// `(n/2, n/2)`-merging network), checked over all pairs of sorted binary
/// half-inputs, streamed through transposed blocks
/// ([`BitString::all_half_sorted`] → [`lanes::IterSource`]).
///
/// # Panics
/// Panics if `n` is odd.
#[must_use]
pub fn is_merger(network: &Network) -> bool {
    find_merger_violation(network).is_none()
}

/// The first (in `(z₁, z₂)` order) pair of sorted halves the network fails
/// to merge, or `None` for a valid `(n/2, n/2)`-merging network.
///
/// # Panics
/// Panics if `n` is odd.
#[must_use]
pub fn find_merger_violation(network: &Network) -> Option<BitString> {
    find_merger_violation_on(network, Backend::active())
}

/// [`find_merger_violation`] pinned to an explicit lane-ops [`Backend`]
/// (the plain form uses the runtime-detected one).
///
/// # Panics
/// Panics if `n` is odd.
#[must_use]
pub fn find_merger_violation_on(network: &Network, backend: Backend) -> Option<BitString> {
    let n = network.lines();
    assert!(
        n.is_multiple_of(2),
        "merging networks need an even number of lines"
    );
    lanes::sweep_network_with::<DEFAULT_WIDTH, _>(
        lanes::IterSource::new(n, BitString::all_half_sorted(n)),
        network,
        backend,
    )
    .witness
}

/// Exhaustive merger check over *permutation* merge inputs: every
/// permutation whose two halves are each increasing must be sorted.  Used in
/// tests to validate the 0/1 merger oracle.
///
/// # Panics
/// Panics if `n` is odd or `n > 16`.
#[must_use]
pub fn is_merger_by_permutations(network: &Network) -> bool {
    let n = network.lines();
    assert!(
        n.is_multiple_of(2),
        "merging networks need an even number of lines"
    );
    assert!(n <= 16, "C(n, n/2) enumeration refused for n = {n}");
    let half = n / 2;
    // Choose which values go to the first half; each half is then sorted.
    sortnet_combinat::subsets::Subset::all_with_len(n, half).all(|s| {
        let mut first: Vec<u8> = s.elements().iter().map(|&e| e as u8).collect();
        let mut second: Vec<u8> = s.complement().elements().iter().map(|&e| e as u8).collect();
        first.sort_unstable();
        second.sort_unstable();
        first.extend_from_slice(&second);
        let p = Permutation::from_values(&first).expect("valid permutation");
        network.apply_permutation(&p).is_identity()
    })
}

/// The multiset of inputs (as packed words) that the network fails to sort.
/// Exhaustive (swept in `W × 64`-vector blocks); used by the experiments on
/// small networks.
///
/// # Panics
/// Panics if `n ≥ 26`.
#[must_use]
pub fn failure_set(network: &Network) -> Vec<BitString> {
    let n = network.lines();
    assert!(n < 26, "exhaustive 2^{n} sweep refused");
    let block_count = bitparallel::sweep_block_count_wide::<DEFAULT_WIDTH>(n);
    // Resolve the lane backend once; the per-block closures inherit it.
    let backend = Backend::active();
    (0..block_count)
        .into_par_iter()
        .flat_map_iter(move |b| {
            let (start, count) = bitparallel::sweep_block_range_wide::<DEFAULT_WIDTH>(n, b);
            let mut block = WideBlock::<DEFAULT_WIDTH>::from_range(n, start, count);
            block.run_with(backend, network);
            let mask = block.unsorted_masks_with(backend);
            (0..count)
                .filter(move |j| (mask[(j / 64) as usize] >> (j % 64)) & 1 == 1)
                .map(move |j| BitString::from_word(start + u64::from(j), n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::batcher::odd_even_merge_sort;
    use crate::builders::bubble::bubble_sort_network;

    #[test]
    fn batcher_is_a_sorter_and_fig1_is_not() {
        for n in 1..=9 {
            assert!(is_sorter(&odd_even_merge_sort(n)), "n = {n}");
        }
        let fig1 = Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)]);
        assert!(!is_sorter(&fig1));
    }

    #[test]
    fn zero_one_principle_agrees_with_permutation_enumeration() {
        for n in 2..=6 {
            let sorter = odd_even_merge_sort(n);
            assert_eq!(is_sorter(&sorter), is_sorter_by_permutations(&sorter));
            let bubble = bubble_sort_network(n);
            let truncated = Network::from_comparators(
                n,
                bubble.comparators()[..bubble.size().saturating_sub(1)].to_vec(),
            );
            assert_eq!(is_sorter(&truncated), is_sorter_by_permutations(&truncated));
        }
    }

    #[test]
    fn every_sorter_is_a_selector_and_a_merger() {
        for n in [4usize, 6, 8] {
            let sorter = odd_even_merge_sort(n);
            for k in 0..=n {
                assert!(is_selector(&sorter, k), "n = {n}, k = {k}");
            }
            assert!(is_merger(&sorter));
        }
    }

    #[test]
    fn empty_network_is_a_trivial_selector_only_for_k_zero() {
        let empty = Network::empty(5);
        assert!(is_selector(&empty, 0));
        assert!(!is_selector(&empty, 1));
        assert!(!is_sorter(&empty));
    }

    #[test]
    fn merger_oracle_agrees_with_permutation_merger_oracle() {
        for n in [2usize, 4, 6] {
            let sorter = odd_even_merge_sort(n);
            assert_eq!(is_merger(&sorter), is_merger_by_permutations(&sorter));
            let empty = Network::empty(n);
            assert_eq!(is_merger(&empty), is_merger_by_permutations(&empty));
            let fig1like = Network::from_pairs(n, &[(0, n - 1)]);
            assert_eq!(is_merger(&fig1like), is_merger_by_permutations(&fig1like));
        }
    }

    #[test]
    fn failure_set_of_empty_network_is_all_unsorted_strings() {
        let empty = Network::empty(5);
        let failures = failure_set(&empty);
        assert_eq!(failures.len() as u64, (1 << 5) - 5 - 1);
        for f in failures {
            assert!(!f.is_sorted());
        }
    }

    #[test]
    fn bitparallel_selector_sweep_matches_the_scalar_definition() {
        use crate::random::NetworkSampler;
        let mut sampler = NetworkSampler::new(99);
        for _ in 0..20 {
            let net = sampler.network(6, 7);
            for k in 0..=6 {
                let scalar =
                    BitString::all(6).all(|s| selects_correctly(&s, &net.apply_bits(&s), k));
                assert_eq!(is_selector(&net, k), scalar, "net {net} k={k}");
            }
        }
    }

    #[test]
    fn selects_correctly_examples() {
        let input = BitString::parse("0110").unwrap();
        // sorted(input) = 0011: first two outputs must be 0,0.
        assert!(selects_correctly(
            &input,
            &BitString::parse("0011").unwrap(),
            4
        ));
        assert!(selects_correctly(
            &input,
            &BitString::parse("0010").unwrap(),
            2
        ));
        assert!(!selects_correctly(
            &input,
            &BitString::parse("0100").unwrap(),
            2
        ));
    }
}
