//! Bit-parallel evaluation of comparator networks on 0/1 inputs.
//!
//! The zero–one principle makes "is this network a sorter?" an exhaustive
//! sweep over `2^n` binary vectors.  Instead of evaluating them one at a
//! time, we evaluate **64 input vectors per pass**: the state is one `u64`
//! per line, bit `j` of line `i` holding the value of line `i` in test
//! vector `j`.  A standard comparator on lines `(i, j)` then becomes
//!
//! ```text
//! new_i = wᵢ & wⱼ      (the 64 minima)
//! new_j = wᵢ | wⱼ      (the 64 maxima)
//! ```
//!
//! which is the classical SIMD-within-a-register trick for sorting-network
//! verification.  The exhaustive sweep is embarrassingly parallel across
//! 64-vector blocks, so [`ParallelismHint::Rayon`] distributes blocks over a
//! rayon thread pool.

use rayon::prelude::*;

use sortnet_combinat::BitString;

use crate::network::Network;

/// How an exhaustive sweep should be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParallelismHint {
    /// Single-threaded sweep.
    Sequential,
    /// Distribute 64-vector blocks across the rayon thread pool.
    #[default]
    Rayon,
}

/// A block of up to 64 binary input vectors in transposed (bit-sliced) form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitBlock {
    /// `lanes[i]` holds, for every vector in the block, the value of line `i`.
    lanes: Vec<u64>,
    /// Number of vectors actually present (1..=64).
    count: u32,
}

impl BitBlock {
    /// Builds a block from up to 64 input strings (all of length `n`).
    ///
    /// # Panics
    /// Panics if `inputs` is empty, longer than 64, or the lengths are
    /// inconsistent with `n`.
    #[must_use]
    pub fn from_strings(n: usize, inputs: &[BitString]) -> Self {
        assert!(
            !inputs.is_empty() && inputs.len() <= 64,
            "block must hold 1..=64 vectors"
        );
        let mut lanes = vec![0u64; n];
        for (j, s) in inputs.iter().enumerate() {
            assert_eq!(s.len(), n, "input length mismatch");
            for (i, lane) in lanes.iter_mut().enumerate() {
                if s.get(i) {
                    *lane |= 1 << j;
                }
            }
        }
        Self {
            lanes,
            count: inputs.len() as u32,
        }
    }

    /// Builds the block containing the `count` consecutive binary vectors
    /// starting at word value `start` (vector `j` of the block is the string
    /// whose packed word is `start + j`).
    ///
    /// # Panics
    /// Panics if `count` is 0 or exceeds 64.
    #[must_use]
    pub fn from_range(n: usize, start: u64, count: u32) -> Self {
        assert!((1..=64).contains(&count), "block must hold 1..=64 vectors");
        let mut lanes = vec![0u64; n];
        for j in 0..count {
            let word = start + u64::from(j);
            for (i, lane) in lanes.iter_mut().enumerate() {
                if (word >> i) & 1 == 1 {
                    *lane |= 1 << j;
                }
            }
        }
        Self { lanes, count }
    }

    /// Number of vectors in the block.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Bitmask with one set bit per vector actually present in the block
    /// (bits `0..count`).
    #[must_use]
    pub fn live_mask(&self) -> u64 {
        if self.count == 64 {
            u64::MAX
        } else {
            (1u64 << self.count) - 1
        }
    }

    /// Overwrites this block's lanes and count with `other`'s, reusing the
    /// existing allocation — the cheap "fork from a shared prefix" primitive
    /// used by the fault-simulation engine.
    ///
    /// # Panics
    /// Panics if the two blocks have different line counts.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.lanes.len(), other.lanes.len(), "line count mismatch");
        self.lanes.copy_from_slice(&other.lanes);
        self.count = other.count;
    }

    /// Applies one comparator across all 64 lanes: the AND of the two lanes
    /// (the 64 minima) is routed to `min_to`, the OR (the 64 maxima) to
    /// `max_to`.  The lines need not be ordered, so this also evaluates
    /// non-standard (inverted) comparators.
    ///
    /// # Panics
    /// Panics if either line is out of range or the lines coincide.
    #[inline]
    pub fn apply_comparator(&mut self, min_to: usize, max_to: usize) {
        assert_ne!(min_to, max_to, "a comparator needs two distinct lines");
        let a = self.lanes[min_to];
        let b = self.lanes[max_to];
        self.lanes[min_to] = a & b;
        self.lanes[max_to] = a | b;
    }

    /// Exchanges two lanes unconditionally (the lane-level form of a
    /// stuck-swapping comparator).
    #[inline]
    pub fn swap_lanes(&mut self, i: usize, j: usize) {
        self.lanes.swap(i, j);
    }

    /// Rewrites the pair of lanes `(i, j)` through an arbitrary 64-lane
    /// bitwise transfer function — the escape hatch for behavioural fault
    /// models that are not expressible as a plain comparator.
    ///
    /// # Panics
    /// Panics if `i == j` or either line is out of range.
    #[inline]
    pub fn map_pair(&mut self, i: usize, j: usize, f: impl FnOnce(u64, u64) -> (u64, u64)) {
        assert_ne!(i, j, "map_pair needs two distinct lines");
        let (a, b) = f(self.lanes[i], self.lanes[j]);
        self.lanes[i] = a;
        self.lanes[j] = b;
    }

    /// Runs `network` over the block in place.
    pub fn run(&mut self, network: &Network) {
        self.run_range(network, 0, network.size());
    }

    /// Runs only comparators `start..end` of `network` over the block — the
    /// suffix-evaluation primitive behind shared-prefix fault forking.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` exceeds the network size.
    pub fn run_range(&mut self, network: &Network, start: usize, end: usize) {
        assert!(
            start <= end && end <= network.size(),
            "bad comparator range {start}..{end}"
        );
        for c in &network.comparators()[start..end] {
            self.apply_comparator(c.min_line(), c.max_line());
        }
    }

    /// Returns a bitmask over the block's vectors: bit `j` is set when the
    /// output for vector `j` is **not** sorted.
    #[must_use]
    pub fn unsorted_mask(&self) -> u64 {
        // A 0/1 vector is sorted iff no position holds 1 while a later
        // position holds 0, i.e. iff (prefix-OR of earlier lines) & !line is
        // never 1 when scanning top to bottom — equivalently there is no i<j
        // with lane_i = 1, lane_j = 0.
        let mut seen_one = 0u64;
        let mut unsorted = 0u64;
        for &lane in &self.lanes {
            unsorted |= seen_one & !lane;
            seen_one |= lane;
        }
        unsorted & self.live_mask()
    }

    /// Returns, for output line `i`, the 64 output bits of the block.
    #[must_use]
    pub fn lane(&self, i: usize) -> u64 {
        self.lanes[i]
    }

    /// Extracts the output string for vector `j` of the block.
    ///
    /// # Panics
    /// Panics if `j ≥ count`.
    #[must_use]
    pub fn extract(&self, j: u32) -> BitString {
        assert!(j < self.count, "vector index out of range");
        let mut word = 0u64;
        for (i, lane) in self.lanes.iter().enumerate() {
            if (lane >> j) & 1 == 1 {
                word |= 1 << i;
            }
        }
        BitString::from_word(word, self.lanes.len())
    }
}

/// Number of 64-vector blocks an exhaustive `2^n` sweep visits.
///
/// # Panics
/// Panics if `n ≥ 32` (a larger sweep would take > 4 G evaluations; callers
/// wanting larger `n` should use the test-set verifiers instead).
#[must_use]
pub fn sweep_block_count(n: usize) -> u64 {
    assert!(
        n < 32,
        "exhaustive 2^{n} sweep refused; use test-set verification"
    );
    (1u64 << n).div_ceil(64)
}

/// The `(start word, vector count)` of block `b` of the exhaustive `2^n`
/// sweep — the shared arithmetic behind every blocked sweep in this module
/// and the fault-simulation engine.
///
/// # Panics
/// Panics if `n ≥ 32` or `b` is past the last block.
#[must_use]
pub fn sweep_block_range(n: usize, b: u64) -> (u64, u32) {
    assert!(b < sweep_block_count(n), "block index {b} out of range");
    let total: u64 = 1u64 << n;
    let start = b * 64;
    (start, (total - start).min(64) as u32)
}

/// Exhaustively checks the zero–one sorting property of `network` over all
/// `2^n` binary inputs, 64 at a time.
///
/// Returns the first (lowest-word) input the network fails to sort, or
/// `None` if the network is a sorter.
///
/// # Panics
/// Panics if `n ≥ 32` (the sweep would take > 4 G evaluations; callers
/// wanting larger n should use the test-set verifiers instead).
#[must_use]
pub fn find_unsorted_input(network: &Network, hint: ParallelismHint) -> Option<BitString> {
    let n = network.lines();
    let block_count = sweep_block_count(n);

    let check_block = |b: u64| -> Option<BitString> {
        let (start, count) = sweep_block_range(n, b);
        let mut block = BitBlock::from_range(n, start, count);
        block.run(network);
        let mask = block.unsorted_mask();
        if mask == 0 {
            None
        } else {
            let j = mask.trailing_zeros();
            Some(BitString::from_word(start + u64::from(j), n))
        }
    };

    match hint {
        ParallelismHint::Sequential => (0..block_count).find_map(check_block),
        // `find_map_first` keeps the lowest-word witness (blocks are in
        // ascending word order) and short-circuits, matching the
        // sequential arm's early exit on the first failing block.
        ParallelismHint::Rayon => (0..block_count).into_par_iter().find_map_first(check_block),
    }
}

/// `true` iff `network` sorts every 0/1 input (and hence, by the zero–one
/// principle, every input).
#[must_use]
pub fn is_sorter_exhaustive(network: &Network, hint: ParallelismHint) -> bool {
    find_unsorted_input(network, hint).is_none()
}

/// Counts how many of the `2^n` binary inputs the network fails to sort.
///
/// # Panics
/// Panics if `n ≥ 32`.
#[must_use]
pub fn count_unsorted_outputs(network: &Network, hint: ParallelismHint) -> u64 {
    let n = network.lines();
    let block_count = sweep_block_count(n);
    let count_block = |b: u64| -> u64 {
        let (start, count) = sweep_block_range(n, b);
        let mut block = BitBlock::from_range(n, start, count);
        block.run(network);
        u64::from(block.unsorted_mask().count_ones())
    };
    match hint {
        ParallelismHint::Sequential => (0..block_count).map(count_block).sum(),
        ParallelismHint::Rayon => (0..block_count).into_par_iter().map(count_block).sum(),
    }
}

/// Exhaustively checks the `(k, n)`-selection property over all `2^n`
/// binary inputs, 64 vectors at a time, returning the first (lowest-word)
/// input whose first `k` outputs are wrong, or `None` for a valid selector.
///
/// Per block, the candidate outputs are compared lane-by-lane against the
/// outputs of a known-good reference sorter (Batcher's merge-exchange
/// network, itself certified by [`is_sorter_exhaustive`] in this crate's
/// tests): vector `j` violates selection iff some lane `i < k` of the two
/// outputs differs.
///
/// # Panics
/// Panics if `k > n` or `n ≥ 32`.
#[must_use]
pub fn find_selector_violation(
    network: &Network,
    k: usize,
    hint: ParallelismHint,
) -> Option<BitString> {
    let n = network.lines();
    assert!(k <= n, "k = {k} exceeds n = {n}");
    let block_count = sweep_block_count(n);
    if k == 0 {
        return None;
    }
    let reference = crate::builders::batcher::odd_even_merge_sort(n);

    let check_block = |b: u64| -> Option<BitString> {
        let (start, count) = sweep_block_range(n, b);
        let inputs = BitBlock::from_range(n, start, count);
        let mut out = inputs.clone();
        out.run(network);
        let mut sorted = inputs;
        sorted.run(&reference);
        let mut wrong = 0u64;
        for i in 0..k {
            wrong |= out.lane(i) ^ sorted.lane(i);
        }
        wrong &= out.live_mask();
        if wrong == 0 {
            None
        } else {
            let j = wrong.trailing_zeros();
            Some(BitString::from_word(start + u64::from(j), n))
        }
    };

    match hint {
        ParallelismHint::Sequential => (0..block_count).find_map(check_block),
        // As in `find_unsorted_input`: first block in ascending order is the
        // lowest-word witness, and the sweep stops at the first violation.
        ParallelismHint::Rayon => (0..block_count).into_par_iter().find_map_first(check_block),
    }
}

/// `true` iff `network` is a `(k, n)`-selector (bit-parallel exhaustive
/// sweep; see [`find_selector_violation`]).
#[must_use]
pub fn is_selector_exhaustive(network: &Network, k: usize, hint: ParallelismHint) -> bool {
    find_selector_violation(network, k, hint).is_none()
}

/// Runs `network` over an arbitrary list of 0/1 test vectors (in 64-wide
/// blocks) and returns the inputs whose outputs are not sorted.
#[must_use]
pub fn failing_inputs_from(network: &Network, tests: &[BitString]) -> Vec<BitString> {
    let n = network.lines();
    let mut failures = Vec::new();
    for chunk in tests.chunks(64) {
        let mut block = BitBlock::from_strings(n, chunk);
        block.run(network);
        let mask = block.unsorted_mask();
        for (j, input) in chunk.iter().enumerate() {
            if (mask >> j) & 1 == 1 {
                failures.push(*input);
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn batcher4() -> Network {
        // A correct 4-line sorter (odd-even merge sort by hand).
        Network::from_pairs(4, &[(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)])
    }

    fn fig1() -> Network {
        Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)])
    }

    #[test]
    fn block_run_matches_scalar_evaluation() {
        let net = fig1();
        let inputs: Vec<_> = BitString::all(4).collect();
        let mut block = BitBlock::from_strings(4, &inputs[..16]);
        block.run(&net);
        for (j, input) in inputs[..16].iter().enumerate() {
            assert_eq!(
                block.extract(j as u32),
                net.apply_bits(input),
                "input {input}"
            );
        }
    }

    #[test]
    fn unsorted_mask_matches_scalar_sortedness() {
        let net = fig1();
        let inputs: Vec<_> = BitString::all(4).collect();
        let mut block = BitBlock::from_strings(4, &inputs);
        block.run(&net);
        let mask = block.unsorted_mask();
        for (j, input) in inputs.iter().enumerate() {
            let scalar_unsorted = !net.apply_bits(input).is_sorted();
            assert_eq!((mask >> j) & 1 == 1, scalar_unsorted, "input {input}");
        }
    }

    #[test]
    fn exhaustive_check_accepts_a_real_sorter() {
        assert!(is_sorter_exhaustive(
            &batcher4(),
            ParallelismHint::Sequential
        ));
        assert!(is_sorter_exhaustive(&batcher4(), ParallelismHint::Rayon));
    }

    #[test]
    fn exhaustive_check_rejects_fig1_and_reports_lowest_failure() {
        let seq = find_unsorted_input(&fig1(), ParallelismHint::Sequential);
        let par = find_unsorted_input(&fig1(), ParallelismHint::Rayon);
        assert!(seq.is_some());
        assert_eq!(seq, par, "sequential and rayon sweeps must agree");
        let failing = seq.unwrap();
        assert!(!fig1().apply_bits(&failing).is_sorted());
    }

    #[test]
    fn count_unsorted_outputs_agrees_with_scalar_count() {
        for net in [fig1(), batcher4(), Network::empty(4)] {
            let scalar = BitString::all(4)
                .filter(|s| !net.apply_bits(s).is_sorted())
                .count() as u64;
            assert_eq!(
                count_unsorted_outputs(&net, ParallelismHint::Sequential),
                scalar
            );
            assert_eq!(count_unsorted_outputs(&net, ParallelismHint::Rayon), scalar);
        }
    }

    #[test]
    fn empty_network_fails_on_every_unsorted_input() {
        let empty = Network::empty(6);
        let expected = (1u64 << 6) - 6 - 1;
        assert_eq!(
            count_unsorted_outputs(&empty, ParallelismHint::Rayon),
            expected
        );
    }

    #[test]
    fn failing_inputs_from_selects_exactly_the_failures() {
        let net = fig1();
        let tests: Vec<_> = BitString::all(4).collect();
        let failures = failing_inputs_from(&net, &tests);
        for f in &failures {
            assert!(!net.apply_bits(f).is_sorted());
        }
        let expected = count_unsorted_outputs(&net, ParallelismHint::Sequential) as usize;
        assert_eq!(failures.len(), expected);
    }

    #[test]
    fn blocks_of_odd_sizes_mask_out_dead_lanes() {
        let net = Network::empty(3);
        let inputs: Vec<_> = BitString::all(3).take(5).collect();
        let mut block = BitBlock::from_strings(3, &inputs);
        block.run(&net);
        assert_eq!(block.count(), 5);
        assert_eq!(block.unsorted_mask() >> 5, 0, "dead lanes must stay clear");
    }

    #[test]
    fn from_range_matches_from_strings() {
        let inputs: Vec<_> = BitString::all(5).collect();
        let a = BitBlock::from_strings(5, &inputs[..32]);
        let b = BitBlock::from_range(5, 0, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn run_range_splits_compose_to_a_full_run() {
        let net = batcher4();
        for cut in 0..=net.size() {
            let mut split = BitBlock::from_range(4, 0, 16);
            split.run_range(&net, 0, cut);
            split.run_range(&net, cut, net.size());
            let mut whole = BitBlock::from_range(4, 0, 16);
            whole.run(&net);
            assert_eq!(split, whole, "cut at {cut}");
        }
    }

    #[test]
    fn copy_from_forks_a_shared_prefix() {
        let net = batcher4();
        let mut prefix = BitBlock::from_range(4, 0, 16);
        prefix.run_range(&net, 0, 2);
        let mut fork = BitBlock::from_range(4, 48, 5);
        fork.copy_from(&prefix);
        assert_eq!(fork, prefix);
        fork.run_range(&net, 2, net.size());
        let mut direct = BitBlock::from_range(4, 0, 16);
        direct.run(&net);
        assert_eq!(fork, direct);
    }

    #[test]
    fn lane_level_fault_hooks_behave_as_specified() {
        let mut block = BitBlock::from_range(3, 0, 8);
        let (a, b) = (block.lane(0), block.lane(2));
        block.swap_lanes(0, 2);
        assert_eq!((block.lane(0), block.lane(2)), (b, a));
        block.map_pair(0, 2, |x, y| (x | y, x & y));
        assert_eq!((block.lane(0), block.lane(2)), (a | b, a & b));
        // An inverted comparator is apply_comparator with the lines swapped.
        let mut inv = BitBlock::from_range(3, 0, 8);
        inv.apply_comparator(2, 0);
        assert_eq!(inv.lane(2), a & b);
        assert_eq!(inv.lane(0), a | b);
    }

    #[test]
    fn selector_sweep_agrees_with_scalar_definition() {
        use crate::builders::batcher::odd_even_merge_sort;
        for k in 0..=6 {
            assert!(is_selector_exhaustive(
                &odd_even_merge_sort(6),
                k,
                ParallelismHint::Sequential
            ));
        }
        let empty = Network::empty(5);
        assert!(is_selector_exhaustive(&empty, 0, ParallelismHint::Rayon));
        let witness = find_selector_violation(&empty, 2, ParallelismHint::Sequential).unwrap();
        // The scalar definition: output i (< k) must be 0 exactly when
        // i < |input|₀ — the empty network violates that on its witness.
        let out = empty.apply_bits(&witness);
        let zeros = witness.count_zeros();
        assert!((0..2).any(|i| out.get(i) != (i >= zeros)));
        // Sequential and rayon sweeps return the same lowest witness.
        assert_eq!(
            find_selector_violation(&empty, 2, ParallelismHint::Rayon),
            Some(witness)
        );
    }
}
