//! Bit-parallel exhaustive sweeps over comparator networks.
//!
//! The zero–one principle makes "is this network a sorter?" an exhaustive
//! sweep over `2^n` binary vectors.  The sweeps here run on the
//! width-generic substrate of [`crate::lanes`]: a [`WideBlock<W>`] carries
//! `W × 64` input vectors in transposed (bit-sliced) form, so one pass over
//! the comparators evaluates `W × 64` vectors at once, and the exhaustive
//! family is *generated directly in block form* by counting patterns
//! ([`lanes::RangeSource`]) — no vector list is ever materialised.
//!
//! Each entry point comes in three forms: a `*_backend::<W>` const-generic
//! version with both the lane width and the lane-ops [`Backend`] exposed
//! (how the word kernels execute: scalar, portable-chunked or AVX2 — see
//! [`lanes::backend`]), a `*_wide::<W>` version on the runtime-detected
//! [`Backend::active`], and a convenience wrapper fixed at
//! [`lanes::DEFAULT_WIDTH`].  `W = 1` on the scalar backend reproduces the
//! original single-word sweep exactly; [`BitBlock`] is the `W = 1` block
//! type, kept as the interchange format with the fault-simulation engine.
//!
//! Sweeps are embarrassingly parallel across blocks, so
//! [`ParallelismHint::Rayon`] distributes block index ranges over the rayon
//! thread pool (a real `std::thread::scope`-backed pool in this
//! workspace's shim).

use rayon::prelude::*;

use sortnet_combinat::BitString;

use crate::budget::{BudgetMeter, Budgeted, SweepBudget};
use crate::error::{self, EngineError};
use crate::lanes::{self, Backend, WideBlock};
use crate::network::Network;

/// A block of up to 64 binary input vectors in transposed form: the
/// single-word (`W = 1`) instance of [`WideBlock`].
pub type BitBlock = WideBlock<1>;

/// How an exhaustive sweep should be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParallelismHint {
    /// Single-threaded sweep.
    Sequential,
    /// Distribute blocks of `W × 64` vectors across the rayon thread pool.
    #[default]
    Rayon,
}

/// Number of `W × 64`-vector blocks an exhaustive `2^n` sweep visits.
///
/// # Panics
/// Panics if `n ≥ 32` (a larger sweep would take > 4 G evaluations; callers
/// wanting larger `n` should use the test-set verifiers instead).
#[must_use]
pub fn sweep_block_count_wide<const W: usize>(n: usize) -> u64 {
    assert!(
        n < 32,
        "exhaustive 2^{n} sweep refused; use test-set verification"
    );
    (1u64 << n).div_ceil(u64::from(WideBlock::<W>::capacity()))
}

/// The `(start word, vector count)` of block `b` of the exhaustive `2^n`
/// sweep at width `W` — the shared arithmetic behind every blocked sweep in
/// this module and the fault-simulation engine.
///
/// # Panics
/// Panics if `n ≥ 32` or `b` is past the last block.
#[must_use]
pub fn sweep_block_range_wide<const W: usize>(n: usize, b: u64) -> (u64, u32) {
    assert!(
        b < sweep_block_count_wide::<W>(n),
        "block index {b} out of range"
    );
    let total: u64 = 1u64 << n;
    let start = b * u64::from(WideBlock::<W>::capacity());
    (
        start,
        (total - start).min(u64::from(WideBlock::<W>::capacity())) as u32,
    )
}

/// [`sweep_block_count_wide`] at `W = 1` (64-vector blocks).
#[must_use]
pub fn sweep_block_count(n: usize) -> u64 {
    sweep_block_count_wide::<1>(n)
}

/// [`sweep_block_range_wide`] at `W = 1` (64-vector blocks).
#[must_use]
pub fn sweep_block_range(n: usize, b: u64) -> (u64, u32) {
    sweep_block_range_wide::<1>(n, b)
}

/// Exhaustively checks the zero–one sorting property of `network` over all
/// `2^n` binary inputs, `W × 64` at a time.
///
/// Returns the first (lowest-word) input the network fails to sort, or
/// `None` if the network is a sorter.  The verdict and witness are
/// independent of `W` and of the parallelism hint.
///
/// # Panics
/// Panics if `n ≥ 32`.
#[must_use]
pub fn find_unsorted_input_wide<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
) -> Option<BitString> {
    find_unsorted_input_backend::<W>(network, hint, Backend::active())
}

/// [`find_unsorted_input_wide`] pinned to an explicit lane-ops [`Backend`]
/// (the plain form uses the runtime-detected one).
///
/// # Panics
/// Panics if `n ≥ 32`.
#[must_use]
pub fn find_unsorted_input_backend<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
    backend: Backend,
) -> Option<BitString> {
    let n = network.lines();
    let block_count = sweep_block_count_wide::<W>(n);

    let check_block = |b: u64| -> Option<BitString> {
        let (start, count) = sweep_block_range_wide::<W>(n, b);
        let mut block = WideBlock::<W>::from_range(n, start, count);
        block.run_with(backend, network);
        lanes::mask_first(&block.unsorted_masks_with(backend))
            .map(|j| BitString::from_word(start + u64::from(j), n))
    };

    match hint {
        ParallelismHint::Sequential => (0..block_count).find_map(check_block),
        // `find_map_first` keeps the lowest-word witness (blocks are in
        // ascending word order) and short-circuits, matching the
        // sequential arm's early exit on the first failing block.
        ParallelismHint::Rayon => (0..block_count).into_par_iter().find_map_first(check_block),
    }
}

/// [`find_unsorted_input_wide`] at the default lane width.
#[must_use]
pub fn find_unsorted_input(network: &Network, hint: ParallelismHint) -> Option<BitString> {
    find_unsorted_input_wide::<{ lanes::DEFAULT_WIDTH }>(network, hint)
}

/// [`find_unsorted_input_backend`] with the sweep size checked up front,
/// returning a typed error instead of a panic.
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`.
pub fn try_find_unsorted_input_backend<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
    backend: Backend,
) -> Result<Option<BitString>, EngineError> {
    error::ensure_sweepable(network.lines())?;
    Ok(find_unsorted_input_backend::<W>(network, hint, backend))
}

/// [`try_find_unsorted_input_backend`] at the default lane width on the
/// runtime-detected backend.
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`.
pub fn try_find_unsorted_input(
    network: &Network,
    hint: ParallelismHint,
) -> Result<Option<BitString>, EngineError> {
    try_find_unsorted_input_backend::<{ lanes::DEFAULT_WIDTH }>(network, hint, Backend::active())
}

/// The exhaustive sorter sweep under a [`SweepBudget`], checked per
/// block.  Runs sequentially (block-granular metering and the rayon
/// fan-out do not compose), so a budgeted sweep trades the thread-pool
/// speed-up for interruptibility.
///
/// A [`Budgeted::Partial`] outcome carries `None`: no unsorted input was
/// found among the committed blocks (the verdict for the unswept
/// remainder is open).  A witness found inside the budget completes the
/// sweep early as usual.
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`.
pub fn find_unsorted_input_budgeted<const W: usize>(
    network: &Network,
    budget: &SweepBudget,
    backend: Backend,
) -> Result<Budgeted<Option<BitString>>, EngineError> {
    let n = network.lines();
    error::ensure_sweepable(n)?;
    let block_count = sweep_block_count_wide::<W>(n);
    let mut meter = BudgetMeter::new(budget);
    for b in 0..block_count {
        let (start, count) = sweep_block_range_wide::<W>(n, b);
        if !meter.admit_block(u64::from(count)) {
            break;
        }
        let mut block = WideBlock::<W>::from_range(n, start, count);
        block.run_with(backend, network);
        if let Some(j) = lanes::mask_first(&block.unsorted_masks_with(backend)) {
            return Ok(meter.finish(Some(BitString::from_word(start + u64::from(j), n))));
        }
    }
    Ok(meter.finish(None))
}

/// `true` iff `network` sorts every 0/1 input (and hence, by the zero–one
/// principle, every input), swept at width `W`.
#[must_use]
pub fn is_sorter_exhaustive_wide<const W: usize>(network: &Network, hint: ParallelismHint) -> bool {
    find_unsorted_input_wide::<W>(network, hint).is_none()
}

/// [`is_sorter_exhaustive_wide`] pinned to an explicit lane-ops
/// [`Backend`].
#[must_use]
pub fn is_sorter_exhaustive_backend<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
    backend: Backend,
) -> bool {
    find_unsorted_input_backend::<W>(network, hint, backend).is_none()
}

/// [`is_sorter_exhaustive_wide`] at the default lane width.
#[must_use]
pub fn is_sorter_exhaustive(network: &Network, hint: ParallelismHint) -> bool {
    find_unsorted_input(network, hint).is_none()
}

/// Counts how many of the `2^n` binary inputs the network fails to sort.
///
/// # Panics
/// Panics if `n ≥ 32`.
#[must_use]
pub fn count_unsorted_outputs_wide<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
) -> u64 {
    count_unsorted_outputs_backend::<W>(network, hint, Backend::active())
}

/// [`count_unsorted_outputs_wide`] pinned to an explicit lane-ops
/// [`Backend`].
///
/// # Panics
/// Panics if `n ≥ 32`.
#[must_use]
pub fn count_unsorted_outputs_backend<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
    backend: Backend,
) -> u64 {
    let n = network.lines();
    let block_count = sweep_block_count_wide::<W>(n);
    let count_block = |b: u64| -> u64 {
        let (start, count) = sweep_block_range_wide::<W>(n, b);
        let mut block = WideBlock::<W>::from_range(n, start, count);
        block.run_with(backend, network);
        u64::from(lanes::mask_count(&block.unsorted_masks_with(backend)))
    };
    match hint {
        ParallelismHint::Sequential => (0..block_count).map(count_block).sum(),
        ParallelismHint::Rayon => (0..block_count).into_par_iter().map(count_block).sum(),
    }
}

/// [`count_unsorted_outputs_wide`] at the default lane width.
#[must_use]
pub fn count_unsorted_outputs(network: &Network, hint: ParallelismHint) -> u64 {
    count_unsorted_outputs_wide::<{ lanes::DEFAULT_WIDTH }>(network, hint)
}

/// [`count_unsorted_outputs_backend`] with the sweep size checked up
/// front.
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`.
pub fn try_count_unsorted_outputs_backend<const W: usize>(
    network: &Network,
    hint: ParallelismHint,
    backend: Backend,
) -> Result<u64, EngineError> {
    error::ensure_sweepable(network.lines())?;
    Ok(count_unsorted_outputs_backend::<W>(network, hint, backend))
}

/// The unsorted-output count under a [`SweepBudget`] (sequential; see
/// [`find_unsorted_input_budgeted`] for why).  A
/// [`Budgeted::Partial`] count is exact for the committed blocks and
/// therefore a **lower bound** on the full count.
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`.
pub fn count_unsorted_outputs_budgeted<const W: usize>(
    network: &Network,
    budget: &SweepBudget,
    backend: Backend,
) -> Result<Budgeted<u64>, EngineError> {
    let n = network.lines();
    error::ensure_sweepable(n)?;
    let block_count = sweep_block_count_wide::<W>(n);
    let mut meter = BudgetMeter::new(budget);
    let mut unsorted = 0u64;
    for b in 0..block_count {
        let (start, count) = sweep_block_range_wide::<W>(n, b);
        if !meter.admit_block(u64::from(count)) {
            break;
        }
        let mut block = WideBlock::<W>::from_range(n, start, count);
        block.run_with(backend, network);
        unsorted += u64::from(lanes::mask_count(&block.unsorted_masks_with(backend)));
    }
    Ok(meter.finish(unsorted))
}

/// Exhaustively checks the `(k, n)`-selection property over all `2^n`
/// binary inputs, `W × 64` vectors at a time, returning the first
/// (lowest-word) input whose first `k` outputs are wrong, or `None` for a
/// valid selector.
///
/// Per block, the candidate outputs are compared lane-by-lane against the
/// outputs of a known-good reference sorter (Batcher's merge-exchange
/// network, itself certified by [`is_sorter_exhaustive`] in this crate's
/// tests): vector `j` violates selection iff some lane `i < k` of the two
/// outputs differs.
///
/// # Panics
/// Panics if `k > n` or `n ≥ 32`.
#[must_use]
pub fn find_selector_violation_wide<const W: usize>(
    network: &Network,
    k: usize,
    hint: ParallelismHint,
) -> Option<BitString> {
    find_selector_violation_backend::<W>(network, k, hint, Backend::active())
}

/// [`find_selector_violation_wide`] pinned to an explicit lane-ops
/// [`Backend`].
///
/// # Panics
/// Panics if `k > n` or `n ≥ 32`.
#[must_use]
pub fn find_selector_violation_backend<const W: usize>(
    network: &Network,
    k: usize,
    hint: ParallelismHint,
    backend: Backend,
) -> Option<BitString> {
    let n = network.lines();
    assert!(k <= n, "k = {k} exceeds n = {n}");
    let block_count = sweep_block_count_wide::<W>(n);
    if k == 0 {
        return None;
    }
    let reference = crate::builders::batcher::odd_even_merge_sort(n);

    let check_block = |b: u64| -> Option<BitString> {
        let (start, count) = sweep_block_range_wide::<W>(n, b);
        let inputs = WideBlock::<W>::from_range(n, start, count);
        let mut out = inputs.clone();
        out.run_with(backend, network);
        let mut sorted = inputs;
        sorted.run_with(backend, &reference);
        let wrong = lanes::selector_violation_masks_with(&out, &sorted, k, backend);
        lanes::mask_first(&wrong).map(|j| BitString::from_word(start + u64::from(j), n))
    };

    match hint {
        ParallelismHint::Sequential => (0..block_count).find_map(check_block),
        // As in `find_unsorted_input_wide`: first block in ascending order
        // is the lowest-word witness, and the sweep stops at the first
        // violation.
        ParallelismHint::Rayon => (0..block_count).into_par_iter().find_map_first(check_block),
    }
}

/// [`find_selector_violation_wide`] at the default lane width.
#[must_use]
pub fn find_selector_violation(
    network: &Network,
    k: usize,
    hint: ParallelismHint,
) -> Option<BitString> {
    find_selector_violation_wide::<{ lanes::DEFAULT_WIDTH }>(network, k, hint)
}

/// `true` iff `network` is a `(k, n)`-selector (bit-parallel exhaustive
/// sweep; see [`find_selector_violation_wide`]).
#[must_use]
pub fn is_selector_exhaustive(network: &Network, k: usize, hint: ParallelismHint) -> bool {
    find_selector_violation(network, k, hint).is_none()
}

/// [`find_selector_violation_backend`] with both parameters checked up
/// front.
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`;
/// [`EngineError::IndexOutOfRange`] when `k > n`.
pub fn try_find_selector_violation_backend<const W: usize>(
    network: &Network,
    k: usize,
    hint: ParallelismHint,
    backend: Backend,
) -> Result<Option<BitString>, EngineError> {
    let n = network.lines();
    error::ensure_sweepable(n)?;
    if k > n {
        return Err(EngineError::IndexOutOfRange {
            what: "selector k",
            index: k,
            limit: n + 1,
        });
    }
    Ok(find_selector_violation_backend::<W>(
        network, k, hint, backend,
    ))
}

/// Runs `network` over an arbitrary list of 0/1 test vectors (in
/// `W × 64`-wide blocks at the default width) and returns the inputs whose
/// outputs are not sorted.
#[must_use]
pub fn failing_inputs_from(network: &Network, tests: &[BitString]) -> Vec<BitString> {
    let n = network.lines();
    let mut failures = Vec::new();
    for chunk in tests.chunks(WideBlock::<{ lanes::DEFAULT_WIDTH }>::capacity() as usize) {
        let mut block = WideBlock::<{ lanes::DEFAULT_WIDTH }>::from_strings(n, chunk);
        block.run(network);
        let mask = block.unsorted_masks();
        for (j, input) in chunk.iter().enumerate() {
            if (mask[j / 64] >> (j % 64)) & 1 == 1 {
                failures.push(*input);
            }
        }
    }
    failures
}

/// [`failing_inputs_from`] with the test-vector lengths checked up
/// front, returning a typed error instead of a block-builder panic.
///
/// # Errors
/// [`EngineError::InputLengthMismatch`] when any test's length disagrees
/// with the network's line count.
pub fn try_failing_inputs_from(
    network: &Network,
    tests: &[BitString],
) -> Result<Vec<BitString>, EngineError> {
    let n = network.lines();
    for t in tests {
        if t.len() != n {
            return Err(EngineError::InputLengthMismatch {
                expected: n,
                actual: t.len(),
            });
        }
    }
    Ok(failing_inputs_from(network, tests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn batcher4() -> Network {
        // A correct 4-line sorter (odd-even merge sort by hand).
        Network::from_pairs(4, &[(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)])
    }

    fn fig1() -> Network {
        Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)])
    }

    #[test]
    fn block_run_matches_scalar_evaluation() {
        let net = fig1();
        let inputs: Vec<_> = BitString::all(4).collect();
        let mut block = BitBlock::from_strings(4, &inputs[..16]);
        block.run(&net);
        for (j, input) in inputs[..16].iter().enumerate() {
            assert_eq!(
                block.extract(j as u32),
                net.apply_bits(input),
                "input {input}"
            );
        }
    }

    #[test]
    fn unsorted_mask_matches_scalar_sortedness() {
        let net = fig1();
        let inputs: Vec<_> = BitString::all(4).collect();
        let mut block = BitBlock::from_strings(4, &inputs);
        block.run(&net);
        let mask = block.unsorted_mask();
        for (j, input) in inputs.iter().enumerate() {
            let scalar_unsorted = !net.apply_bits(input).is_sorted();
            assert_eq!((mask >> j) & 1 == 1, scalar_unsorted, "input {input}");
        }
    }

    #[test]
    fn exhaustive_check_accepts_a_real_sorter() {
        assert!(is_sorter_exhaustive(
            &batcher4(),
            ParallelismHint::Sequential
        ));
        assert!(is_sorter_exhaustive(&batcher4(), ParallelismHint::Rayon));
    }

    #[test]
    fn exhaustive_check_rejects_fig1_and_reports_lowest_failure() {
        let seq = find_unsorted_input(&fig1(), ParallelismHint::Sequential);
        let par = find_unsorted_input(&fig1(), ParallelismHint::Rayon);
        assert!(seq.is_some());
        assert_eq!(seq, par, "sequential and rayon sweeps must agree");
        let failing = seq.unwrap();
        assert!(!fig1().apply_bits(&failing).is_sorted());
    }

    #[test]
    fn all_widths_agree_on_witness_and_count() {
        for net in [fig1(), batcher4(), Network::empty(4)] {
            let w1 = find_unsorted_input_wide::<1>(&net, ParallelismHint::Sequential);
            let w2 = find_unsorted_input_wide::<2>(&net, ParallelismHint::Sequential);
            let w4 = find_unsorted_input_wide::<4>(&net, ParallelismHint::Rayon);
            assert_eq!(w1, w2, "net {net}");
            assert_eq!(w1, w4, "net {net}");
            let c1 = count_unsorted_outputs_wide::<1>(&net, ParallelismHint::Sequential);
            let c2 = count_unsorted_outputs_wide::<2>(&net, ParallelismHint::Rayon);
            let c4 = count_unsorted_outputs_wide::<4>(&net, ParallelismHint::Sequential);
            assert_eq!(c1, c2, "net {net}");
            assert_eq!(c1, c4, "net {net}");
        }
    }

    #[test]
    fn count_unsorted_outputs_agrees_with_scalar_count() {
        for net in [fig1(), batcher4(), Network::empty(4)] {
            let scalar = BitString::all(4)
                .filter(|s| !net.apply_bits(s).is_sorted())
                .count() as u64;
            assert_eq!(
                count_unsorted_outputs(&net, ParallelismHint::Sequential),
                scalar
            );
            assert_eq!(count_unsorted_outputs(&net, ParallelismHint::Rayon), scalar);
        }
    }

    #[test]
    fn empty_network_fails_on_every_unsorted_input() {
        let empty = Network::empty(6);
        let expected = (1u64 << 6) - 6 - 1;
        assert_eq!(
            count_unsorted_outputs(&empty, ParallelismHint::Rayon),
            expected
        );
    }

    #[test]
    fn failing_inputs_from_selects_exactly_the_failures() {
        let net = fig1();
        let tests: Vec<_> = BitString::all(4).collect();
        let failures = failing_inputs_from(&net, &tests);
        for f in &failures {
            assert!(!net.apply_bits(f).is_sorted());
        }
        let expected = count_unsorted_outputs(&net, ParallelismHint::Sequential) as usize;
        assert_eq!(failures.len(), expected);
    }

    #[test]
    fn blocks_of_odd_sizes_mask_out_dead_lanes() {
        let net = Network::empty(3);
        let inputs: Vec<_> = BitString::all(3).take(5).collect();
        let mut block = BitBlock::from_strings(3, &inputs);
        block.run(&net);
        assert_eq!(block.count(), 5);
        assert_eq!(block.unsorted_mask() >> 5, 0, "dead lanes must stay clear");
    }

    #[test]
    fn from_range_matches_from_strings() {
        let inputs: Vec<_> = BitString::all(5).collect();
        let a = BitBlock::from_strings(5, &inputs[..32]);
        let b = BitBlock::from_range(5, 0, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn run_range_splits_compose_to_a_full_run() {
        let net = batcher4();
        for cut in 0..=net.size() {
            let mut split = BitBlock::from_range(4, 0, 16);
            split.run_range(&net, 0, cut);
            split.run_range(&net, cut, net.size());
            let mut whole = BitBlock::from_range(4, 0, 16);
            whole.run(&net);
            assert_eq!(split, whole, "cut at {cut}");
        }
    }

    #[test]
    fn copy_from_forks_a_shared_prefix() {
        let net = batcher4();
        let mut prefix = BitBlock::from_range(4, 0, 16);
        prefix.run_range(&net, 0, 2);
        let mut fork = BitBlock::from_range(4, 48, 5);
        fork.copy_from(&prefix);
        assert_eq!(fork, prefix);
        fork.run_range(&net, 2, net.size());
        let mut direct = BitBlock::from_range(4, 0, 16);
        direct.run(&net);
        assert_eq!(fork, direct);
    }

    #[test]
    fn lane_level_fault_hooks_behave_as_specified() {
        let mut block = BitBlock::from_range(3, 0, 8);
        let (a, b) = (block.lane(0), block.lane(2));
        block.swap_lanes(0, 2);
        assert_eq!((block.lane(0), block.lane(2)), (b, a));
        block.map_pair(0, 2, |x, y| (x | y, x & y));
        assert_eq!((block.lane(0), block.lane(2)), (a | b, a & b));
        // An inverted comparator is apply_comparator with the lines swapped.
        let mut inv = BitBlock::from_range(3, 0, 8);
        inv.apply_comparator(2, 0);
        assert_eq!(inv.lane(2), a & b);
        assert_eq!(inv.lane(0), a | b);
    }

    #[test]
    fn try_variants_reject_hostile_inputs_and_agree_otherwise() {
        let net = batcher4();
        assert_eq!(
            try_find_unsorted_input(&net, ParallelismHint::Sequential).unwrap(),
            None
        );
        let big = Network::empty(40);
        assert_eq!(
            try_find_unsorted_input(&big, ParallelismHint::Sequential).unwrap_err(),
            EngineError::SweepTooLarge { lines: 40 }
        );
        assert!(matches!(
            try_count_unsorted_outputs_backend::<1>(
                &big,
                ParallelismHint::Sequential,
                Backend::Scalar
            ),
            Err(EngineError::SweepTooLarge { lines: 40 })
        ));
        assert!(matches!(
            try_find_selector_violation_backend::<1>(
                &net,
                9,
                ParallelismHint::Sequential,
                Backend::Scalar
            ),
            Err(EngineError::IndexOutOfRange { index: 9, .. })
        ));
        let mismatched = vec![BitString::zeros(5)];
        assert!(matches!(
            try_failing_inputs_from(&net, &mismatched),
            Err(EngineError::InputLengthMismatch {
                expected: 4,
                actual: 5
            })
        ));
    }

    #[test]
    fn budgeted_exhaustive_sweeps_degrade_to_exact_prefixes() {
        use crate::budget::SweepBudget;
        let sorter = crate::builders::batcher::odd_even_merge_sort(9);
        // 2^9 = 8 one-word blocks; cap at 2.
        let budget = SweepBudget::unlimited().with_max_blocks(2);
        let partial = find_unsorted_input_budgeted::<1>(&sorter, &budget, Backend::Scalar).unwrap();
        assert!(!partial.is_complete());
        assert_eq!(*partial.value(), None);
        let full =
            find_unsorted_input_budgeted::<1>(&sorter, &SweepBudget::unlimited(), Backend::Scalar)
                .unwrap();
        assert!(full.is_complete());
        // Budgeted counting is a lower bound that matches the full count
        // on the committed prefix.
        let empty = Network::empty(8);
        let capped = count_unsorted_outputs_budgeted::<1>(
            &empty,
            &SweepBudget::unlimited().with_max_blocks(2),
            Backend::Scalar,
        )
        .unwrap();
        let scalar_prefix = BitString::all(8)
            .take(128)
            .filter(|s| !s.is_sorted())
            .count() as u64;
        assert_eq!(*capped.value(), scalar_prefix);
        let full_count = count_unsorted_outputs_budgeted::<1>(
            &empty,
            &SweepBudget::unlimited(),
            Backend::Scalar,
        )
        .unwrap();
        assert!(full_count.is_complete());
        assert_eq!(
            *full_count.value(),
            count_unsorted_outputs(&empty, ParallelismHint::Sequential)
        );
        assert!(*capped.value() <= *full_count.value());
    }

    #[test]
    fn selector_sweep_agrees_with_scalar_definition() {
        use crate::builders::batcher::odd_even_merge_sort;
        for k in 0..=6 {
            assert!(find_selector_violation_wide::<2>(
                &odd_even_merge_sort(6),
                k,
                ParallelismHint::Sequential
            )
            .is_none());
        }
        let empty = Network::empty(5);
        assert!(is_selector_exhaustive(&empty, 0, ParallelismHint::Rayon));
        let witness = find_selector_violation(&empty, 2, ParallelismHint::Sequential).unwrap();
        // The scalar definition: output i (< k) must be 0 exactly when
        // i < |input|₀ — the empty network violates that on its witness.
        let out = empty.apply_bits(&witness);
        let zeros = witness.count_zeros();
        assert!((0..2).any(|i| out.get(i) != (i >= zeros)));
        // Sequential and rayon sweeps return the same lowest witness, at
        // every width.
        assert_eq!(
            find_selector_violation(&empty, 2, ParallelismHint::Rayon),
            Some(witness)
        );
        assert_eq!(
            find_selector_violation_wide::<1>(&empty, 2, ParallelismHint::Sequential),
            Some(witness)
        );
    }
}
