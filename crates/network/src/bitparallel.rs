//! Bit-parallel evaluation of comparator networks on 0/1 inputs.
//!
//! The zero–one principle makes "is this network a sorter?" an exhaustive
//! sweep over `2^n` binary vectors.  Instead of evaluating them one at a
//! time, we evaluate **64 input vectors per pass**: the state is one `u64`
//! per line, bit `j` of line `i` holding the value of line `i` in test
//! vector `j`.  A standard comparator on lines `(i, j)` then becomes
//!
//! ```text
//! new_i = wᵢ & wⱼ      (the 64 minima)
//! new_j = wᵢ | wⱼ      (the 64 maxima)
//! ```
//!
//! which is the classical SIMD-within-a-register trick for sorting-network
//! verification.  The exhaustive sweep is embarrassingly parallel across
//! 64-vector blocks, so [`ParallelismHint::Rayon`] distributes blocks over a
//! rayon thread pool.

use rayon::prelude::*;

use sortnet_combinat::BitString;

use crate::network::Network;

/// How an exhaustive sweep should be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParallelismHint {
    /// Single-threaded sweep.
    Sequential,
    /// Distribute 64-vector blocks across the rayon thread pool.
    #[default]
    Rayon,
}

/// A block of up to 64 binary input vectors in transposed (bit-sliced) form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitBlock {
    /// `lanes[i]` holds, for every vector in the block, the value of line `i`.
    lanes: Vec<u64>,
    /// Number of vectors actually present (1..=64).
    count: u32,
}

impl BitBlock {
    /// Builds a block from up to 64 input strings (all of length `n`).
    ///
    /// # Panics
    /// Panics if `inputs` is empty, longer than 64, or the lengths are
    /// inconsistent with `n`.
    #[must_use]
    pub fn from_strings(n: usize, inputs: &[BitString]) -> Self {
        assert!(!inputs.is_empty() && inputs.len() <= 64, "block must hold 1..=64 vectors");
        let mut lanes = vec![0u64; n];
        for (j, s) in inputs.iter().enumerate() {
            assert_eq!(s.len(), n, "input length mismatch");
            for (i, lane) in lanes.iter_mut().enumerate() {
                if s.get(i) {
                    *lane |= 1 << j;
                }
            }
        }
        Self {
            lanes,
            count: inputs.len() as u32,
        }
    }

    /// Builds the block containing the `count` consecutive binary vectors
    /// starting at word value `start` (vector `j` of the block is the string
    /// whose packed word is `start + j`).
    ///
    /// # Panics
    /// Panics if `count` is 0 or exceeds 64.
    #[must_use]
    pub fn from_range(n: usize, start: u64, count: u32) -> Self {
        assert!(count >= 1 && count <= 64, "block must hold 1..=64 vectors");
        let mut lanes = vec![0u64; n];
        for j in 0..count {
            let word = start + u64::from(j);
            for (i, lane) in lanes.iter_mut().enumerate() {
                if (word >> i) & 1 == 1 {
                    *lane |= 1 << j;
                }
            }
        }
        Self { lanes, count }
    }

    /// Number of vectors in the block.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Runs `network` over the block in place.
    pub fn run(&mut self, network: &Network) {
        for c in network.comparators() {
            let i = c.min_line();
            let j = c.max_line();
            let a = self.lanes[i];
            let b = self.lanes[j];
            self.lanes[i] = a & b;
            self.lanes[j] = a | b;
        }
    }

    /// Returns a bitmask over the block's vectors: bit `j` is set when the
    /// output for vector `j` is **not** sorted.
    #[must_use]
    pub fn unsorted_mask(&self) -> u64 {
        // A 0/1 vector is sorted iff no position holds 1 while a later
        // position holds 0, i.e. iff (prefix-OR of earlier lines) & !line is
        // never 1 when scanning top to bottom — equivalently there is no i<j
        // with lane_i = 1, lane_j = 0.
        let mut seen_one = 0u64;
        let mut unsorted = 0u64;
        for &lane in &self.lanes {
            unsorted |= seen_one & !lane;
            seen_one |= lane;
        }
        let live = if self.count == 64 {
            u64::MAX
        } else {
            (1u64 << self.count) - 1
        };
        unsorted & live
    }

    /// Returns, for output line `i`, the 64 output bits of the block.
    #[must_use]
    pub fn lane(&self, i: usize) -> u64 {
        self.lanes[i]
    }

    /// Extracts the output string for vector `j` of the block.
    ///
    /// # Panics
    /// Panics if `j ≥ count`.
    #[must_use]
    pub fn extract(&self, j: u32) -> BitString {
        assert!(j < self.count, "vector index out of range");
        let mut word = 0u64;
        for (i, lane) in self.lanes.iter().enumerate() {
            if (lane >> j) & 1 == 1 {
                word |= 1 << i;
            }
        }
        BitString::from_word(word, self.lanes.len())
    }
}

/// Exhaustively checks the zero–one sorting property of `network` over all
/// `2^n` binary inputs, 64 at a time.
///
/// Returns the first (lowest-word) input the network fails to sort, or
/// `None` if the network is a sorter.
///
/// # Panics
/// Panics if `n ≥ 32` (the sweep would take > 4 G evaluations; callers
/// wanting larger n should use the test-set verifiers instead).
#[must_use]
pub fn find_unsorted_input(network: &Network, hint: ParallelismHint) -> Option<BitString> {
    let n = network.lines();
    assert!(n < 32, "exhaustive 2^{n} sweep refused; use test-set verification");
    let total: u64 = 1u64 << n;
    let block_count = total.div_ceil(64);

    let check_block = |b: u64| -> Option<BitString> {
        let start = b * 64;
        let count = (total - start).min(64) as u32;
        let mut block = BitBlock::from_range(n, start, count);
        block.run(network);
        let mask = block.unsorted_mask();
        if mask == 0 {
            None
        } else {
            let j = mask.trailing_zeros();
            Some(BitString::from_word(start + u64::from(j), n))
        }
    };

    match hint {
        ParallelismHint::Sequential => (0..block_count).find_map(check_block),
        ParallelismHint::Rayon => (0..block_count)
            .into_par_iter()
            .filter_map(check_block)
            .min_by_key(BitString::word),
    }
}

/// `true` iff `network` sorts every 0/1 input (and hence, by the zero–one
/// principle, every input).
#[must_use]
pub fn is_sorter_exhaustive(network: &Network, hint: ParallelismHint) -> bool {
    find_unsorted_input(network, hint).is_none()
}

/// Counts how many of the `2^n` binary inputs the network fails to sort.
///
/// # Panics
/// Panics if `n ≥ 32`.
#[must_use]
pub fn count_unsorted_outputs(network: &Network, hint: ParallelismHint) -> u64 {
    let n = network.lines();
    assert!(n < 32, "exhaustive 2^{n} sweep refused");
    let total: u64 = 1u64 << n;
    let block_count = total.div_ceil(64);
    let count_block = |b: u64| -> u64 {
        let start = b * 64;
        let count = (total - start).min(64) as u32;
        let mut block = BitBlock::from_range(n, start, count);
        block.run(network);
        u64::from(block.unsorted_mask().count_ones())
    };
    match hint {
        ParallelismHint::Sequential => (0..block_count).map(count_block).sum(),
        ParallelismHint::Rayon => (0..block_count).into_par_iter().map(count_block).sum(),
    }
}

/// Runs `network` over an arbitrary list of 0/1 test vectors (in 64-wide
/// blocks) and returns the inputs whose outputs are not sorted.
#[must_use]
pub fn failing_inputs_from(network: &Network, tests: &[BitString]) -> Vec<BitString> {
    let n = network.lines();
    let mut failures = Vec::new();
    for chunk in tests.chunks(64) {
        let mut block = BitBlock::from_strings(n, chunk);
        block.run(network);
        let mask = block.unsorted_mask();
        for (j, input) in chunk.iter().enumerate() {
            if (mask >> j) & 1 == 1 {
                failures.push(*input);
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn batcher4() -> Network {
        // A correct 4-line sorter (odd-even merge sort by hand).
        Network::from_pairs(4, &[(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)])
    }

    fn fig1() -> Network {
        Network::from_pairs(4, &[(0, 2), (1, 3), (0, 1), (2, 3)])
    }

    #[test]
    fn block_run_matches_scalar_evaluation() {
        let net = fig1();
        let inputs: Vec<_> = BitString::all(4).collect();
        let mut block = BitBlock::from_strings(4, &inputs[..16]);
        block.run(&net);
        for (j, input) in inputs[..16].iter().enumerate() {
            assert_eq!(block.extract(j as u32), net.apply_bits(input), "input {input}");
        }
    }

    #[test]
    fn unsorted_mask_matches_scalar_sortedness() {
        let net = fig1();
        let inputs: Vec<_> = BitString::all(4).collect();
        let mut block = BitBlock::from_strings(4, &inputs);
        block.run(&net);
        let mask = block.unsorted_mask();
        for (j, input) in inputs.iter().enumerate() {
            let scalar_unsorted = !net.apply_bits(input).is_sorted();
            assert_eq!((mask >> j) & 1 == 1, scalar_unsorted, "input {input}");
        }
    }

    #[test]
    fn exhaustive_check_accepts_a_real_sorter() {
        assert!(is_sorter_exhaustive(&batcher4(), ParallelismHint::Sequential));
        assert!(is_sorter_exhaustive(&batcher4(), ParallelismHint::Rayon));
    }

    #[test]
    fn exhaustive_check_rejects_fig1_and_reports_lowest_failure() {
        let seq = find_unsorted_input(&fig1(), ParallelismHint::Sequential);
        let par = find_unsorted_input(&fig1(), ParallelismHint::Rayon);
        assert!(seq.is_some());
        assert_eq!(seq, par, "sequential and rayon sweeps must agree");
        let failing = seq.unwrap();
        assert!(!fig1().apply_bits(&failing).is_sorted());
    }

    #[test]
    fn count_unsorted_outputs_agrees_with_scalar_count() {
        for net in [fig1(), batcher4(), Network::empty(4)] {
            let scalar = BitString::all(4)
                .filter(|s| !net.apply_bits(s).is_sorted())
                .count() as u64;
            assert_eq!(count_unsorted_outputs(&net, ParallelismHint::Sequential), scalar);
            assert_eq!(count_unsorted_outputs(&net, ParallelismHint::Rayon), scalar);
        }
    }

    #[test]
    fn empty_network_fails_on_every_unsorted_input() {
        let empty = Network::empty(6);
        let expected = (1u64 << 6) - 6 - 1;
        assert_eq!(count_unsorted_outputs(&empty, ParallelismHint::Rayon), expected);
    }

    #[test]
    fn failing_inputs_from_selects_exactly_the_failures() {
        let net = fig1();
        let tests: Vec<_> = BitString::all(4).collect();
        let failures = failing_inputs_from(&net, &tests);
        for f in &failures {
            assert!(!net.apply_bits(f).is_sorted());
        }
        let expected = count_unsorted_outputs(&net, ParallelismHint::Sequential) as usize;
        assert_eq!(failures.len(), expected);
    }

    #[test]
    fn blocks_of_odd_sizes_mask_out_dead_lanes() {
        let net = Network::empty(3);
        let inputs: Vec<_> = BitString::all(3).take(5).collect();
        let mut block = BitBlock::from_strings(3, &inputs);
        block.run(&net);
        assert_eq!(block.count(), 5);
        assert_eq!(block.unsorted_mask() >> 5, 0, "dead lanes must stay clear");
    }

    #[test]
    fn from_range_matches_from_strings() {
        let inputs: Vec<_> = BitString::all(5).collect();
        let a = BitBlock::from_strings(5, &inputs[..32]);
        let b = BitBlock::from_range(5, 0, 32);
        assert_eq!(a, b);
    }
}
