//! # sortnet-integration
//!
//! Glue crate hosting the workspace-level integration tests (the top-level
//! `tests/` directory).  The tests exercise cross-crate behaviour: the
//! theorems of `sortnet-testsets` evaluated against the oracles of
//! `sortnet-network`, property-based cross-checks with `proptest`, and the
//! fault-model pipeline of `sortnet-faults`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sortnet_combinat as combinat;
pub use sortnet_faults as faults;
pub use sortnet_network as network;
pub use sortnet_testsets as testsets;
