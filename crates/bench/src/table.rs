//! Minimal markdown table builder used by the experiment harness.

use std::fmt;

/// A simple markdown table: a header row plus data rows, rendered with
/// `Display`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}\n", self.title)?;
        writeln!(f, "| {} |", self.header.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["3".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("### Demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
