//! The experiment functions E1–E10 (see DESIGN.md §3).  Each returns a
//! [`Table`] whose rows juxtapose the paper's closed-form value with the
//! value measured from the constructions in this workspace.

// The experiment tables pin the legacy panicking wrappers' behaviour and
// cost until stage 3 of the deprecation path (docs/ERRORS.md) reclaims them.
#![allow(deprecated)]

use sortnet_combinat::binomial::{
    merging_testset_size_binary, merging_testset_size_permutation, selector_testset_size_binary,
    selector_testset_size_permutation, sorting_testset_size_binary,
    sorting_testset_size_permutation,
};
use sortnet_combinat::{BitString, Permutation};
use sortnet_faults::{coverage_of_universe_with, FaultSimEngine, FaultUniverse, StandardUniverse};
use sortnet_network::builders::batcher::{half_half_merger, odd_even_merge_sort};
use sortnet_network::builders::bubble::bubble_sort_network;
use sortnet_network::builders::selection::pruned_selector;
use sortnet_network::builders::transposition::odd_even_transposition;
use sortnet_network::primitive::for_each_network;
use sortnet_network::properties::is_sorter;
use sortnet_network::random::NetworkSampler;
use sortnet_network::Network;
use sortnet_testsets::adversary::{survey, AdversaryVariant};
use sortnet_testsets::verify::{verify, Property, Strategy};
use sortnet_testsets::{bnk, bounds, hitting, merging, primitive, selector, sorting};

use crate::table::Table;

/// E1 — Theorem 2.2(i): minimum 0/1 test set for sorting.
///
/// For each `n`, the constructed test set size, the closed form
/// `2^n − n − 1`, and (for `n ≤ 4`) the optimum found by the exhaustive
/// hitting-set search.
#[must_use]
pub fn e1_sorting_binary(max_n: usize) -> Table {
    let mut t = Table::new(
        "E1 — minimum 0/1 test set for sorting (Theorem 2.2 i)",
        &[
            "n",
            "constructed |T|",
            "2^n - n - 1",
            "hitting-set optimum",
            "match",
        ],
    );
    for n in 2..=max_n {
        let constructed = sorting::binary_testset(n).len() as u128;
        let formula = sorting_testset_size_binary(n as u64);
        let searched = if n <= 4 {
            let signatures = hitting::failure_signatures(n, 4);
            let universe = BitString::all_unsorted(n).count();
            hitting::minimum_hitting_set_size(&signatures, universe).to_string()
        } else {
            "—".to_string()
        };
        let matches = constructed == formula;
        t.push_row(vec![
            n.to_string(),
            constructed.to_string(),
            formula.to_string(),
            searched,
            matches.to_string(),
        ]);
    }
    t
}

/// E2 — Theorem 2.2(ii): minimum permutation test set for sorting.
#[must_use]
pub fn e2_sorting_permutation(max_n: usize) -> Table {
    let mut t = Table::new(
        "E2 — minimum permutation test set for sorting (Theorem 2.2 ii)",
        &[
            "n",
            "constructed |P|",
            "C(n,⌊n/2⌋) - 1",
            "covers all unsorted strings",
            "set-cover optimum",
        ],
    );
    for n in 2..=max_n {
        let testset = sorting::permutation_testset(n);
        let formula = sorting_testset_size_permutation(n as u64);
        let covers = sorting::is_permutation_testset(&testset, n);
        let searched = if n <= 4 {
            hitting::minimum_permutation_testset_size(n).to_string()
        } else {
            "—".to_string()
        };
        t.push_row(vec![
            n.to_string(),
            testset.len().to_string(),
            formula.to_string(),
            covers.to_string(),
            searched,
        ]);
    }
    t
}

/// E3 — the §2 (Yao) comparison: exhaustive vs minimal test counts.
#[must_use]
pub fn e3_yao_comparison(max_n: u64) -> Table {
    let mut t = Table::new(
        "E3 — test counts for the sorting property (§2, Yao's observation)",
        &[
            "n",
            "n!",
            "2^n",
            "2^n - n - 1",
            "C(n,⌊n/2⌋) - 1",
            "binary/permutation ratio",
        ],
    );
    for row in bounds::sorting_cost_table(max_n) {
        t.push_row(vec![
            row.n.to_string(),
            row.all_permutations.to_string(),
            row.all_binary.to_string(),
            row.minimal_binary.to_string(),
            row.minimal_permutation.to_string(),
            format!("{:.2}", bounds::permutation_savings_ratio(row.n)),
        ]);
    }
    t
}

/// E4 — Theorem 2.4(i): minimum 0/1 test sets for `(k, n)`-selection.
#[must_use]
pub fn e4_selector_binary(n: usize) -> Table {
    let mut t = Table::new(
        "E4 — minimum 0/1 test set for (k,n)-selection (Theorem 2.4 i)",
        &[
            "n",
            "k",
            "constructed |T|",
            "Σ C(n,i) - k - 1",
            "pruned selector passes",
            "empty network passes",
        ],
    );
    for k in 1..=n {
        let testset = selector::binary_testset(n, k);
        let formula = selector_testset_size_binary(n as u64, k as u64);
        let sel = pruned_selector(n, k);
        let good = selector::verify_selector_binary(&sel, k).passed;
        let bad = selector::verify_selector_binary(&Network::empty(n), k).passed;
        t.push_row(vec![
            n.to_string(),
            k.to_string(),
            testset.len().to_string(),
            formula.to_string(),
            good.to_string(),
            bad.to_string(),
        ]);
    }
    t
}

/// E5 — Theorem 2.4(ii): minimum permutation test sets for selection.
#[must_use]
pub fn e5_selector_permutation(n: usize) -> Table {
    let mut t = Table::new(
        "E5 — minimum permutation test set for (k,n)-selection (Theorem 2.4 ii)",
        &[
            "n",
            "k",
            "constructed |P|",
            "C(n,min(⌊n/2⌋,k)) - 1",
            "covers T_k^n",
        ],
    );
    for k in 1..=n {
        let testset = selector::permutation_testset(n, k);
        let formula = selector_testset_size_permutation(n as u64, k as u64);
        let covers = selector::is_permutation_testset(&testset, n, k);
        t.push_row(vec![
            n.to_string(),
            k.to_string(),
            testset.len().to_string(),
            formula.to_string(),
            covers.to_string(),
        ]);
    }
    t
}

/// E6 — Theorem 2.5: merging test sets (both alphabets).
#[must_use]
pub fn e6_merging(max_n: usize) -> Table {
    let mut t = Table::new(
        "E6 — minimum test sets for (n/2,n/2)-merging (Theorem 2.5)",
        &[
            "n",
            "constructed 0/1 |T|",
            "n²/4",
            "constructed perm |P|",
            "n/2",
            "odd-even merger passes",
            "empty network passes",
        ],
    );
    for n in (2..=max_n).step_by(2) {
        let binary = merging::binary_testset(n);
        let perms = merging::permutation_testset(n);
        let merger = half_half_merger(n);
        t.push_row(vec![
            n.to_string(),
            binary.len().to_string(),
            merging_testset_size_binary(n as u64).to_string(),
            perms.len().to_string(),
            merging_testset_size_permutation(n as u64).to_string(),
            merging::verify_merger_permutations(&merger)
                .passed
                .to_string(),
            merging::verify_merger_binary(&Network::empty(n))
                .passed
                .to_string(),
        ]);
    }
    t
}

/// E7 — Lemma 2.1: adversary-network survey (existence + size statistics).
#[must_use]
pub fn e7_adversary_survey(max_n: usize) -> Table {
    let mut t = Table::new(
        "E7 — Lemma 2.1 adversary networks H_σ (all unsorted σ verified exhaustively)",
        &[
            "n",
            "variant",
            "#networks",
            "min size",
            "max size",
            "mean size",
            "max depth",
        ],
    );
    for n in 3..=max_n {
        for (label, variant) in [
            ("compact", AdversaryVariant::Compact),
            ("paper", AdversaryVariant::Paper),
        ] {
            let stats = survey(n, variant);
            t.push_row(vec![
                n.to_string(),
                label.to_string(),
                stats.networks.to_string(),
                stats.min_size.to_string(),
                stats.max_size.to_string(),
                format!("{:.1}", stats.mean_size),
                stats.max_depth.to_string(),
            ]);
        }
    }
    t
}

/// E8 — §3 / de Bruijn: primitive networks need exactly one test.
#[must_use]
pub fn e8_primitive(max_n: usize) -> Table {
    let mut t = Table::new(
        "E8 — height-1 (primitive) networks: the single reverse-permutation test (§3)",
        &[
            "n",
            "class checked",
            "criterion = ground truth",
            "perm test set size",
            "0/1 test set size",
        ],
    );
    for n in 3..=max_n {
        // Exhaustively check all primitive networks with up to n+1 comparators.
        let mut checked = 0usize;
        let mut agree = true;
        for size in 0..=(n + 1).min(5) {
            for_each_network(n, 1, size, |net| {
                checked += 1;
                let by_single_test = sortnet_network::primitive::sorts_reverse_permutation(net);
                if by_single_test != is_sorter(net) {
                    agree = false;
                }
            });
        }
        t.push_row(vec![
            n.to_string(),
            format!("{checked} networks (≤ {} comparators)", (n + 1).min(5)),
            agree.to_string(),
            primitive::primitive_permutation_testset(n)
                .len()
                .to_string(),
            primitive::primitive_binary_testset(n).len().to_string(),
        ]);
    }
    t
}

/// E9 — test counts per verification strategy on concrete networks (the
/// wall-clock companion lives in `benches/bench_verification_cost.rs`).
#[must_use]
pub fn e9_verification_cost(max_n: usize) -> Table {
    let mut t = Table::new(
        "E9 — number of test evaluations to certify 'is a sorter' (per strategy)",
        &[
            "n",
            "network",
            "exhaustive 2^n",
            "minimal 0/1",
            "minimal permutations",
            "all agree",
        ],
    );
    for n in (4..=max_n).step_by(2) {
        for (label, net) in [
            ("Batcher merge-exchange", odd_even_merge_sort(n)),
            ("bubble sort", bubble_sort_network(n)),
            (
                "brick (n-2 rounds, not a sorter)",
                odd_even_transposition(n, n.saturating_sub(2)),
            ),
        ] {
            let ex = verify(&net, Property::Sorter, Strategy::Exhaustive);
            let mb = verify(&net, Property::Sorter, Strategy::MinimalBinary);
            let mp = verify(&net, Property::Sorter, Strategy::Permutation);
            let agree = ex.passed == mb.passed && mb.passed == mp.passed;
            t.push_row(vec![
                n.to_string(),
                label.to_string(),
                ex.tests_run.to_string(),
                mb.tests_run.to_string(),
                mp.tests_run.to_string(),
                agree.to_string(),
            ]);
        }
    }
    t
}

/// E10 — fault coverage: the paper's minimal sorting test set vs small
/// random input samples, against every standard fault universe
/// (single-comparator faults, stuck-at lines, fault pairs) of a Batcher
/// sorter.
///
/// Runs on the bit-parallel fault-simulation engine
/// ([`FaultSimEngine::BitParallel`]); the last column re-runs each row on
/// the scalar oracle and records that the two reports agree bit-for-bit.
/// The `undetectable` column is the universe's redundant-fault count — on
/// the richer universes (stuck lines, pairs) a nonzero value is expected
/// and the paper's "detects everything detectable" claim is judged by
/// `missed` alone.
#[must_use]
pub fn e10_fault_coverage(n: usize) -> Table {
    // The engines-agree column re-runs each row on the scalar oracle, so
    // the active lane-ops backend (scalar / portable / avx2) is itself
    // under test here — name it in the table title.
    let title = format!(
        "E10 — multi-universe fault coverage on Batcher's sorter (§1 VLSI motivation; lane backend: {})",
        sortnet_network::lanes::Backend::active().name()
    );
    let mut t = Table::new(
        &title,
        &[
            "n",
            "universe",
            "test sequence",
            "#tests",
            "#faults",
            "detected",
            "missed",
            "undetectable",
            "coverage",
            "mean tests to first detection",
            "engines agree",
        ],
    );
    let net = odd_even_merge_sort(n);
    let minimal = sorting::binary_testset(n);
    let perm_cover: Vec<BitString> = sorting::permutation_testset(n)
        .iter()
        .flat_map(Permutation::cover)
        .filter(|s| !s.is_sorted())
        .collect();
    let mut sampler = NetworkSampler::new(20_240_615);
    let random16: Vec<BitString> = (0..16).map(|_| sampler.random_input(n)).collect();
    let random64: Vec<BitString> = (0..64).map(|_| sampler.random_input(n)).collect();

    for universe in StandardUniverse::ALL {
        let sequences: Vec<(&str, &[BitString])> = match universe {
            StandardUniverse::SingleComparator => vec![
                ("minimal 0/1 test set", &minimal),
                ("covers of the permutation test set", &perm_cover),
                ("16 random inputs", &random16),
                ("64 random inputs", &random64),
            ],
            _ => vec![
                ("minimal 0/1 test set", &minimal),
                ("64 random inputs", &random64),
            ],
        };
        for (label, tests) in sequences {
            let report = coverage_of_universe_with(
                &net,
                &universe,
                tests,
                true,
                FaultSimEngine::BitParallel,
            );
            let oracle =
                coverage_of_universe_with(&net, &universe, tests, true, FaultSimEngine::Scalar);
            t.push_row(vec![
                n.to_string(),
                universe.name(),
                label.to_string(),
                tests.len().to_string(),
                report.total_faults.to_string(),
                report.detected.to_string(),
                report.missed.to_string(),
                report.redundant_faults.to_string(),
                format!("{:.3}", report.coverage),
                format!("{:.1}", report.mean_first_detection),
                (report == oracle).to_string(),
            ]);
        }
    }
    t
}

/// E2 companion: the `B(n, k)` family sanity sweep used by the experiments
/// binary (prefix-covering property across k).
#[must_use]
pub fn bnk_property_table(max_n: usize) -> Table {
    let mut t = Table::new(
        "B(n,k) prefix-covering family (Knuth ex. 6.5.1-1, built from symmetric chains)",
        &["n", "k", "|B(n,k)|", "prefix-covering property"],
    );
    for n in 2..=max_n {
        for k in 1..=n / 2 {
            let family = bnk::bnk_family(n, k);
            t.push_row(vec![
                n.to_string(),
                k.to_string(),
                family.len().to_string(),
                bnk::has_prefix_covering_property(&family, n, k).to_string(),
            ]);
        }
    }
    t
}

/// Runs every experiment with the default (fast) parameters and returns the
/// tables in order.  This is what the `experiments` binary prints and what
/// EXPERIMENTS.md records.
#[must_use]
pub fn all_default_tables() -> Vec<Table> {
    vec![
        e1_sorting_binary(10),
        e2_sorting_permutation(9),
        e3_yao_comparison(20),
        e4_selector_binary(10),
        e5_selector_permutation(8),
        e6_merging(16),
        e7_adversary_survey(9),
        e8_primitive(6),
        e9_verification_cost(12),
        e10_fault_coverage(8),
        bnk_property_table(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_matches_the_closed_form_everywhere() {
        let t = e1_sorting_binary(8);
        assert_eq!(t.len(), 7);
        let rendered = t.to_string();
        let data_rows: Vec<&str> = rendered
            .lines()
            .skip(4)
            .filter(|l| !l.trim().is_empty())
            .collect();
        assert_eq!(data_rows.len(), 7);
        assert!(data_rows.iter().all(|l| l.contains("true")));
    }

    #[test]
    fn e3_has_one_row_per_n() {
        assert_eq!(e3_yao_comparison(12).len(), 11);
    }

    #[test]
    fn e6_reports_pass_for_the_merger_and_fail_for_empty() {
        let s = e6_merging(8).to_string();
        for line in s.lines().skip(4).filter(|l| !l.trim().is_empty()) {
            let cols: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cols[cols.len() - 3], "true", "row: {line}");
            assert_eq!(cols[cols.len() - 2], "false", "row: {line}");
        }
    }

    #[test]
    fn e7_surveys_both_variants() {
        let t = e7_adversary_survey(5);
        assert_eq!(t.len(), 6); // n = 3,4,5 × 2 variants
    }

    #[test]
    fn e10_minimal_testset_has_full_coverage() {
        let s = e10_fault_coverage(6).to_string();
        let minimal_row = s
            .lines()
            .find(|l| l.contains("single-comparator") && l.contains("minimal 0/1"))
            .expect("row present");
        assert!(minimal_row.contains("1.000"));
    }

    #[test]
    fn e10_covers_every_standard_universe_and_engines_agree() {
        let s = e10_fault_coverage(6).to_string();
        for name in [
            "single-comparator",
            "stuck-line",
            "pairs(single-comparator)",
        ] {
            assert!(s.contains(name), "universe {name} missing:\n{s}");
        }
        for line in s.lines().skip(4).filter(|l| l.contains('|')) {
            let cols: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cols[cols.len() - 2], "true", "engines disagree: {line}");
        }
    }
}
