//! E6 — (n/2, n/2)-merging test sets (Theorem 2.5): the quadratic 0/1 set
//! (n²/4) against the linear permutation set (n/2) on Batcher's odd–even
//! merger.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_network::builders::batcher::half_half_merger;
use sortnet_testsets::merging;

fn bench_merger_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_merger_verification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 16, 32] {
        let merger = half_half_merger(n);
        group.bench_with_input(BenchmarkId::new("binary_n2_over_4", n), &n, |b, _| {
            b.iter(|| merging::verify_merger_binary(black_box(&merger)))
        });
        group.bench_with_input(BenchmarkId::new("permutation_n_over_2", n), &n, |b, _| {
            b.iter(|| merging::verify_merger_permutations(black_box(&merger)))
        });
    }
    group.finish();
}

fn bench_merging_testset_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_merging_testset_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [16usize, 32, 48] {
        group.bench_with_input(BenchmarkId::new("binary", n), &n, |b, &n| {
            b.iter(|| merging::binary_testset(black_box(n)))
        });
        group.bench_with_input(BenchmarkId::new("permutation", n), &n, |b, &n| {
            b.iter(|| merging::permutation_testset(black_box(n)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merger_verification,
    bench_merging_testset_construction
);
criterion_main!(benches);
