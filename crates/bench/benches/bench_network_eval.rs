//! Substrate ablation (DESIGN.md §6): scalar vs bit-parallel vs rayon
//! evaluation of the exhaustive 2^n zero–one sweep, and raw network
//! application throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sortnet_combinat::BitString;
use sortnet_network::bitparallel::{count_unsorted_outputs, is_sorter_exhaustive, ParallelismHint};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::builders::bubble::bubble_sort_network;

fn bench_exhaustive_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_exhaustive_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [12usize, 16, 20] {
        let net = odd_even_merge_sort(n);
        group.throughput(Throughput::Elements(1u64 << n));
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, &n| {
            b.iter(|| {
                BitString::all(n)
                    .filter(|s| !net.apply_bits(s).is_sorted())
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("bitparallel_sequential", n), &n, |b, _| {
            b.iter(|| is_sorter_exhaustive(black_box(&net), ParallelismHint::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("bitparallel_rayon", n), &n, |b, _| {
            b.iter(|| is_sorter_exhaustive(black_box(&net), ParallelismHint::Rayon))
        });
    }
    group.finish();
}

fn bench_failure_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_failure_counting");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [12usize, 16] {
        let nearly = bubble_sort_network(n).without_comparator(0);
        group.bench_with_input(BenchmarkId::new("count_unsorted_rayon", n), &n, |b, _| {
            b.iter(|| count_unsorted_outputs(black_box(&nearly), ParallelismHint::Rayon))
        });
    }
    group.finish();
}

fn bench_single_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_single_application");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [16usize, 64] {
        let net = odd_even_merge_sort(n);
        let input: Vec<u32> = (0..n as u32).rev().collect();
        group.bench_with_input(BenchmarkId::new("apply_vec_u32", n), &n, |b, _| {
            b.iter(|| net.apply_vec(black_box(&input)))
        });
        if n <= 32 {
            let bits = BitString::from_word(0xAAAA_AAAA, n.min(32));
            group.bench_with_input(BenchmarkId::new("apply_bits", n), &n, |b, _| {
                b.iter(|| net.apply_bits(black_box(&bits)))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exhaustive_sweep,
    bench_failure_counting,
    bench_single_application
);
criterion_main!(benches);
