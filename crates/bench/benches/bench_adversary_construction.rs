//! E7 — cost of building and checking the Lemma 2.1 adversary networks,
//! comparing the compact construction with the paper-layout reconstruction
//! (ablation called out in DESIGN.md §6).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_combinat::BitString;
use sortnet_testsets::adversary::{adversary_network, fails_exactly_on, AdversaryVariant};

fn worst_case_sigma(n: usize) -> BitString {
    // Alternating strings exercise the deepest recursion of the construction.
    let mut bits = vec![false; n];
    for (i, b) in bits.iter_mut().enumerate() {
        *b = i % 2 == 0;
    }
    BitString::from_bits(&bits)
}

fn bench_single_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_single_adversary_construction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 16, 32] {
        let sigma = worst_case_sigma(n);
        for (label, variant) in [
            ("compact", AdversaryVariant::Compact),
            ("paper", AdversaryVariant::Paper),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| adversary_network(black_box(&sigma), variant))
            });
        }
    }
    group.finish();
}

fn bench_all_adversaries_for_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_all_adversaries");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [6usize, 8] {
        group.bench_with_input(BenchmarkId::new("build_all", n), &n, |b, &n| {
            b.iter(|| {
                BitString::all_unsorted(n)
                    .map(|s| adversary_network(&s, AdversaryVariant::Compact).size())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("build_and_verify_all", n), &n, |b, &n| {
            b.iter(|| {
                BitString::all_unsorted(n)
                    .filter(|s| {
                        fails_exactly_on(&adversary_network(s, AdversaryVariant::Compact), s)
                    })
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_adversary, bench_all_adversaries_for_n);
criterion_main!(benches);
