//! `multiword_sweep` — the first perf datapoints past the 64-line wall.
//!
//! The `multiword_sweep` group times the packed (`ChannelVec`) engine on
//! Batcher sorters at n ∈ {65, 96, 128} (one line over the word seam,
//! mid-word, exactly two full words): the stuck-line detection matrix
//! against the n + 1 sorted strings at W ∈ {1, 4}, the full stuck-line
//! coverage report, and the certified augmentation search over an explicit
//! candidate pool (matrix streaming + exact set cover, starting from a
//! precomputed missed-fault list — redundancy sweeps are exhaustive `2^n`
//! and stay out of multi-word benches).  The `monomorphised_baseline`
//! group pins the n = 64 single-word cost three ways — the legacy
//! `BitString` entry point, `P = BitString` through the packed delegators,
//! and `P = ChannelVec` with one channel word — so a regression of the
//! n ≤ 64 fast path or an overhead in the word-generic layer shows up as
//! a ratio between adjacent records.  Matrix benches are annotated with
//! the universe size (`elements` in the JSON) for per-fault throughput.
//! The criterion shim writes `target/bench-summaries/multiword_sweep.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sortnet_combinat::{BitString, ChannelPack, ChannelVec};
use sortnet_faults::bitsim::{detection_matrix_multi_on, detection_matrix_multi_packed_on};
use sortnet_faults::coverage::coverage_of_universe_packed_with;
use sortnet_faults::universe::{FaultUniverse, MultiFault, StandardUniverse};
use sortnet_faults::FaultSimEngine;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::{Backend, LaneWidth};
use sortnet_testsets::augment::{augmentation_for_missed_packed, CandidatePool, SearchOptions};

/// The n + 1 sorted zero–one strings `0^n, 0^(n-1)1, …, 1^n` in the
/// universal multi-word packing.
fn sorted_strings(n: usize) -> Vec<ChannelVec> {
    (0..=n)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn bench_multiword_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiword_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [65usize, 96, 128] {
        let net = odd_even_merge_sort(n);
        let tests = sorted_strings(n);
        let faults: Vec<MultiFault> = StandardUniverse::StuckLine.iter(&net).collect();
        group.throughput(Throughput::Elements(faults.len() as u64));
        for (label, width) in [
            ("matrix_stuck_line_w1", 1usize),
            ("matrix_stuck_line_w4", 4),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| match width {
                    1 => detection_matrix_multi_packed_on::<1, ChannelVec>(
                        black_box(&net),
                        black_box(&faults),
                        black_box(&tests),
                        Backend::active(),
                    ),
                    _ => detection_matrix_multi_packed_on::<4, ChannelVec>(
                        black_box(&net),
                        black_box(&faults),
                        black_box(&tests),
                        Backend::active(),
                    ),
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("coverage_stuck_line_w4", n), &n, |b, _| {
            b.iter(|| {
                coverage_of_universe_packed_with(
                    black_box(&net),
                    &StandardUniverse::StuckLine,
                    black_box(&tests),
                    false,
                    FaultSimEngine::BitParallelWide(LaneWidth::W4),
                )
            })
        });
    }

    // Certified augmentation search on the 96-line acceptance workload:
    // the missed-fault list is precomputed (no redundancy sweep — that
    // would be an exhaustive 2^96 pass), so the bench times the streamed
    // candidates × missed matrix plus the exact set-cover search.
    let n = 96usize;
    let net = odd_even_merge_sort(n);
    let base = sorted_strings(n);
    let report = coverage_of_universe_packed_with(
        &net,
        &StandardUniverse::StuckLine,
        &base,
        false,
        FaultSimEngine::BitParallelWide(LaneWidth::W4),
    );
    let pool = CandidatePool::Explicit(vec![
        ChannelVec::zeros(n),
        ChannelVec::ones(n),
        ChannelVec::from_fn(n, |i| i % 2 == 0),
        ChannelVec::from_fn(n, |i| i < 48),
    ]);
    group.throughput(Throughput::Elements(report.missed_faults.len() as u64));
    group.bench_with_input(BenchmarkId::new("augment_search", n), &n, |b, _| {
        b.iter(|| {
            augmentation_for_missed_packed(
                black_box(&net),
                black_box(&report.missed_faults),
                &pool,
                &SearchOptions::default(),
            )
        })
    });
    group.finish();
}

fn bench_monomorphised_baseline(c: &mut Criterion) {
    // The n = 64 single-word workload three ways.  `legacy_bitstring` is
    // the pre-existing entry point (the monomorphised fast path the
    // n ≤ 64 benches rely on); `packed_bitstring` is the same workload
    // through the packing-generic delegators; `packed_channelvec` pays
    // the one-channel-word `Vec<u64>` layout.  The first two must stay
    // within noise of each other — the delegator is a plain call.
    let mut group = c.benchmark_group("monomorphised_baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 64usize;
    let net = odd_even_merge_sort(n);
    let faults: Vec<MultiFault> = StandardUniverse::StuckLine.iter(&net).collect();
    let bit_tests: Vec<BitString> = (0..=n)
        .map(|ones| BitString::sorted_of(n - ones, ones))
        .collect();
    let channel_tests: Vec<ChannelVec> = bit_tests
        .iter()
        .map(|&t| ChannelVec::from_bitstring(t))
        .collect();
    group.throughput(Throughput::Elements(faults.len() as u64));
    group.bench_with_input(BenchmarkId::new("legacy_bitstring_w4", n), &n, |b, _| {
        b.iter(|| {
            detection_matrix_multi_on::<4>(
                black_box(&net),
                black_box(&faults),
                black_box(&bit_tests),
                Backend::active(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("packed_bitstring_w4", n), &n, |b, _| {
        b.iter(|| {
            detection_matrix_multi_packed_on::<4, BitString>(
                black_box(&net),
                black_box(&faults),
                black_box(&bit_tests),
                Backend::active(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("packed_channelvec_w4", n), &n, |b, _| {
        b.iter(|| {
            detection_matrix_multi_packed_on::<4, ChannelVec>(
                black_box(&net),
                black_box(&faults),
                black_box(&channel_tests),
                Backend::active(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_multiword_sweep, bench_monomorphised_baseline);
criterion_main!(benches);
