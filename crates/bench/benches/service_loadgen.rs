//! `service_loadgen` — load-generator replay against the oracle service.
//!
//! Not a criterion micro-bench: the unit of interest is the **served
//! query**, so this binary starts a real [`Service`] (workers, queue,
//! caches), replays the seeded mixed workload from
//! `sortnet_service::loadgen` (hot repeats, cold networks, `n > 64`
//! packed queries, starved budgets) and writes the latency/throughput
//! summary to `target/bench-summaries/service_loadgen.json` — the same
//! summary directory the criterion shim uses, resolved the same way.
//!
//! Every response is cross-checked against the cold path; the process
//! exits non-zero on any mismatch, which is what the CI smoke job
//! asserts.  Knobs: `SERVICE_LOADGEN_QUERIES` (default 400),
//! `SERVICE_LOADGEN_SEED` (default the repo's pinned grinder seed),
//! `BENCH_SUMMARY_PATH` (explicit output file).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sortnet_service::loadgen::{run, LoadgenOptions};
use sortnet_service::ServiceConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = raw
                .strip_prefix("0x")
                .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or_else(|_| panic!("{name} must be an integer, got {raw:?}"))
        }
        Err(_) => default,
    }
}

/// `target/bench-summaries/service_loadgen.json`, resolved from the
/// bench executable's location (cargo runs benches with the package
/// directory as CWD, so a relative path would land in the wrong place).
fn summary_path() -> PathBuf {
    if let Ok(explicit) = std::env::var("BENCH_SUMMARY_PATH") {
        return PathBuf::from(explicit);
    }
    let target = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(Path::to_path_buf)
        })
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("bench-summaries").join("service_loadgen.json")
}

fn main() -> ExitCode {
    let options = LoadgenOptions {
        seed: env_u64("SERVICE_LOADGEN_SEED", 0xC0FF_EE00_5EED),
        queries: env_u64("SERVICE_LOADGEN_QUERIES", 400) as usize,
        ..LoadgenOptions::default()
    };
    let config = ServiceConfig::default();
    let summary = run(&config, &options);
    let json = summary.to_json();
    print!("{json}");

    let path = summary_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("service_loadgen: summary written to {}", path.display()),
        Err(e) => eprintln!("service_loadgen: could not write {}: {e}", path.display()),
    }

    if summary.mismatches > 0 {
        eprintln!(
            "service_loadgen: {} answer(s) differed from the cold path",
            summary.mismatches
        );
        return ExitCode::FAILURE;
    }
    if summary.hits == 0 {
        eprintln!("service_loadgen: hot repeats produced no cache hits");
        return ExitCode::FAILURE;
    }
    if summary.refusals > 0 {
        // No deadlines, no failpoints, a queue far deeper than the
        // workload: any typed refusal here is a robustness regression.
        eprintln!(
            "service_loadgen: {} request(s) refused under a calm load",
            summary.refusals
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
