//! E10 — fault-simulation throughput: running the paper's minimal test set
//! and random samples against the single-fault universe of Batcher sorters.
//!
//! The `engine_comparison` group races the scalar engine (one fault × one
//! test per call) against the bit-parallel engine (64 tests per pass with
//! shared-prefix forking) on the same workload — Batcher's merge-exchange
//! sorter with the Theorem 2.2 minimal 0/1 test set (`2^n − n − 1` tests) —
//! at n ∈ {8, 16}.  The criterion shim writes the measurements to
//! `target/bench-summaries/bench_fault_coverage.json` for the `BENCH_*`
//! perf trajectory; the `speedup` bench-id pair is the PR's acceptance
//! measurement (bit-parallel must be ≥ 5× faster at n = 16).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_combinat::BitString;
use sortnet_faults::{coverage_of_tests, coverage_of_tests_with, FaultSimEngine};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::random::NetworkSampler;
use sortnet_testsets::sorting;

fn bench_fault_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fault_coverage");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 10] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        let mut sampler = NetworkSampler::new(1);
        let random: Vec<BitString> = (0..minimal.len())
            .map(|_| sampler.random_input(n))
            .collect();
        group.bench_with_input(BenchmarkId::new("minimal_testset", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&minimal), false))
        });
        group.bench_with_input(BenchmarkId::new("random_same_budget", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&random), false))
        });
    }
    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_comparison");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [8usize, 16] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        for (label, engine) in [
            ("scalar", FaultSimEngine::Scalar),
            ("bitparallel", FaultSimEngine::BitParallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    coverage_of_tests_with(black_box(&net), black_box(&minimal), true, engine)
                })
            });
        }
    }
    group.finish();
}

fn bench_engine_comparison_no_redundancy(c: &mut Criterion) {
    // Pure simulation throughput: no redundancy sweeps, so the comparison
    // isolates the 64-lane + shared-prefix win on the detection scan itself.
    let mut group = c.benchmark_group("engine_comparison_no_redundancy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [8usize, 16] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        for (label, engine) in [
            ("scalar", FaultSimEngine::Scalar),
            ("bitparallel", FaultSimEngine::BitParallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    coverage_of_tests_with(black_box(&net), black_box(&minimal), false, engine)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_coverage,
    bench_engine_comparison,
    bench_engine_comparison_no_redundancy
);
criterion_main!(benches);
