//! E10 — fault-simulation throughput: running the paper's minimal test set
//! and random samples against the single-fault universe of Batcher sorters.
//!
//! The `engine_comparison` group races the scalar engine (one fault × one
//! test per call) against the bit-parallel engine (64 tests per pass with
//! shared-prefix forking) on the same workload — Batcher's merge-exchange
//! sorter with the Theorem 2.2 minimal 0/1 test set (`2^n − n − 1` tests) —
//! at n ∈ {8, 16}.  The `lane_width_sweep` group races lane widths
//! W ∈ {1, 2, 4} on the same coverage workload and on the plain exhaustive
//! `2^n` sorter sweep at n ∈ {16, 20}.  The criterion shim writes the
//! measurements to `target/bench-summaries/bench_fault_coverage.json` for
//! the `BENCH_*` perf trajectory.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_combinat::BitString;
use sortnet_faults::{
    coverage_of_tests, coverage_of_tests_with, coverage_of_universe_with, FaultSimEngine,
    StandardUniverse,
};
use sortnet_network::bitparallel::{is_sorter_exhaustive_wide, ParallelismHint};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::LaneWidth;
use sortnet_network::random::NetworkSampler;
use sortnet_testsets::sorting;

fn bench_fault_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fault_coverage");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 10] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        let mut sampler = NetworkSampler::new(1);
        let random: Vec<BitString> = (0..minimal.len())
            .map(|_| sampler.random_input(n))
            .collect();
        group.bench_with_input(BenchmarkId::new("minimal_testset", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&minimal), false))
        });
        group.bench_with_input(BenchmarkId::new("random_same_budget", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&random), false))
        });
    }
    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_comparison");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [8usize, 16] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        for (label, engine) in [
            ("scalar", FaultSimEngine::Scalar),
            ("bitparallel", FaultSimEngine::BitParallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    coverage_of_tests_with(black_box(&net), black_box(&minimal), true, engine)
                })
            });
        }
    }
    group.finish();
}

fn bench_engine_comparison_no_redundancy(c: &mut Criterion) {
    // Pure simulation throughput: no redundancy sweeps, so the comparison
    // isolates the 64-lane + shared-prefix win on the detection scan itself.
    let mut group = c.benchmark_group("engine_comparison_no_redundancy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [8usize, 16] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        for (label, engine) in [
            ("scalar", FaultSimEngine::Scalar),
            ("bitparallel", FaultSimEngine::BitParallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    coverage_of_tests_with(black_box(&net), black_box(&minimal), false, engine)
                })
            });
        }
    }
    group.finish();
}

fn bench_lane_width_sweep(c: &mut Criterion) {
    // The PR's acceptance measurement: the same workloads at lane widths
    // W ∈ {1, 2, 4}.  `coverage` runs the Theorem 2.2 minimal test set
    // against the full single-fault universe (with redundancy sweeps for
    // missed faults); `verify_exhaustive` is the plain `2^n` zero–one
    // sorter sweep.  Sequential hints so the comparison isolates the lane
    // width from thread-pool effects.
    let mut group = c.benchmark_group("lane_width_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let n = 16usize;
    let net = odd_even_merge_sort(n);
    let minimal = sorting::binary_testset(n);
    for (label, width) in [
        ("coverage_w1", LaneWidth::W1),
        ("coverage_w2", LaneWidth::W2),
        ("coverage_w4", LaneWidth::W4),
    ] {
        let engine = FaultSimEngine::BitParallelWide(width);
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| coverage_of_tests_with(black_box(&net), black_box(&minimal), true, engine))
        });
    }

    for vn in [16usize, 20] {
        let vnet = odd_even_merge_sort(vn);
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w1", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<1>(black_box(&vnet), ParallelismHint::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w2", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<2>(black_box(&vnet), ParallelismHint::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w4", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<4>(black_box(&vnet), ParallelismHint::Sequential))
        });
    }
    group.finish();
}

fn bench_universe_sweep(c: &mut Criterion) {
    // Multi-fault universes on the bit-parallel engine: the stuck-line
    // universe (linear in the network) and the quadratic pair universes,
    // all with the Theorem 2.2 minimal test set and redundancy
    // classification via the shared-prefix batch sweep.
    let mut group = c.benchmark_group("universe_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let n = 8usize;
    let net = odd_even_merge_sort(n);
    let minimal = sorting::binary_testset(n);
    for universe in StandardUniverse::ALL {
        let label = match universe {
            StandardUniverse::SingleComparator => "single",
            StandardUniverse::StuckLine => "stuck_line",
            StandardUniverse::SingleComparatorPairs => "single_pairs",
            StandardUniverse::StuckLinePairs => "stuck_line_pairs",
        };
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                coverage_of_universe_with(
                    black_box(&net),
                    &universe,
                    black_box(&minimal),
                    true,
                    FaultSimEngine::BitParallel,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_coverage,
    bench_engine_comparison,
    bench_engine_comparison_no_redundancy,
    bench_lane_width_sweep,
    bench_universe_sweep
);
criterion_main!(benches);
