//! E10 — fault-simulation throughput: running the paper's minimal test set
//! and random samples against the single-fault universe of Batcher sorters.
//!
//! The `engine_comparison` group races the scalar engine (one fault × one
//! test per call) against the bit-parallel engine (64 tests per pass with
//! shared-prefix forking) on the same workload — Batcher's merge-exchange
//! sorter with the Theorem 2.2 minimal 0/1 test set (`2^n − n − 1` tests) —
//! at n ∈ {8, 16}.  The `lane_width_sweep` group races lane widths
//! W ∈ {1, 2, 4, 8, 16} on the same coverage workload and on the plain
//! exhaustive `2^n` sorter sweep at n ∈ {16, 20} — the W sweet-spot study.
//! The `simd_backend` group races the lane-ops backends (scalar /
//! portable-chunked / AVX2 where the CPU has it) on the exhaustive sweep
//! and on the two-level pair-universe redundancy sweep; `universe_sweep`
//! covers the multi-fault universes with per-fault throughput annotations
//! (`elements` = universe size in the JSON) so universes of different
//! sizes are comparable; `augmentation_search` times the certified
//! minimal-augmentation pipeline (coverage + streamed candidate matrix +
//! exact set cover) on the stuck-line universes.  The criterion shim
//! writes the measurements to
//! `target/bench-summaries/bench_fault_coverage.json` for the `BENCH_*`
//! perf trajectory.

// The legacy panicking wrappers stay exercised here until stage 3 of the
// deprecation path (docs/ERRORS.md) reclaims them.
#![allow(deprecated)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sortnet_combinat::BitString;
use sortnet_faults::universe::FaultUniverse;
use sortnet_faults::{
    coverage_of_tests, coverage_of_tests_with, coverage_of_universe_with,
    redundant_faults_multi_on, FaultSimEngine, MultiFault, StandardUniverse,
};
use sortnet_network::bitparallel::{
    is_sorter_exhaustive_backend, is_sorter_exhaustive_wide, ParallelismHint,
};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::{Backend, LaneWidth};
use sortnet_network::random::NetworkSampler;
use sortnet_testsets::augment::{
    minimum_augmentation, CandidatePool, SearchOptions, SuggestAugmentation,
};
use sortnet_testsets::sorting;

fn bench_fault_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fault_coverage");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 10] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        let mut sampler = NetworkSampler::new(1);
        let random: Vec<BitString> = (0..minimal.len())
            .map(|_| sampler.random_input(n))
            .collect();
        group.bench_with_input(BenchmarkId::new("minimal_testset", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&minimal), false))
        });
        group.bench_with_input(BenchmarkId::new("random_same_budget", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&random), false))
        });
    }
    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_comparison");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [8usize, 16] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        for (label, engine) in [
            ("scalar", FaultSimEngine::Scalar),
            ("bitparallel", FaultSimEngine::BitParallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    coverage_of_tests_with(black_box(&net), black_box(&minimal), true, engine)
                })
            });
        }
    }
    group.finish();
}

fn bench_engine_comparison_no_redundancy(c: &mut Criterion) {
    // Pure simulation throughput: no redundancy sweeps, so the comparison
    // isolates the 64-lane + shared-prefix win on the detection scan itself.
    let mut group = c.benchmark_group("engine_comparison_no_redundancy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [8usize, 16] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        for (label, engine) in [
            ("scalar", FaultSimEngine::Scalar),
            ("bitparallel", FaultSimEngine::BitParallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    coverage_of_tests_with(black_box(&net), black_box(&minimal), false, engine)
                })
            });
        }
    }
    group.finish();
}

fn bench_lane_width_sweep(c: &mut Criterion) {
    // The W sweet-spot study: the same workloads at lane widths
    // W ∈ {1, 2, 4, 8, 16}.  `coverage` runs the Theorem 2.2 minimal test
    // set against the full single-fault universe (with redundancy sweeps
    // for missed faults); `verify_exhaustive` is the plain `2^n` zero–one
    // sorter sweep.  Sequential hints so the comparison isolates the lane
    // width from thread-pool effects; the runtime-detected backend (AVX2
    // here where available) applies to every width equally.
    let mut group = c.benchmark_group("lane_width_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let n = 16usize;
    let net = odd_even_merge_sort(n);
    let minimal = sorting::binary_testset(n);
    for (label, width) in [
        ("coverage_w1", LaneWidth::W1),
        ("coverage_w2", LaneWidth::W2),
        ("coverage_w4", LaneWidth::W4),
        ("coverage_w8", LaneWidth::W8),
        ("coverage_w16", LaneWidth::W16),
    ] {
        let engine = FaultSimEngine::BitParallelWide(width);
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| coverage_of_tests_with(black_box(&net), black_box(&minimal), true, engine))
        });
    }

    for vn in [16usize, 20] {
        let vnet = odd_even_merge_sort(vn);
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w1", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<1>(black_box(&vnet), ParallelismHint::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w2", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<2>(black_box(&vnet), ParallelismHint::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w4", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<4>(black_box(&vnet), ParallelismHint::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("verify_exhaustive_w8", vn), &vn, |b, _| {
            b.iter(|| is_sorter_exhaustive_wide::<8>(black_box(&vnet), ParallelismHint::Sequential))
        });
        group.bench_with_input(
            BenchmarkId::new("verify_exhaustive_w16", vn),
            &vn,
            |b, _| {
                b.iter(|| {
                    is_sorter_exhaustive_wide::<16>(black_box(&vnet), ParallelismHint::Sequential)
                })
            },
        );
    }
    group.finish();
}

fn bench_simd_backend(c: &mut Criterion) {
    // The lane-ops backends head to head, on the CPU's runnable set (the
    // scalar reference and the portable chunked path everywhere; AVX2 on
    // x86_64 CPUs that have it).  Two workloads: the n = 20 exhaustive
    // zero–one sweep at W ∈ {4, 8} (pure comparator throughput) and the
    // two-level pairs(stuck-line) batch redundancy sweep on Batcher n = 8
    // (fork-heavy; the PR acceptance workload).
    let mut group = c.benchmark_group("simd_backend");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let vnet = odd_even_merge_sort(20);
    let net8 = odd_even_merge_sort(8);
    let stuck_pairs: Vec<MultiFault> = StandardUniverse::StuckLinePairs.iter(&net8).collect();
    // The verify benches run before any throughput annotation is set: the
    // shim's throughput is sticky group state, and only the pair sweeps
    // below are per-fault workloads.
    for backend in Backend::runnable() {
        group.bench_with_input(
            BenchmarkId::new(format!("verify_n20_w4_{}", backend.name()), 20),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    is_sorter_exhaustive_backend::<4>(
                        black_box(&vnet),
                        ParallelismHint::Sequential,
                        backend,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("verify_n20_w8_{}", backend.name()), 20),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    is_sorter_exhaustive_backend::<8>(
                        black_box(&vnet),
                        ParallelismHint::Sequential,
                        backend,
                    )
                })
            },
        );
    }
    group.throughput(Throughput::Elements(stuck_pairs.len() as u64));
    for backend in Backend::runnable() {
        group.bench_with_input(
            BenchmarkId::new(format!("pairs_redundancy_n8_{}", backend.name()), 8),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    redundant_faults_multi_on::<4>(
                        black_box(&net8),
                        black_box(&stuck_pairs),
                        backend,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_universe_sweep(c: &mut Criterion) {
    // Multi-fault universes on the bit-parallel engine: the stuck-line
    // universe (linear in the network) and the quadratic pair universes,
    // all with the Theorem 2.2 minimal test set and redundancy
    // classification via the shared-prefix batch sweep.  Each benchmark is
    // annotated with its universe size (`elements` in the JSON), so the
    // JSON consumer can normalise to per-fault throughput — universes
    // differ by two orders of magnitude, and per-run times are not
    // comparable across them.
    let mut group = c.benchmark_group("universe_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let n = 8usize;
    let net = odd_even_merge_sort(n);
    let minimal = sorting::binary_testset(n);
    for universe in StandardUniverse::ALL {
        let label = match universe {
            StandardUniverse::SingleComparator => "single",
            StandardUniverse::StuckLine => "stuck_line",
            StandardUniverse::SingleComparatorPairs => "single_pairs",
            StandardUniverse::StuckLinePairs => "stuck_line_pairs",
        };
        group.throughput(Throughput::Elements(universe.len(&net) as u64));
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                coverage_of_universe_with(
                    black_box(&net),
                    &universe,
                    black_box(&minimal),
                    true,
                    FaultSimEngine::BitParallel,
                )
            })
        });
    }
    group.finish();
}

fn bench_augmentation_search(c: &mut Criterion) {
    // The minimal-augmentation pipeline on the PR acceptance workloads:
    // Batcher n = 8 with the Theorem 2.2 minimal set, stuck-line and
    // pairs(stuck-line) universes, exhaustive 2^n candidate pool.
    // `end_to_end` includes the coverage + redundancy run; `search_only`
    // starts from a prebuilt coverage report (the streamed candidate
    // matrix + certified set-cover search), annotated with the number of
    // missed faults the cover spans (`elements` in the JSON).
    let mut group = c.benchmark_group("augmentation_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 8usize;
    let net = odd_even_merge_sort(n);
    let minimal = sorting::binary_testset(n);
    let workloads = [
        ("stuck_line", StandardUniverse::StuckLine),
        ("stuck_line_pairs", StandardUniverse::StuckLinePairs),
    ];
    // The unannotated end-to-end benches run before any throughput is set
    // (the shim's throughput is sticky group state).
    for (label, universe) in workloads {
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_end_to_end"), n),
            &universe,
            |b, universe| {
                b.iter(|| {
                    minimum_augmentation(
                        black_box(&net),
                        universe,
                        black_box(&minimal),
                        &CandidatePool::Exhaustive,
                        &SearchOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    for (label, universe) in workloads {
        let report =
            coverage_of_universe_with(&net, &universe, &minimal, true, FaultSimEngine::BitParallel);
        group.throughput(Throughput::Elements(report.missed_faults.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_search_only"), n),
            &report,
            |b, report| {
                b.iter(|| {
                    report
                        .suggest_augmentation(
                            black_box(&net),
                            &CandidatePool::Exhaustive,
                            &SearchOptions::default(),
                        )
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_coverage,
    bench_engine_comparison,
    bench_engine_comparison_no_redundancy,
    bench_lane_width_sweep,
    bench_simd_backend,
    bench_universe_sweep,
    bench_augmentation_search
);
criterion_main!(benches);
