//! E10 — fault-simulation throughput: running the paper's minimal test set
//! and random samples against the single-fault universe of Batcher sorters.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_combinat::BitString;
use sortnet_faults::coverage_of_tests;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::random::NetworkSampler;
use sortnet_testsets::sorting;

fn bench_fault_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fault_coverage");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [8usize, 10] {
        let net = odd_even_merge_sort(n);
        let minimal = sorting::binary_testset(n);
        let mut sampler = NetworkSampler::new(1);
        let random: Vec<BitString> = (0..minimal.len()).map(|_| sampler.random_input(n)).collect();
        group.bench_with_input(BenchmarkId::new("minimal_testset", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&minimal), false))
        });
        group.bench_with_input(BenchmarkId::new("random_same_budget", n), &n, |b, _| {
            b.iter(|| coverage_of_tests(black_box(&net), black_box(&random), false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_coverage);
criterion_main!(benches);
