//! E9 — wall-clock cost of deciding "is this network a sorter?" with the
//! three strategies whose test counts the paper bounds: exhaustive 2^n,
//! the minimal 0/1 test set (2^n − n − 1), and the optimal permutation test
//! set (C(n, ⌊n/2⌋) − 1).
//!
//! The paper's point (§2, Yao's observation) is that permutation test sets
//! are asymptotically smaller; this bench shows the corresponding wall-clock
//! ordering on real sorters and near-sorters.

// The legacy panicking wrappers stay exercised here until stage 3 of the
// deprecation path (docs/ERRORS.md) reclaims them.
#![allow(deprecated)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::builders::transposition::odd_even_transposition;
use sortnet_testsets::verify::{verify, Property, Strategy};

fn bench_sorter_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_sorter_verification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 12, 16] {
        let sorter = odd_even_merge_sort(n);
        for (label, strategy) in [
            ("exhaustive_2^n", Strategy::Exhaustive),
            ("minimal_binary", Strategy::MinimalBinary),
            ("permutation", Strategy::Permutation),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| verify(black_box(&sorter), Property::Sorter, strategy))
            });
        }
    }
    group.finish();
}

fn bench_rejecting_a_non_sorter(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_non_sorter_rejection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 12] {
        // One round short of sorting: a "nearly correct" network, the hard
        // case for randomised testing and the motivating case for test sets.
        let almost = odd_even_transposition(n, n - 1);
        for (label, strategy) in [
            ("exhaustive_2^n", Strategy::Exhaustive),
            ("minimal_binary", Strategy::MinimalBinary),
            ("permutation", Strategy::Permutation),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| verify(black_box(&almost), Property::Sorter, strategy))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sorter_verification,
    bench_rejecting_a_non_sorter
);
criterion_main!(benches);
