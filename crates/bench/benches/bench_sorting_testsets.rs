//! E1/E2 — cost of *constructing* the minimum sorting test sets
//! (Theorem 2.2): the 0/1 set of all unsorted strings and the permutation
//! set built from B(n, ⌊n/2⌋) via symmetric chains.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_testsets::sorting;

fn bench_binary_testset_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_binary_testset_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sorting::binary_testset(black_box(n)))
        });
    }
    group.finish();
}

fn bench_permutation_testset_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_permutation_testset_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sorting::permutation_testset(black_box(n)))
        });
    }
    group.finish();
}

fn bench_testset_validity_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_testset_validity_check");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 10] {
        let ts = sorting::permutation_testset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sorting::is_permutation_testset(black_box(&ts), n))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_binary_testset_construction,
    bench_permutation_testset_construction,
    bench_testset_validity_check
);
criterion_main!(benches);
