//! `packed_families` — the cost of the structured-family layer past the
//! 64-line wall.
//!
//! The `family_fill` group times draining each [`PackedFamily`] through
//! [`FamilySource`]'s direct block fill at W = 4 against the scalar
//! per-index materialisation ([`PackedFamily::collect`]) on the same
//! family — the ratio is what the range-mask fill buys over assembling
//! every vector bit by bit.  n ∈ {96, 128} (mid-word and exactly two
//! channel words); `elements` in the JSON is the family size.
//!
//! The `relative_redundancy` group times the n = 96 acceptance
//! workload: a stuck-line coverage report over the Batcher sorter with
//! redundancy graded [`RedundancyMode::Skip`] versus
//! [`RedundancyMode::RelativeTo`] the sorted strings — the increment is
//! the per-missed-fault family sweep, the thing that replaces the
//! inadmissible exhaustive `2^96` redundancy pass.
//!
//! The criterion shim writes `target/bench-summaries/packed_families.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sortnet_combinat::ChannelVec;
use sortnet_faults::coverage::{coverage_of_universe_packed_with, RedundancyMode};
use sortnet_faults::universe::StandardUniverse;
use sortnet_faults::FaultSimEngine;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::{collect_packed, FamilySource, LaneWidth, PackedFamily};

fn bench_family_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_fill");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [96usize, 128] {
        for family in [
            PackedFamily::SortedStrings,
            PackedFamily::WeightAtMost(2),
            PackedFamily::SingleRuns,
            PackedFamily::NecessityWitnesses,
        ] {
            group.throughput(Throughput::Elements(family.len(n)));
            group.bench_with_input(
                BenchmarkId::new(format!("block_fill_{family}_w4"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        collect_packed::<4, ChannelVec, _>(FamilySource::<ChannelVec>::new(
                            black_box(family),
                            n,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scalar_collect_{family}"), n),
                &n,
                |b, &n| b.iter(|| black_box(family).collect::<ChannelVec>(n)),
            );
        }
    }
    group.finish();
}

fn bench_relative_redundancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("relative_redundancy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 96usize;
    let net = odd_even_merge_sort(n);
    let tests: Vec<ChannelVec> = PackedFamily::SortedStrings.collect(n);
    for (label, mode) in [
        ("skip", RedundancyMode::Skip),
        (
            "relative_sorted_strings",
            RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                coverage_of_universe_packed_with(
                    black_box(&net),
                    &StandardUniverse::StuckLine,
                    black_box(&tests),
                    mode,
                    FaultSimEngine::BitParallelWide(LaneWidth::W4),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_family_fill, bench_relative_redundancy);
criterion_main!(benches);
