//! E4/E5 — (k, n)-selector test sets (Theorem 2.4): construction cost and
//! verification cost against pruned selection networks, swept over k.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sortnet_network::builders::selection::pruned_selector;
use sortnet_testsets::selector;

fn bench_selector_testset_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_selector_testset_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 14;
    for k in [1usize, 3, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| selector::binary_testset(black_box(n), k))
        });
    }
    group.finish();
}

fn bench_selector_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_selector_verification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 12;
    for k in [2usize, 4, 6] {
        let net = pruned_selector(n, k);
        group.bench_with_input(BenchmarkId::new("binary_testset", k), &k, |b, &k| {
            b.iter(|| selector::verify_selector_binary(black_box(&net), k))
        });
        group.bench_with_input(BenchmarkId::new("permutation_testset", k), &k, |b, &k| {
            b.iter(|| selector::verify_selector_permutations(black_box(&net), k))
        });
    }
    group.finish();
}

fn bench_selector_network_construction(c: &mut Criterion) {
    // Ablation: pruned selectors vs full sorters (DESIGN.md §6).
    let mut group = c.benchmark_group("e4_pruned_selector_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| pruned_selector(black_box(16), k))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_selector_testset_construction,
    bench_selector_verification,
    bench_selector_network_construction
);
criterion_main!(benches);
