//! End-to-end chaos tests: armed failpoints against a live service and
//! wire stack (built with `--features failpoints`).
//!
//! The failpoint registry is process-global, so every test here
//! serialises on one mutex and resets the registry on entry and exit.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use sortnet_combinat::ChannelVec;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_service::failpoint::{self, Schedule};
use sortnet_service::wire::{WireClient, WireClientConfig, WireServer};
use sortnet_service::{Query, Request, Service, ServiceConfig, ServiceError};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialises a test against the global registry and guarantees a clean
/// slate before and after it (even when the test panics).
struct Chaos {
    _guard: MutexGuard<'static, ()>,
}

impl Chaos {
    fn begin() -> Self {
        let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        failpoint::reset();
        Self { _guard: guard }
    }
}

impl Drop for Chaos {
    fn drop(&mut self) {
        failpoint::reset();
    }
}

fn sorted_tests(n: usize) -> Vec<ChannelVec> {
    (0..=n)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn coverage_request(n: usize) -> Request {
    Request {
        network: odd_even_merge_sort(n),
        query: Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: sorted_tests(n),
            redundancy: sortnet_faults::coverage::RedundancyMode::Skip,
        },
        budget: None,
        deadline: None,
    }
}

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sortnet-chaos-{tag}-{}.sock", std::process::id()))
}

#[test]
fn a_persistently_panicking_request_is_quarantined_not_fatal() {
    let _chaos = Chaos::begin();
    // Every evaluation passage panics: the gulp dies, every solo retry
    // dies, and the quarantine ledger must end it with a typed reply.
    failpoint::configure(
        "worker-panic",
        Schedule::Nth {
            every: 1,
            offset: 0,
        },
    );
    let service = Service::start(ServiceConfig {
        workers: 1,
        panic_attempts: 2,
        ..ServiceConfig::default()
    });
    let response = service.submit(coverage_request(6));
    match &response.outcome {
        Err(ServiceError::WorkerPanicked { attempts }) => assert_eq!(*attempts, 2),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let stats = service.stats();
    assert!(stats.panics >= 2, "both attempts were caught: {stats:?}");
    assert_eq!(stats.quarantined, 1);

    // The ledger outlives the failpoint: with panics disarmed, the same
    // request is still refused without touching the engine...
    failpoint::reset();
    let again = service.submit(coverage_request(6));
    assert!(
        matches!(again.outcome, Err(ServiceError::WorkerPanicked { .. })),
        "a quarantined request stays quarantined"
    );
    // ...while a different request answers normally — the service
    // survived every panic.
    assert!(service.submit(coverage_request(8)).outcome.is_ok());
}

#[test]
fn a_transient_panic_is_retried_and_forgiven() {
    let _chaos = Chaos::begin();
    // Fires exactly once (passage 0): the gulp dies, the solo retry
    // succeeds, and the ledger entry must be wiped by the success.
    failpoint::configure(
        "worker-panic",
        Schedule::Nth {
            every: u64::MAX,
            offset: 0,
        },
    );
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let response = service.submit(coverage_request(6));
    assert!(response.outcome.is_ok(), "the retry answers: {response:?}");
    let stats = service.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.quarantined, 0, "a recovered request is forgiven");
    // Resubmission takes the normal path (and may now hit the cache).
    assert!(service.submit(coverage_request(6)).outcome.is_ok());
}

#[test]
fn an_escaped_worker_panic_respawns_the_worker() {
    let _chaos = Chaos::begin();
    // The worker-crash site sits at the top of the worker loop, outside
    // the per-gulp guard: its panic escapes to the supervisor, which
    // must respawn the loop without losing any request.
    failpoint::configure(
        "worker-crash",
        Schedule::Nth {
            every: u64::MAX,
            offset: 0,
        },
    );
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let response = service.submit(coverage_request(6));
    assert!(response.outcome.is_ok(), "the respawned worker answers");
    assert!(service.stats().worker_restarts >= 1);
}

#[test]
fn an_accept_loop_error_still_removes_the_socket_file() {
    let _chaos = Chaos::begin();
    // Regression: the accept loop used to leave the socket file behind
    // when it exited through the error path (only Drop removed it).
    failpoint::configure(
        "accept-error",
        Schedule::Nth {
            every: 1,
            offset: 0,
        },
    );
    let service = std::sync::Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("accept-error");
    let server = WireServer::bind(&path, service).expect("bind");
    assert!(path.exists(), "the socket file exists while serving");
    // Any connection attempt wakes the accept loop; the armed failpoint
    // turns it into a fatal accept error.
    let _ = std::os::unix::net::UnixStream::connect(&path);
    let deadline = Instant::now() + Duration::from_secs(5);
    while path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !path.exists(),
        "the error path must remove the socket file itself"
    );
    assert_eq!(failpoint::fires("accept-error"), 1);
    drop(server); // clean double-removal must be harmless
}

#[test]
fn a_torn_reply_frame_is_healed_by_the_retrying_client() {
    let _chaos = Chaos::begin();
    // Passage 0 tears the reply mid-frame; passage 1 is clean.
    failpoint::configure(
        "torn-frame",
        Schedule::Nth {
            every: 2,
            offset: 0,
        },
    );
    let service = std::sync::Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("torn-frame");
    let server = WireServer::bind(&path, service).expect("bind");
    let mut client = WireClient::connect_with(
        &path,
        WireClientConfig {
            retries: 3,
            ..WireClientConfig::default()
        },
    )
    .expect("connect");
    let reply = client.call(&coverage_request(6)).expect("healed by retry");
    assert!(reply.outcome.is_ok(), "the retried call answers: {reply:?}");
    assert!(client.retries_used() >= 1, "the first reply was torn");
    assert!(failpoint::fires("torn-frame") >= 1);
    drop(server);
}

#[test]
fn a_stalled_server_read_is_healed_by_the_call_timeout() {
    let _chaos = Chaos::begin();
    // The first connection's handler dawdles 300 ms before reading; the
    // client gives a call 60 ms, so it must abandon the stalled
    // connection and succeed on a fresh one (passage 1: no sleep).
    failpoint::configure_sleep(
        "slow-read",
        Schedule::Nth {
            every: 2,
            offset: 0,
        },
        Duration::from_millis(300),
    );
    let service = std::sync::Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("slow-read");
    let server = WireServer::bind(&path, service).expect("bind");
    let mut client = WireClient::connect_with(
        &path,
        WireClientConfig {
            call_timeout: Some(Duration::from_millis(60)),
            retries: 8,
            backoff_base: Duration::from_millis(2),
            ..WireClientConfig::default()
        },
    )
    .expect("connect");
    let reply = client.call(&coverage_request(6)).expect("healed by retry");
    assert!(reply.outcome.is_ok());
    assert!(client.retries_used() >= 1, "the stalled call timed out");
    drop(server);
}
