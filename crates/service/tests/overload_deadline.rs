//! Deterministic (no-failpoint) end-to-end tests of the robustness
//! layer: admission control, per-request deadlines on both fronts, and
//! cache TTL expiry through a live service.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sortnet_combinat::ChannelVec;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_service::wire::{WireClient, WireServer};
use sortnet_service::{
    CacheStatus, Query, Request, Service, ServiceConfig, ServiceError, ShedPolicy,
};

fn sorted_tests(n: usize) -> Vec<ChannelVec> {
    (0..=n)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn coverage_request(n: usize) -> Request {
    Request {
        network: odd_even_merge_sort(n),
        query: Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: sorted_tests(n),
            redundancy: sortnet_faults::coverage::RedundancyMode::Skip,
        },
        budget: None,
        deadline: None,
    }
}

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sortnet-odl-{tag}-{}.sock", std::process::id()))
}

#[test]
fn shed_policies_behave_deterministically_under_a_held_batch() {
    // submit_batch enqueues the whole batch under one queue-lock hold,
    // so workers cannot drain between members: capacity 1 + a batch of
    // 3 gives a fixed shed pattern for each policy.
    for (policy, expect_ok_at) in [(ShedPolicy::RejectNew, 0), (ShedPolicy::DropOldest, 2)] {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            shed_policy: policy,
            ..ServiceConfig::default()
        });
        let responses = service.submit_batch((0..3).map(|_| coverage_request(6)).collect());
        assert_eq!(responses.len(), 3, "exactly one reply per request");
        for (i, response) in responses.iter().enumerate() {
            if i == expect_ok_at {
                assert!(response.outcome.is_ok(), "{policy:?}: slot {i} answers");
            } else {
                match &response.outcome {
                    Err(ServiceError::Overloaded {
                        queue_depth,
                        retry_after_hint,
                    }) => {
                        // RejectNew reports the depth that refused the
                        // newcomer; DropOldest reports the depth after
                        // the victim's own eviction.
                        let expected = match policy {
                            ShedPolicy::RejectNew => 1,
                            ShedPolicy::DropOldest => 0,
                        };
                        assert_eq!(*queue_depth, expected, "{policy:?}: shed depth");
                        assert!(*retry_after_hint > Duration::ZERO);
                    }
                    other => panic!("{policy:?}: slot {i} should shed, got {other:?}"),
                }
            }
        }
        let stats = service.stats();
        let total_shed = stats.shed_rejected + stats.shed_dropped;
        assert_eq!(total_shed, 2);
        match policy {
            ShedPolicy::RejectNew => assert_eq!(stats.shed_rejected, 2),
            ShedPolicy::DropOldest => assert_eq!(stats.shed_dropped, 2),
        }
    }
}

#[test]
fn an_expired_deadline_is_refused_typed_and_counted() {
    let service = Service::start(ServiceConfig::default());
    let mut request = coverage_request(8);
    request.deadline = Some(Instant::now() - Duration::from_millis(25));
    let response = service.submit(request);
    match &response.outcome {
        Err(ServiceError::DeadlineExpired { late_by }) => {
            assert!(*late_by >= Duration::from_millis(25));
        }
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(
        stats.answers.hits + stats.answers.misses,
        0,
        "an expired request never reaches the caches"
    );
}

#[test]
fn a_deadline_crosses_the_wire_and_expires_server_side() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("deadline");
    let server = WireServer::bind(&path, Arc::clone(&service)).expect("bind");
    let mut client = WireClient::connect(&path).expect("connect");

    // Far-future deadline: answers normally (wire errors are text).
    let mut request = coverage_request(8);
    request.deadline = Some(Instant::now() + Duration::from_secs(3600));
    let reply = client.call(&request).expect("call");
    assert!(reply.outcome.is_ok(), "a roomy deadline answers: {reply:?}");

    // Already-expired deadline: ships as 0 ms remaining, and the
    // server's dequeue check must answer it with the typed expiry's
    // pinned display text.
    request.deadline = Some(Instant::now() - Duration::from_millis(5));
    let reply = client.call(&request).expect("call");
    match &reply.outcome {
        Err(text) => assert!(
            text.contains("deadline expired"),
            "expected the expiry text, got {text:?}"
        ),
        Ok(_) => panic!("an expired deadline must not answer"),
    }
    assert_eq!(service.stats().expired, 1);
    drop(client);
    drop(server);
}

#[test]
fn answer_ttl_expires_cached_answers_end_to_end() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        answer_ttl: Some(Duration::ZERO),
        ..ServiceConfig::default()
    });
    let first = service.submit(coverage_request(6));
    assert_eq!(first.cache, CacheStatus::Miss);
    // The entry expired the instant it landed: the repeat must be a
    // recomputed miss, never a stale hit.
    let second = service.submit(coverage_request(6));
    assert_eq!(second.cache, CacheStatus::Miss);
    assert_eq!(first.outcome, second.outcome);
    let stats = service.stats();
    assert_eq!(stats.answers.hits, 0, "expired answers are never served");
    assert!(stats.answers.expirations >= 1);
    assert_eq!(stats.answers.evictions, 0);
}

#[test]
fn without_ttl_the_same_workload_hits_the_cache() {
    // Control for the TTL test above: identical traffic, no TTL.
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let first = service.submit(coverage_request(6));
    assert_eq!(first.cache, CacheStatus::Miss);
    let second = service.submit(coverage_request(6));
    assert_eq!(second.cache, CacheStatus::Hit);
    assert_eq!(service.stats().answers.expirations, 0);
}
