//! End-to-end exercises of the oracle service: the in-process pool and
//! the Unix-socket wire front, each checked against the cold reference
//! path.

use std::path::PathBuf;
use std::sync::Arc;

use sortnet_combinat::ChannelVec;
use sortnet_faults::coverage::RedundancyMode;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::budget::SweepBudget;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::PackedFamily;
use sortnet_network::Network;
use sortnet_service::wire::{compact, WireClient, WireServer};
use sortnet_service::{
    answer_cold, CacheStatus, Completion, Query, Request, Service, ServiceConfig,
};
use sortnet_testsets::verify::{Property, Strategy};

fn sorted_tests(n: usize) -> Vec<ChannelVec> {
    (0..=n)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn coverage_request(n: usize) -> Request {
    Request {
        network: odd_even_merge_sort(n),
        query: Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: sorted_tests(n),
            // Exhaustive everywhere: below the wall it grades for real,
            // past it the service must answer with the typed refusal.
            redundancy: RedundancyMode::Exhaustive,
        },
        budget: None,
        deadline: None,
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sortnet-oracle-{}-{tag}.sock", std::process::id()))
}

#[test]
fn pooled_service_answers_match_cold_across_query_kinds() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        max_batch: 4,
        ..ServiceConfig::default()
    });
    let config = service.config().clone();
    let requests = vec![
        coverage_request(8),
        coverage_request(96), // typed up-front refusal (packed redundancy)
        Request {
            network: odd_even_merge_sort(6),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: None,
        },
    ];
    let responses = service.submit_batch(requests.clone());
    for (request, response) in requests.iter().zip(&responses) {
        let cold = answer_cold(&config, request);
        assert_eq!(response.outcome, cold.outcome);
        assert_eq!(response.completion, cold.completion);
    }
    // A repeat of the successful coverage query is a cache hit with the
    // identical answer.
    let again = service.submit(requests[0].clone());
    assert_eq!(again.cache, CacheStatus::Hit);
    assert_eq!(again.outcome, responses[0].outcome);
    let stats = service.stats();
    assert_eq!(stats.answered, 4);
    assert!(stats.answers.hits >= 1);
}

#[test]
fn concurrent_submitters_all_get_their_own_answers() {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        max_batch: 8,
        ..ServiceConfig::default()
    }));
    let config = service.config().clone();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let request = coverage_request(5 + t % 3);
                let response = service.submit(request.clone());
                (request, response)
            })
        })
        .collect();
    for handle in handles {
        let (request, response) = handle.join().expect("submitter thread");
        assert_eq!(response.outcome, answer_cold(&config, &request).outcome);
        assert_eq!(response.completion, Completion::Complete);
    }
}

#[test]
fn wire_front_round_trips_queries_and_stops_cleanly() {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }));
    let path = socket_path("roundtrip");
    let server = WireServer::bind(&path, Arc::clone(&service)).expect("bind");
    let mut client = WireClient::connect(server.path()).expect("connect");

    // A verify, a small coverage, a packed n = 96 coverage and a
    // budgeted (degrading) query, all over one connection.
    let wide_tests: Vec<ChannelVec> = (0..=96)
        .step_by(16)
        .map(|ones| ChannelVec::sorted_of(96 - ones, ones))
        .collect();
    let requests = vec![
        Request {
            network: odd_even_merge_sort(8),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: None,
        },
        coverage_request(6),
        Request {
            network: Network::from_pairs(96, &[(0, 48), (1, 49), (2, 95)]),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: wide_tests,
                redundancy: RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
            },
            budget: None,
            deadline: None,
        },
        Request {
            network: odd_even_merge_sort(8),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: sorted_tests(8),
                redundancy: RedundancyMode::Exhaustive,
            },
            budget: Some(SweepBudget::unlimited().with_max_blocks(1)),
            deadline: None,
        },
    ];
    for request in &requests {
        let over_wire = client.call(request).expect("wire call");
        let direct = compact(&service.submit(request.clone()));
        assert_eq!(over_wire.outcome, direct.outcome);
        assert_eq!(over_wire.completion, direct.completion);
    }

    // The typed packed-redundancy refusal crosses the wire as its
    // pinned display text.
    let refused = Request {
        network: Network::from_pairs(96, &[(0, 1)]),
        query: Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: vec![ChannelVec::zeros(96)],
            redundancy: RedundancyMode::Exhaustive,
        },
        budget: None,
        deadline: None,
    };
    let response = client.call(&refused).expect("wire call");
    let err = response.outcome.expect_err("refusal expected");
    assert!(
        err.contains("sweep refused"),
        "pinned refusal text expected, got: {err}"
    );

    drop(client);
    drop(server);
    assert!(!path.exists(), "server drop removes the socket file");
}
