//! The malformed-frame matrix (no failpoints): hostile or broken
//! clients must get typed replies where framing allows one, must never
//! wedge the server, and must not leak handler threads.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sortnet_combinat::ChannelVec;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_service::wire::{
    encode_request, read_frame, write_frame, WireServer, WireServerConfig, MAX_FRAME,
};
use sortnet_service::{Query, Request, Service, ServiceConfig};

fn sorted_tests(n: usize) -> Vec<ChannelVec> {
    (0..=n)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn coverage_request(n: usize) -> Request {
    Request {
        network: odd_even_merge_sort(n),
        query: Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: sorted_tests(n),
            redundancy: sortnet_faults::coverage::RedundancyMode::Skip,
        },
        budget: None,
        deadline: None,
    }
}

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sortnet-mal-{tag}-{}.sock", std::process::id()))
}

/// Live threads of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .expect("Threads: line")
}

/// Asserts the server still answers a well-formed request.
fn assert_served(path: &std::path::Path) {
    let mut stream = UnixStream::connect(path).expect("connect");
    write_frame(&mut stream, &encode_request(&coverage_request(6))).expect("write");
    let reply = read_frame(&mut stream)
        .expect("read")
        .expect("a reply frame");
    let reply = sortnet_service::wire::decode_response(&reply).expect("decode");
    assert!(reply.outcome.is_ok(), "the server still serves: {reply:?}");
}

#[test]
fn zero_length_frames_get_a_typed_reply_and_the_connection_survives() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("zero");
    let _server = WireServer::bind(&path, service).expect("bind");
    let mut stream = UnixStream::connect(&path).expect("connect");
    // A zero-length frame is valid framing carrying an empty payload:
    // the decoder refuses it, typed, and the framing stays in sync.
    stream.write_all(&0u32.to_le_bytes()).expect("write");
    let reply = read_frame(&mut stream).expect("read").expect("a reply");
    let reply = sortnet_service::wire::decode_response(&reply).expect("decode");
    match &reply.outcome {
        Err(text) => assert!(
            text.starts_with("malformed request:"),
            "typed refusal, got {text:?}"
        ),
        Ok(_) => panic!("an empty payload must not decode"),
    }
    // Same connection, now a well-formed request: still served.
    write_frame(&mut stream, &encode_request(&coverage_request(6))).expect("write");
    let reply = read_frame(&mut stream).expect("read").expect("a reply");
    let reply = sortnet_service::wire::decode_response(&reply).expect("decode");
    assert!(reply.outcome.is_ok());
}

#[test]
fn oversized_length_prefixes_get_a_typed_reply_then_a_close() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("oversized");
    let _server = WireServer::bind(&path, service).expect("bind");
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .write_all(&(MAX_FRAME + 1).to_le_bytes())
        .expect("write");
    // Past an oversized prefix there is no resynchronising, but the
    // refusal itself is still a well-formed typed reply...
    let reply = read_frame(&mut stream).expect("read").expect("a reply");
    let reply = sortnet_service::wire::decode_response(&reply).expect("decode");
    match &reply.outcome {
        Err(text) => assert!(text.contains("over MAX_FRAME"), "got {text:?}"),
        Ok(_) => panic!("an oversized prefix must not answer"),
    }
    // ...followed by a close.
    assert!(
        matches!(read_frame(&mut stream), Ok(None)),
        "the connection must be closed after the refusal"
    );
    assert_served(&path);
}

#[test]
fn truncated_length_prefix_and_mid_frame_disconnects_do_not_wedge() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("truncated");
    let _server = WireServer::bind(&path, service).expect("bind");
    {
        // Two bytes of length prefix, then hang up.
        let mut stream = UnixStream::connect(&path).expect("connect");
        stream.write_all(&[0x10, 0x00]).expect("write");
    }
    {
        // A full prefix promising 100 bytes, 10 delivered, then gone.
        let mut stream = UnixStream::connect(&path).expect("connect");
        stream.write_all(&100u32.to_le_bytes()).expect("write");
        stream.write_all(&[0xAB; 10]).expect("write");
    }
    assert_served(&path);
}

#[test]
fn a_mid_frame_stall_is_cut_by_the_read_timeout() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("stall");
    let _server = WireServer::bind_with(
        &path,
        service,
        WireServerConfig {
            read_timeout: Duration::from_millis(100),
            ..WireServerConfig::default()
        },
    )
    .expect("bind");
    let mut stream = UnixStream::connect(&path).expect("connect");
    // Promise 100 bytes, deliver 10, then stall (slow loris).  The
    // server must cut the connection at the read timeout, not wait for
    // the rest forever.
    stream.write_all(&100u32.to_le_bytes()).expect("write");
    stream.write_all(&[0xCD; 10]).expect("write");
    let started = Instant::now();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).expect("the cut reads as EOF");
    assert_eq!(n, 0, "the server hung up on the stalled frame");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "the cut must come from the read timeout, not the idle reaper"
    );
    assert_served(&path);
}

#[test]
fn hostile_connections_do_not_leak_handler_threads() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let path = socket_path("leak");
    let server = WireServer::bind_with(
        &path,
        service,
        WireServerConfig {
            read_timeout: Duration::from_millis(100),
            reap_interval: Duration::from_millis(50),
            ..WireServerConfig::default()
        },
    )
    .expect("bind");
    assert_served(&path); // settle the lazy parts of the stack
    let baseline = thread_count();
    for round in 0..12 {
        let mut stream = UnixStream::connect(&path).expect("connect");
        match round % 3 {
            0 => stream.write_all(&[0x01]).expect("write"),
            1 => {
                stream.write_all(&64u32.to_le_bytes()).expect("write");
                stream.write_all(&[0xEE; 5]).expect("write");
            }
            _ => {
                stream.write_all(&0u32.to_le_bytes()).expect("write");
                let _ = read_frame(&mut stream);
            }
        }
        drop(stream);
    }
    // Handlers exit on EOF/timeout and the reaper collects them; the
    // thread count must come back to the baseline and the registry to
    // empty (both are asynchronous — poll with a generous deadline).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let threads = thread_count();
        let connections = server.connections();
        if threads <= baseline && connections == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "handlers leaked: {threads} threads (baseline {baseline}), \
             {connections} registry entries"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_served(&path);
}
