//! The service-level error taxonomy.
//!
//! The engine crates refuse or degrade with [`EngineError`]; the
//! service adds failure modes of its own — overload shedding, expired
//! deadlines, quarantined panicking requests — that the engines cannot
//! know about.  [`ServiceError`] is the union: engine refusals pass
//! through transparently (same pinned display text, so wire clients and
//! tests that match on e.g. `"sweep refused"` keep working), and the
//! service-native variants get pinned prefixes of their own
//! (`"service overloaded"`, `"deadline expired"`,
//! `"evaluation panicked"`).

use std::time::Duration;

use sortnet_network::error::EngineError;

/// Why the service refused (or could not complete) a request.
///
/// `#[non_exhaustive]` like [`EngineError`]: matching code must carry a
/// wildcard arm so later service PRs can add failure modes without
/// breaking callers.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The engine's own typed refusal, passed through unchanged.
    Engine(EngineError),
    /// The queue was full and the shed policy refused this request (or
    /// evicted it to admit newer work).  Pure backpressure: nothing was
    /// evaluated, resubmitting later is always safe.
    Overloaded {
        /// Jobs waiting in the queue when the request was shed.
        queue_depth: usize,
        /// A rough "come back in" estimate from the queue depth and the
        /// pool's moving average service time.  A hint, not a promise.
        retry_after_hint: Duration,
    },
    /// The request's deadline had already passed when a worker dequeued
    /// it; the engine was never touched.
    DeadlineExpired {
        /// How far past the deadline the dequeue happened.
        late_by: Duration,
    },
    /// Evaluating this request panicked repeatedly and the request is
    /// quarantined; it will keep getting this answer (never a retry
    /// loop, never a worker death) until the service restarts.
    WorkerPanicked {
        /// Evaluation attempts that panicked before quarantine.
        attempts: u32,
    },
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Transparent: engine refusals keep their pinned texts.
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::Overloaded {
                queue_depth,
                retry_after_hint,
            } => write!(
                f,
                "service overloaded: {queue_depth} requests queued; retry in ~{} ms",
                retry_after_hint.as_millis()
            ),
            ServiceError::DeadlineExpired { late_by } => write!(
                f,
                "deadline expired {} µs before evaluation began",
                late_by.as_micros()
            ),
            ServiceError::WorkerPanicked { attempts } => write!(
                f,
                "evaluation panicked {attempts} time(s); request quarantined"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_pass_their_pinned_text_through() {
        let inner = EngineError::SweepTooLarge { lines: 96 };
        let wrapped = ServiceError::from(inner.clone());
        assert_eq!(wrapped.to_string(), inner.to_string());
        assert_eq!(wrapped, ServiceError::Engine(inner));
    }

    #[test]
    fn service_variants_have_pinned_prefixes() {
        let overloaded = ServiceError::Overloaded {
            queue_depth: 7,
            retry_after_hint: Duration::from_millis(3),
        };
        assert!(overloaded.to_string().starts_with("service overloaded"));
        let expired = ServiceError::DeadlineExpired {
            late_by: Duration::from_micros(42),
        };
        assert!(expired.to_string().starts_with("deadline expired"));
        let panicked = ServiceError::WorkerPanicked { attempts: 2 };
        assert!(panicked.to_string().starts_with("evaluation panicked"));
    }
}
