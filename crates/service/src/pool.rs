//! The work queue and worker pool behind the in-process service front.
//!
//! [`Service::start`] spawns `config.workers` plain `std::thread`
//! workers over one shared FIFO.  A worker wakes, drains up to
//! `config.max_batch` queued jobs in one gulp and hands them to
//! [`answer_batch`] — so batching emerges
//! from queue pressure: an idle service answers each request alone,
//! a loaded one shards whole gulps through shared matrices.  Replies
//! travel back over per-job rendezvous channels, so [`Service::submit`]
//! is a plain blocking call from any thread.
//!
//! Three robustness layers wrap that core:
//!
//! * **Admission control** — with `queue_capacity > 0`, a full queue
//!   sheds instead of blocking: [`ShedPolicy::RejectNew`] answers the
//!   incoming request with a typed [`ServiceError::Overloaded`] (queue
//!   depth + a retry hint from the pool's moving-average service time);
//!   [`ShedPolicy::DropOldest`] evicts the oldest queued job, answers
//!   *it* with `Overloaded`, and admits the newcomer.  Either way every
//!   submitter gets exactly one reply and nobody blocks on a full
//!   queue.
//! * **Deadlines at dequeue** — a request whose
//!   [`Request::deadline`] has already passed when a worker picks it up
//!   is answered with a typed [`ServiceError::DeadlineExpired`] without
//!   touching the engine (the in-flight half of the deadline contract —
//!   intersection into the sweep budget — lives in [`crate::oracle`]).
//! * **Supervision** — every evaluation runs under `catch_unwind`.  A
//!   panicking gulp falls back to per-request isolation; a request that
//!   keeps panicking is quarantined after `config.panic_attempts`
//!   attempts and answered with a typed
//!   [`ServiceError::WorkerPanicked`] (here and on every resubmission)
//!   instead of being retried forever.  If a panic ever escapes the
//!   per-gulp guard (only possible at the `worker-crash` failpoint,
//!   which sits before any job is held), the supervisor respawns the
//!   worker loop and counts a restart.  A panicking request never takes
//!   the service down and never swallows its reply.
//!
//! Shutdown is cooperative: dropping the [`Service`] flags the pool,
//! wakes every worker and joins them; queued jobs are still answered
//! first (drain-then-stop), so no submitter is left hanging.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{fingerprint, CacheCounters};
use crate::error::ServiceError;
use crate::failpoint;
use crate::oracle::{
    answer_batch, AnswerKey, CacheStatus, Completion, OracleCaches, Request, Response,
};
use crate::ServiceConfig;

/// What the pool sheds when the queue is at capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the incoming request; queued work keeps its place.
    #[default]
    RejectNew,
    /// Evict the oldest queued request (answering it with a typed
    /// [`ServiceError::Overloaded`]) and admit the newcomer — freshest
    /// traffic wins under overload.
    DropOldest,
}

/// Quarantine ledger entries before the crude full clear.  Far above
/// anything a real workload of *panicking* requests produces; the cap
/// only bounds memory if an adversary streams novel poison requests.
const QUARANTINE_CAP: usize = 4096;

/// Seed of the service-time moving average (µs) before any sample.
const EMA_SEED_MICROS: u64 = 100;

struct Job {
    request: Request,
    reply: SyncSender<Response>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    caches: OracleCaches,
    /// fingerprint(request identity) → panicking attempts so far.
    quarantine: Mutex<HashMap<u64, u32>>,
    answered: AtomicU64,
    partials: AtomicU64,
    shed_rejected: AtomicU64,
    shed_dropped: AtomicU64,
    expired: AtomicU64,
    panics: AtomicU64,
    quarantined: AtomicU64,
    worker_restarts: AtomicU64,
    /// Moving average of per-response service time in µs (×1, relaxed
    /// races tolerated — it only feeds the retry hint).
    ema_micros: AtomicU64,
}

/// A snapshot of the service's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered by the pool — engine answers and the typed
    /// dequeue-time refusals (expired, quarantined) alike.  Shed
    /// requests are counted separately below.
    pub answered: u64,
    /// Answers that degraded to [`Completion::Partial`].
    pub partials: u64,
    /// Incoming requests refused at admission ([`ShedPolicy::RejectNew`]
    /// on a full queue).
    pub shed_rejected: u64,
    /// Queued requests evicted with a reply ([`ShedPolicy::DropOldest`]
    /// on a full queue).
    pub shed_dropped: u64,
    /// Requests whose deadline had passed at dequeue (typed expiry,
    /// engine untouched).
    pub expired: u64,
    /// Evaluation panics caught by supervision (gulp- and solo-level).
    pub panics: u64,
    /// Requests answered with the typed quarantine refusal.
    pub quarantined: u64,
    /// Worker-loop respawns after an escaped panic.
    pub worker_restarts: u64,
    /// Answer-cache counters.
    pub answers: CacheCounters,
    /// Detection-matrix-cache counters.
    pub matrices: CacheCounters,
}

/// The long-running oracle: a queue, a worker pool, the shared caches.
///
/// Cheap to share (`Arc` inside); dropping the last handle shuts the
/// pool down after the queue drains.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// Locks through poisoning: panics are caught per request by the
/// supervisor, every in-tree panic site sits outside these locks, and
/// the guarded state's invariants hold between operations.
fn unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Service {
    /// Starts the worker pool under panic supervision.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            caches: OracleCaches::with_ttls(
                config.answer_cache,
                config.answer_ttl,
                config.matrix_cache,
                config.matrix_ttl,
            ),
            config,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            quarantine: Mutex::new(HashMap::new()),
            answered: AtomicU64::new(0),
            partials: AtomicU64::new(0),
            shed_rejected: AtomicU64::new(0),
            shed_dropped: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            ema_micros: AtomicU64::new(EMA_SEED_MICROS),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || loop {
                    // worker_loop returns only on drained shutdown; an
                    // Err here is an escaped panic — respawn the loop.
                    // (In-tree the only escape site is the worker-crash
                    // failpoint, which fires before any job is held, so
                    // a respawn never loses a reply.)
                    if catch_unwind(AssertUnwindSafe(|| worker_loop(&inner))).is_ok() {
                        return;
                    }
                    inner.worker_restarts.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Answers one request, blocking until a worker replies (or
    /// admission control refuses it immediately).
    #[must_use]
    pub fn submit(&self, request: Request) -> Response {
        self.submit_batch(vec![request]).pop().expect("one reply")
    }

    /// Enqueues `requests` together (one notification wave, so a single
    /// worker can gulp them into one shard-friendly batch) and blocks
    /// until every reply arrives.  Replies come back in request order;
    /// every request gets exactly one — an answer, or a typed
    /// [`ServiceError::Overloaded`] when admission control sheds it.
    #[must_use]
    pub fn submit_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        enum Pending {
            Ready(Response),
            Wait(Receiver<Response>),
        }
        let capacity = self.inner.config.queue_capacity;
        let mut pending = Vec::with_capacity(requests.len());
        {
            let mut state = unpoisoned(&self.inner.queue);
            for request in requests {
                if capacity > 0 && state.jobs.len() >= capacity {
                    match self.inner.config.shed_policy {
                        ShedPolicy::RejectNew => {
                            self.inner.shed_rejected.fetch_add(1, Ordering::Relaxed);
                            let depth = state.jobs.len();
                            pending.push(Pending::Ready(overloaded(&self.inner, depth)));
                            continue;
                        }
                        ShedPolicy::DropOldest => {
                            while state.jobs.len() >= capacity {
                                let Some(victim) = state.jobs.pop_front() else {
                                    break;
                                };
                                self.inner.shed_dropped.fetch_add(1, Ordering::Relaxed);
                                let depth = state.jobs.len();
                                let _ = victim.reply.send(overloaded(&self.inner, depth));
                            }
                        }
                    }
                }
                let (reply, receiver) = sync_channel(1);
                state.jobs.push_back(Job { request, reply });
                pending.push(Pending::Wait(receiver));
            }
        }
        self.inner.available.notify_all();
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Ready(response) => response,
                Pending::Wait(receiver) => receiver
                    .recv()
                    .expect("worker pool answers before shutdown"),
            })
            .collect()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let (answers, matrices) = self.inner.caches.counters();
        ServiceStats {
            answered: self.inner.answered.load(Ordering::Relaxed),
            partials: self.inner.partials.load(Ordering::Relaxed),
            shed_rejected: self.inner.shed_rejected.load(Ordering::Relaxed),
            shed_dropped: self.inner.shed_dropped.load(Ordering::Relaxed),
            expired: self.inner.expired.load(Ordering::Relaxed),
            panics: self.inner.panics.load(Ordering::Relaxed),
            quarantined: self.inner.quarantined.load(Ordering::Relaxed),
            worker_restarts: self.inner.worker_restarts.load(Ordering::Relaxed),
            answers,
            matrices,
        }
    }

    /// The configuration the pool runs with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        unpoisoned(&self.inner.queue).shutdown = true;
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The typed overload refusal for the current depth, with a retry hint
/// of roughly "my place in line × average service time ÷ workers".
fn overloaded(inner: &Inner, queue_depth: usize) -> Response {
    let ema = inner.ema_micros.load(Ordering::Relaxed).max(1);
    let workers = inner.config.workers.max(1) as u64;
    let hint = Duration::from_micros((queue_depth as u64 + 1).saturating_mul(ema) / workers);
    Response {
        outcome: Err(ServiceError::Overloaded {
            queue_depth,
            retry_after_hint: hint,
        }),
        completion: Completion::Complete,
        cache: CacheStatus::Bypass,
        micros: 0,
    }
}

/// The identity under which panicking requests are quarantined: the
/// answer key's fields (network fingerprint, line count, query
/// fingerprint — covers the tests), not the budget, so a poison request
/// cannot dodge its ledger entry by resubmitting with a fresh budget.
fn quarantine_key(request: &Request) -> u64 {
    let key = AnswerKey::of(request);
    fingerprint(&(key.network, key.lines, key.query))
}

fn quarantined_response(attempts: u32) -> Response {
    Response {
        outcome: Err(ServiceError::WorkerPanicked { attempts }),
        completion: Completion::Complete,
        cache: CacheStatus::Bypass,
        micros: 0,
    }
}

fn reply_and_count(inner: &Inner, job: &Job, response: Response) {
    inner.answered.fetch_add(1, Ordering::Relaxed);
    if !matches!(response.completion, Completion::Complete) {
        inner.partials.fetch_add(1, Ordering::Relaxed);
    }
    // A submitter that gave up (disconnected receiver) is not an error
    // for the pool.
    let _ = job.reply.send(response);
}

/// Folds one response's service time into the moving average feeding
/// the overload retry hint (EMA, α = 1/8).
fn observe_latency(inner: &Inner, response: &Response) {
    let prev = inner.ema_micros.load(Ordering::Relaxed);
    let next = (prev.saturating_mul(7).saturating_add(response.micros)) / 8;
    inner.ema_micros.store(next.max(1), Ordering::Relaxed);
}

fn worker_loop(inner: &Inner) {
    loop {
        // Chaos site: an escaped panic *before* any job is dequeued —
        // exercises supervised respawn without risking a lost reply.
        failpoint::maybe_panic("worker-crash");
        let jobs: Vec<Job> = {
            let mut state = unpoisoned(&inner.queue);
            loop {
                if !state.jobs.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = inner
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let take = state.jobs.len().min(inner.config.max_batch.max(1));
            state.jobs.drain(..take).collect()
        };
        // Chaos site: a worker stalling with jobs in hand, so admission
        // control and deadlines see real queue pressure.
        failpoint::maybe_sleep("queue-stall");
        process_gulp(inner, jobs);
    }
}

/// Triages one gulp (deadlines, quarantine), evaluates the survivors as
/// a batch under `catch_unwind`, and falls back to per-request
/// supervision when the batch panics.  Every job gets exactly one reply
/// on every path.
fn process_gulp(inner: &Inner, jobs: Vec<Job>) {
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let Some(deadline) = job.request.deadline {
            if deadline <= now {
                inner.expired.fetch_add(1, Ordering::Relaxed);
                let response = Response {
                    outcome: Err(ServiceError::DeadlineExpired {
                        late_by: now.duration_since(deadline),
                    }),
                    completion: Completion::Complete,
                    cache: CacheStatus::Bypass,
                    micros: 0,
                };
                reply_and_count(inner, &job, response);
                continue;
            }
        }
        let attempts = unpoisoned(&inner.quarantine)
            .get(&quarantine_key(&job.request))
            .copied()
            .unwrap_or(0);
        if attempts >= inner.config.panic_attempts {
            inner.quarantined.fetch_add(1, Ordering::Relaxed);
            reply_and_count(inner, &job, quarantined_response(attempts));
            continue;
        }
        live.push(job);
    }
    if live.is_empty() {
        return;
    }
    let requests: Vec<Request> = live.iter().map(|j| j.request.clone()).collect();
    match catch_unwind(AssertUnwindSafe(|| {
        answer_batch(&inner.config, &inner.caches, &requests)
    })) {
        Ok(responses) => {
            for (job, response) in live.into_iter().zip(responses) {
                observe_latency(inner, &response);
                reply_and_count(inner, &job, response);
            }
        }
        Err(_) => {
            // The batch died and the culprit is unknown: isolate each
            // member and let the quarantine ledger find it.
            inner.panics.fetch_add(1, Ordering::Relaxed);
            for job in live {
                answer_solo_supervised(inner, job);
            }
        }
    }
}

/// Evaluates one job alone under `catch_unwind`, retrying up to the
/// quarantine limit.  A success forgives the ledger entry (transient
/// flakes recover); hitting the limit answers the typed quarantine
/// refusal — this job *and* every future resubmission of the same
/// request identity.
fn answer_solo_supervised(inner: &Inner, job: Job) {
    let key = quarantine_key(&job.request);
    let single = std::slice::from_ref(&job.request);
    loop {
        let attempts = unpoisoned(&inner.quarantine)
            .get(&key)
            .copied()
            .unwrap_or(0);
        if attempts >= inner.config.panic_attempts {
            inner.quarantined.fetch_add(1, Ordering::Relaxed);
            reply_and_count(inner, &job, quarantined_response(attempts));
            return;
        }
        match catch_unwind(AssertUnwindSafe(|| {
            answer_batch(&inner.config, &inner.caches, single)
        })) {
            Ok(mut responses) => {
                unpoisoned(&inner.quarantine).remove(&key);
                let response = responses.pop().expect("one request yields one response");
                observe_latency(inner, &response);
                reply_and_count(inner, &job, response);
                return;
            }
            Err(_) => {
                inner.panics.fetch_add(1, Ordering::Relaxed);
                let mut ledger = unpoisoned(&inner.quarantine);
                if ledger.len() >= QUARANTINE_CAP && !ledger.contains_key(&key) {
                    // Crude but bounded: forget everything rather than
                    // grow without limit.  Quarantined requests start
                    // re-earning their entry; correctness is unaffected.
                    ledger.clear();
                }
                *ledger.entry(key).or_insert(0) += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Query;
    use sortnet_combinat::ChannelVec;
    use sortnet_faults::universe::StandardUniverse;
    use sortnet_network::builders::batcher::odd_even_merge_sort;

    fn sorted_tests(n: usize) -> Vec<ChannelVec> {
        (0..=n)
            .map(|ones| ChannelVec::sorted_of(n - ones, ones))
            .collect()
    }

    fn coverage_request(n: usize) -> Request {
        Request {
            network: odd_even_merge_sort(n),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: sorted_tests(n),
                redundancy: sortnet_faults::coverage::RedundancyMode::Skip,
            },
            budget: None,
            deadline: None,
        }
    }

    #[test]
    fn reject_new_sheds_the_incoming_requests_deterministically() {
        // submit_batch holds the queue lock across the whole enqueue
        // loop, so no worker can drain mid-batch: with capacity 1 the
        // first request is admitted and the rest are refused, always.
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            shed_policy: ShedPolicy::RejectNew,
            ..ServiceConfig::default()
        });
        let responses = service.submit_batch(vec![
            coverage_request(6),
            coverage_request(8),
            coverage_request(4),
        ]);
        assert_eq!(responses.len(), 3, "every request gets exactly one reply");
        assert!(responses[0].outcome.is_ok(), "the admitted request answers");
        for shed in &responses[1..] {
            match &shed.outcome {
                Err(ServiceError::Overloaded {
                    queue_depth,
                    retry_after_hint,
                }) => {
                    assert_eq!(*queue_depth, 1);
                    assert!(*retry_after_hint > Duration::ZERO);
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.shed_rejected, 2);
        assert_eq!(stats.shed_dropped, 0);
    }

    #[test]
    fn drop_oldest_evicts_with_a_reply_and_admits_the_newcomer() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            shed_policy: ShedPolicy::DropOldest,
            ..ServiceConfig::default()
        });
        let responses = service.submit_batch(vec![
            coverage_request(6),
            coverage_request(8),
            coverage_request(4),
        ]);
        assert_eq!(responses.len(), 3);
        // The first two were each evicted by their successor.
        for dropped in &responses[..2] {
            assert!(
                matches!(dropped.outcome, Err(ServiceError::Overloaded { .. })),
                "evicted requests still get their typed reply"
            );
        }
        assert!(responses[2].outcome.is_ok(), "the newest request answers");
        let stats = service.stats();
        assert_eq!(stats.shed_dropped, 2);
        assert_eq!(stats.shed_rejected, 0);
    }

    #[test]
    fn zero_capacity_means_unbounded_like_before() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 0,
            ..ServiceConfig::default()
        });
        let responses = service.submit_batch((0..8).map(|_| coverage_request(6)).collect());
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(service.stats().shed_rejected, 0);
    }

    #[test]
    fn an_expired_deadline_is_answered_typed_without_the_engine() {
        let service = Service::start(ServiceConfig::default());
        let mut request = coverage_request(8);
        request.deadline = Some(Instant::now() - Duration::from_millis(10));
        let response = service.submit(request);
        match &response.outcome {
            Err(ServiceError::DeadlineExpired { late_by }) => {
                assert!(*late_by >= Duration::from_millis(10));
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert_eq!(response.micros, 0, "the engine was never touched");
        let stats = service.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(
            stats.answers.hits + stats.answers.misses,
            0,
            "no cache traffic for a dequeue-time expiry"
        );
        // The service is unharmed: a fresh request still answers.
        assert!(service.submit(coverage_request(8)).outcome.is_ok());
    }

    #[test]
    fn a_future_deadline_leaves_the_fast_path_answer_intact() {
        let service = Service::start(ServiceConfig::default());
        let cold = crate::oracle::answer_cold(service.config(), &coverage_request(8));
        let mut request = coverage_request(8);
        request.deadline = Some(Instant::now() + Duration::from_secs(3600));
        let response = service.submit(request);
        assert_eq!(response.outcome, cold.outcome);
        assert_eq!(response.completion, Completion::Complete);
        assert_eq!(
            response.cache,
            CacheStatus::Bypass,
            "deadline requests ride the solo cache-bypassing path"
        );
    }

    #[test]
    fn overload_hint_scales_with_queue_depth() {
        let inner = Inner {
            config: ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            caches: OracleCaches::new(0, 0),
            quarantine: Mutex::new(HashMap::new()),
            answered: AtomicU64::new(0),
            partials: AtomicU64::new(0),
            shed_rejected: AtomicU64::new(0),
            shed_dropped: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            ema_micros: AtomicU64::new(200),
        };
        let shallow = overloaded(&inner, 2);
        let deep = overloaded(&inner, 100);
        let hint = |r: &Response| match r.outcome {
            Err(ServiceError::Overloaded {
                retry_after_hint, ..
            }) => retry_after_hint,
            _ => unreachable!(),
        };
        assert!(hint(&deep) > hint(&shallow));
        assert_eq!(hint(&shallow), Duration::from_micros(3 * 200 / 2));
    }

    #[test]
    fn quarantine_key_ignores_the_budget_axis() {
        let mut a = coverage_request(6);
        let b = a.clone();
        a.budget = Some(sortnet_network::budget::SweepBudget::unlimited().with_max_blocks(1));
        assert_eq!(quarantine_key(&a), quarantine_key(&b));
        let c = coverage_request(8);
        assert_ne!(quarantine_key(&a), quarantine_key(&c));
    }
}
