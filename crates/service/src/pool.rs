//! The work queue and worker pool behind the in-process service front.
//!
//! [`Service::start`] spawns `config.workers` plain `std::thread`
//! workers over one shared FIFO.  A worker wakes, drains up to
//! `config.max_batch` queued jobs in one gulp and hands them to
//! [`answer_batch`] — so batching emerges
//! from queue pressure: an idle service answers each request alone,
//! a loaded one shards whole gulps through shared matrices.  Replies
//! travel back over per-job rendezvous channels, so [`Service::submit`]
//! is a plain blocking call from any thread.
//!
//! Shutdown is cooperative: dropping the [`Service`] flags the pool,
//! wakes every worker and joins them; queued jobs are still answered
//! first (drain-then-stop), so no submitter is left hanging.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::cache::CacheCounters;
use crate::oracle::{answer_batch, Completion, OracleCaches, Request, Response};
use crate::ServiceConfig;

struct Job {
    request: Request,
    reply: SyncSender<Response>,
}

struct Inner {
    config: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: Mutex<bool>,
    caches: OracleCaches,
    answered: AtomicU64,
    partials: AtomicU64,
}

/// A snapshot of the service's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered (hits, misses and bypasses alike).
    pub answered: u64,
    /// Answers that degraded to [`Completion::Partial`].
    pub partials: u64,
    /// Answer-cache counters.
    pub answers: CacheCounters,
    /// Detection-matrix-cache counters.
    pub matrices: CacheCounters,
}

/// The long-running oracle: a queue, a worker pool, the shared caches.
///
/// Cheap to share (`Arc` inside); dropping the last handle shuts the
/// pool down after the queue drains.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            caches: OracleCaches::new(config.answer_cache, config.matrix_cache),
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: Mutex::new(false),
            answered: AtomicU64::new(0),
            partials: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Answers one request, blocking until a worker replies.
    #[must_use]
    pub fn submit(&self, request: Request) -> Response {
        self.submit_batch(vec![request]).pop().expect("one reply")
    }

    /// Enqueues `requests` together (one notification wave, so a single
    /// worker can gulp them into one shard-friendly batch) and blocks
    /// until every reply arrives.  Replies come back in request order.
    #[must_use]
    pub fn submit_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let mut receivers = Vec::with_capacity(requests.len());
        {
            let mut queue = self.inner.queue.lock().unwrap();
            for request in requests {
                let (reply, receiver) = sync_channel(1);
                queue.push_back(Job { request, reply });
                receivers.push(receiver);
            }
        }
        self.inner.available.notify_all();
        receivers
            .into_iter()
            .map(|r| r.recv().expect("worker pool answers before shutdown"))
            .collect()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let (answers, matrices) = self.inner.caches.counters();
        ServiceStats {
            answered: self.inner.answered.load(Ordering::Relaxed),
            partials: self.inner.partials.load(Ordering::Relaxed),
            answers,
            matrices,
        }
    }

    /// The configuration the pool runs with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        *self.inner.shutdown.lock().unwrap() = true;
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let jobs: Vec<Job> = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if *inner.shutdown.lock().unwrap() {
                    return;
                }
                queue = inner.available.wait(queue).unwrap();
            }
            let take = queue.len().min(inner.config.max_batch.max(1));
            queue.drain(..take).collect()
        };
        let requests: Vec<Request> = jobs.iter().map(|j| j.request.clone()).collect();
        let responses = answer_batch(&inner.config, &inner.caches, &requests);
        inner
            .answered
            .fetch_add(responses.len() as u64, Ordering::Relaxed);
        let partials = responses
            .iter()
            .filter(|r| !matches!(r.completion, Completion::Complete))
            .count() as u64;
        inner.partials.fetch_add(partials, Ordering::Relaxed);
        for (job, response) in jobs.into_iter().zip(responses) {
            // A submitter that gave up (disconnected receiver) is not an
            // error for the pool.
            let _ = job.reply.send(response);
        }
    }
}
