//! Deterministic fault injection for the service and wire layers.
//!
//! A failpoint is a named site in production code that can be armed
//! from a test (or the grinder's chaos leg) to panic, sleep, or report
//! "fire now" on a **deterministic schedule** — every N-th passage or a
//! seeded per-mille coin flip ([`Schedule`]).  Sites are compiled in
//! only under `cfg(any(test, feature = "failpoints"))`; in a plain
//! build every hook is an inlined no-op, and even when compiled in, an
//! unarmed registry is one relaxed atomic load per passage.
//!
//! The registry is **process-global**, so tests that arm failpoints
//! must serialise against each other (each integration-test binary is
//! its own process; within one binary, hold a shared mutex and call
//! [`reset`] when done).
//!
//! Site catalogue (see `docs/SERVICE.md`):
//!
//! | site           | placed at                                   | effect    |
//! |----------------|---------------------------------------------|-----------|
//! | `worker-panic` | per request inside `answer_batch`           | panic     |
//! | `worker-crash` | top of the worker loop, before any dequeue  | panic     |
//! | `queue-stall`  | after a worker drains a gulp                | sleep     |
//! | `torn-frame`   | the wire server's reply write path          | half-frame|
//! | `slow-read`    | top of the wire server's per-frame loop     | sleep     |
//! | `accept-error` | the wire server's accept loop               | loop exit |

/// When an armed failpoint fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Fires on passages where `passage_index % every == offset`
    /// (0-based).  `Nth { every: 1, offset: 0 }` fires always; a huge
    /// `every` with `offset: 0` fires exactly once.
    Nth {
        /// Period of the schedule, in passages.
        every: u64,
        /// Which residue fires.
        offset: u64,
    },
    /// Fires on a seeded splitmix64 coin flip with probability
    /// `permille / 1000` per passage — deterministic for a seed, but
    /// with chaotic-looking spacing.
    Seeded {
        /// RNG seed; the same seed gives the same firing sequence.
        seed: u64,
        /// Firing probability in thousandths.
        permille: u16,
    },
}

#[cfg(any(test, feature = "failpoints"))]
mod active {
    use super::Schedule;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{LazyLock, Mutex};
    use std::time::Duration;

    struct Site {
        schedule: Schedule,
        rng: u64,
        passages: u64,
        fires: u64,
        sleep: Duration,
    }

    /// Fast-path gate: sites pay one relaxed load when nothing is armed.
    static ARMED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: LazyLock<Mutex<HashMap<&'static str, Site>>> =
        LazyLock::new(|| Mutex::new(HashMap::new()));

    fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, Site>> {
        REGISTRY
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arms `name` on `schedule` with no sleep payload.
    pub fn configure(name: &'static str, schedule: Schedule) {
        configure_sleep(name, schedule, Duration::ZERO);
    }

    /// Arms `name` on `schedule`; when the site is a sleep-style hook
    /// ([`maybe_sleep`]) each firing sleeps `sleep`.
    pub fn configure_sleep(name: &'static str, schedule: Schedule, sleep: Duration) {
        let seed = match schedule {
            Schedule::Seeded { seed, .. } => seed,
            Schedule::Nth { .. } => 0,
        };
        lock().insert(
            name,
            Site {
                schedule,
                rng: seed,
                passages: 0,
                fires: 0,
                sleep,
            },
        );
        ARMED.store(true, Ordering::Release);
    }

    /// Disarms every failpoint and clears all counters.
    pub fn reset() {
        lock().clear();
        ARMED.store(false, Ordering::Release);
    }

    /// How many times `name` has fired since it was armed.
    #[must_use]
    pub fn fires(name: &str) -> u64 {
        lock().get(name).map_or(0, |s| s.fires)
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One passage through site `name`: advances its schedule and
    /// returns the sleep payload when it fires.
    fn passage(name: &str) -> Option<Duration> {
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
        let mut registry = lock();
        let site = registry.get_mut(name)?;
        let index = site.passages;
        site.passages += 1;
        let fire = match site.schedule {
            Schedule::Nth { every, offset } => every != 0 && index % every == offset % every,
            Schedule::Seeded { permille, .. } => {
                splitmix(&mut site.rng) % 1000 < u64::from(permille)
            }
        };
        if fire {
            site.fires += 1;
            Some(site.sleep)
        } else {
            None
        }
    }

    /// `true` when this passage through `name` should inject its fault.
    #[must_use]
    pub fn should_fire(name: &str) -> bool {
        passage(name).is_some()
    }

    /// Panics (with a recognisable message) when the site fires.
    ///
    /// # Panics
    /// That is the point.  Call sites must sit under `catch_unwind`
    /// supervision and must not hold locks whose invariants a panic
    /// would tear.
    pub fn maybe_panic(name: &str) {
        if should_fire(name) {
            panic!("failpoint {name} fired");
        }
    }

    /// Sleeps the site's configured payload when it fires.
    pub fn maybe_sleep(name: &str) {
        if let Some(sleep) = passage(name) {
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
    }
}

#[cfg(any(test, feature = "failpoints"))]
pub use active::{configure, configure_sleep, fires, maybe_panic, maybe_sleep, reset, should_fire};

#[cfg(not(any(test, feature = "failpoints")))]
mod inactive {
    use super::Schedule;
    use std::time::Duration;

    /// No-op in a plain build.
    #[inline(always)]
    pub fn configure(_name: &'static str, _schedule: Schedule) {}
    /// No-op in a plain build.
    #[inline(always)]
    pub fn configure_sleep(_name: &'static str, _schedule: Schedule, _sleep: Duration) {}
    /// No-op in a plain build.
    #[inline(always)]
    pub fn reset() {}
    /// Always zero in a plain build.
    #[inline(always)]
    #[must_use]
    pub fn fires(_name: &str) -> u64 {
        0
    }
    /// Never fires in a plain build.
    #[inline(always)]
    #[must_use]
    pub fn should_fire(_name: &str) -> bool {
        false
    }
    /// No-op in a plain build.
    #[inline(always)]
    pub fn maybe_panic(_name: &str) {}
    /// No-op in a plain build.
    #[inline(always)]
    pub fn maybe_sleep(_name: &str) {}
}

#[cfg(not(any(test, feature = "failpoints")))]
pub use inactive::{
    configure, configure_sleep, fires, maybe_panic, maybe_sleep, reset, should_fire,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};
    use std::time::Duration;

    /// The registry is process-global; registry tests serialise here.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _guard = serial();
        reset();
        assert!(!should_fire("worker-panic"));
        assert_eq!(fires("worker-panic"), 0);
        maybe_panic("worker-panic"); // must not panic
        maybe_sleep("queue-stall"); // must not sleep
    }

    #[test]
    fn nth_schedule_fires_on_its_residue() {
        let _guard = serial();
        reset();
        configure(
            "site-a",
            Schedule::Nth {
                every: 3,
                offset: 1,
            },
        );
        let fired: Vec<bool> = (0..9).map(|_| should_fire("site-a")).collect();
        assert_eq!(
            fired,
            [false, true, false, false, true, false, false, true, false]
        );
        assert_eq!(fires("site-a"), 3);
        reset();
        assert!(!should_fire("site-a"));
    }

    #[test]
    fn seeded_schedule_is_deterministic_for_a_seed() {
        let _guard = serial();
        reset();
        configure(
            "site-b",
            Schedule::Seeded {
                seed: 0xC0FF_EE00_5EED,
                permille: 400,
            },
        );
        let first: Vec<bool> = (0..64).map(|_| should_fire("site-b")).collect();
        reset();
        configure(
            "site-b",
            Schedule::Seeded {
                seed: 0xC0FF_EE00_5EED,
                permille: 400,
            },
        );
        let second: Vec<bool> = (0..64).map(|_| should_fire("site-b")).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&f| f), "permille 400 fires within 64");
        assert!(!first.iter().all(|&f| f), "permille 400 also skips");
        reset();
    }

    #[test]
    fn maybe_panic_panics_only_when_armed() {
        let _guard = serial();
        reset();
        configure(
            "site-c",
            Schedule::Nth {
                every: 2,
                offset: 0,
            },
        );
        let caught =
            std::panic::catch_unwind(|| maybe_panic("site-c")).expect_err("first passage fires");
        let text = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("failpoint site-c fired"));
        maybe_panic("site-c"); // second passage: off-residue, no panic
        reset();
    }

    #[test]
    fn sleep_payload_is_applied_on_fire() {
        let _guard = serial();
        reset();
        configure_sleep(
            "site-d",
            Schedule::Nth {
                every: 1,
                offset: 0,
            },
            Duration::from_millis(15),
        );
        let start = std::time::Instant::now();
        maybe_sleep("site-d");
        assert!(start.elapsed() >= Duration::from_millis(10));
        reset();
    }
}
