//! A long-running test-set oracle for comparator networks.
//!
//! The paper's result is that a *small certified test set* answers "is
//! this network correct / which faults does this set catch?".  The
//! engine crates compute those answers as one-shot library calls; this
//! crate turns them into a **service**: a work queue and worker pool
//! accept verify / coverage / minimum-augmentation queries for
//! arbitrary submitted networks and answer them at high throughput.
//!
//! The serving problem has three levers, each its own module:
//!
//! * **Batching** ([`oracle`]) — queued coverage queries are sharded by
//!   (network hash, universe, redundancy flag); each shard computes one
//!   shared [`DetectionMatrix`](sortnet_faults::bitsim::DetectionMatrix)
//!   over the union of the shard's test vectors and derives every
//!   member's report from it, folding verdicts through the engine's own
//!   [`summarise_verdicts`](sortnet_faults::coverage::summarise_verdicts)
//!   so batched answers are bit-identical to cold ones.
//! * **Caching** ([`cache`]) — an LRU over finished answers and over
//!   detection matrices, keyed by (network hash, universe, `n`, test
//!   fingerprint, query kind), with hit/miss/eviction counters.
//! * **Budget degradation** ([`pool`], [`oracle`]) — a per-request
//!   [`SweepBudget`] (or the
//!   service default) is plumbed into the engine's budgeted entry
//!   points, so one oversized query degrades to a typed
//!   [`Completion::Partial`] answer instead of stalling the queue.
//!
//! On top of the serving levers sits a **robustness layer**: admission
//! control with a typed [`ServiceError::Overloaded`] refusal and a
//! configurable shed policy ([`pool`]), per-request deadlines checked
//! at dequeue and intersected with the sweep budget ([`oracle`]),
//! per-request `catch_unwind` worker supervision with a quarantine
//! ledger ([`pool`]), connection deadlines / an idle reaper / a
//! retrying client on the wire ([`wire`]), and a deterministic
//! fault-injection registry ([`failpoint`]) the grinder's chaos leg
//! drives.
//!
//! The front ends: a direct in-process API ([`Service`]) driven by the
//! CLI, benches and the grinder, and a minimal length-prefixed wire
//! protocol over a Unix socket ([`wire`]).  A seeded load generator
//! ([`loadgen`]) replays a mixed workload (hot repeats, cold networks,
//! `n > 64` packed queries, deliberately starved budgets) and reports
//! latency percentiles, throughput and cache hit rate.
//!
//! See `docs/SERVICE.md` for the architecture notes and the exact
//! batching/caching rules.

use std::time::Duration;

use sortnet_faults::FaultSimEngine;
use sortnet_network::budget::SweepBudget;
use sortnet_network::lanes::Backend;

pub mod cache;
pub mod error;
pub mod failpoint;
pub mod loadgen;
pub mod oracle;
pub mod pool;
pub mod wire;

pub use error::ServiceError;
pub use oracle::{
    answer_cold, Answer, AugmentSummary, CacheStatus, Completion, Query, Request, Response,
};
pub use pool::{Service, ServiceStats, ShedPolicy};

/// Tuning knobs of one [`Service`] instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Most queued requests one worker drains into a single batch —
    /// the sharding window.  Larger batches amortise matrices across
    /// more queries; smaller ones bound per-answer latency.
    pub max_batch: usize,
    /// Simulation engine for coverage grades and candidate matrices.
    pub engine: FaultSimEngine,
    /// Lane-ops backend for every bit-parallel sweep.
    pub backend: Backend,
    /// Answer-cache capacity in entries (0 = off).
    pub answer_cache: usize,
    /// Detection-matrix cache capacity in entries (0 = off).
    pub matrix_cache: usize,
    /// Answer-cache entry time-to-live; `None` never expires.  Expired
    /// entries are never served and are counted separately from LRU
    /// evictions (see [`cache::CacheCounters::expirations`]).
    pub answer_ttl: Option<Duration>,
    /// Detection-matrix cache entry time-to-live; `None` never expires.
    pub matrix_ttl: Option<Duration>,
    /// Budget applied to requests that do not carry their own.  Any
    /// bounded effective budget routes a request down the solo,
    /// cache-bypassing path (see [`oracle::answer_batch`]).
    pub default_budget: SweepBudget,
    /// Branch-and-bound node cap for augmentation searches; `None`
    /// runs every search to certification.
    pub node_budget: Option<u64>,
    /// Most jobs allowed to wait in the queue before admission control
    /// sheds work (`0` = unbounded, the pre-admission-control
    /// behaviour).  A full queue answers with a typed
    /// [`ServiceError::Overloaded`] refusal instead of blocking.
    pub queue_capacity: usize,
    /// What to shed when the queue is full: the incoming request or the
    /// oldest queued one.
    pub shed_policy: ShedPolicy,
    /// Panicking evaluation attempts a request gets before it is
    /// quarantined and answered with a typed
    /// [`ServiceError::WorkerPanicked`].
    pub panic_attempts: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 32,
            engine: FaultSimEngine::default(),
            backend: Backend::active(),
            answer_cache: 256,
            matrix_cache: 32,
            answer_ttl: None,
            matrix_ttl: None,
            default_budget: SweepBudget::unlimited(),
            node_budget: Some(10_000),
            queue_capacity: 1024,
            shed_policy: ShedPolicy::RejectNew,
            panic_attempts: 2,
        }
    }
}
