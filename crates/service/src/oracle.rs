//! Query/answer types and the two evaluation paths of the oracle.
//!
//! [`answer_cold`] is the reference path: one request, straight through
//! the engine's typed entry points, no cache.  [`answer_batch`] is the
//! serving path the worker pool drives: it looks finished answers up in
//! the LRU, shards the remaining coverage queries by (network, universe,
//! redundancy mode), computes **one** detection matrix per shard over
//! the union of the shard's test vectors, and derives every member's
//! report from that matrix — folding verdicts through the engine's own
//! [`summarise_verdicts`] so a batched answer is bit-identical to the
//! cold one (the grinder's cache strategy and the load generator both
//! assert this).
//!
//! Budget rule: a request carrying its own [`SweepBudget`] (or running
//! under a bounded service default) is evaluated **solo** through the
//! engine's budgeted entry points and never touches the cache in either
//! direction ([`CacheStatus::Bypass`]) — partial answers depend on the
//! budget that produced them, so caching them would let one request's
//! starvation leak into another's answer.
//!
//! Deadline rule: a request's [`Request::deadline`] is intersected into
//! its effective budget's deadline axis, which makes the budget bounded
//! — so deadline-carrying requests automatically ride the solo,
//! cache-bypassing path (a deadline-shaped partial must never be
//! cached) and in-flight work degrades to the engine's typed
//! [`Completion::Partial`] with [`BudgetReason::Deadline`].  The *queue*
//! half of the deadline contract (answering an already-expired request
//! without touching the engine) lives in [`crate::pool`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use sortnet_combinat::ChannelVec;
use sortnet_faults::bitsim::{detection_matrix_multi_packed_on, DetectionMatrix};
use sortnet_faults::coverage::{
    check_coverage_inputs, coverage_of_universe_budgeted_packed_with, summarise_verdicts,
    try_coverage_of_universe_packed_with, CoverageReport, RedundancyMode,
};
use sortnet_faults::universe::{
    is_multi_fault_redundant, is_multi_fault_redundant_relative, MultiFault, StandardUniverse,
};
use sortnet_faults::FaultSimEngine;
use sortnet_network::budget::{BudgetReason, Budgeted, SweepBudget, SweepProgress};
use sortnet_network::lanes::LaneWidth;
use sortnet_network::Network;
use sortnet_testsets::augment::{try_minimum_augmentation_packed, CandidatePool, SearchOptions};
use sortnet_testsets::verify::{self, try_verify_on, Property, Strategy};

use crate::cache::{fingerprint, CacheCounters, Lru};
use crate::error::ServiceError;
use crate::failpoint;
use crate::ServiceConfig;

/// One question about one submitted network.
///
/// Test vectors are always carried in the universal multi-word packing
/// ([`ChannelVec`]) so a single request type spans `n ≤ 64` and the
/// packed `n > 64` regime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// "Does this network have the property?" — the paper's test-set
    /// verification ([`verify::try_verify_on`]; `n ≤ 64`).
    Verify {
        /// The property to check.
        property: Property,
        /// The test family to drive the check with.
        strategy: Strategy,
    },
    /// "Which faults of this universe does my test set catch?"
    Coverage {
        /// The fault universe to grade against.
        universe: StandardUniverse,
        /// The submitted test set, in submission order.
        tests: Vec<ChannelVec>,
        /// How missed faults are classified as redundant/testable:
        /// [`RedundancyMode::Exhaustive`] (admissible only for `n < 32`;
        /// refused up front otherwise), [`RedundancyMode::RelativeTo`] a
        /// named packed family (the only classification admissible past
        /// the 64-line wall), or [`RedundancyMode::Skip`].
        redundancy: RedundancyMode,
    },
    /// "What is the smallest augmentation making my test set complete?"
    /// (sorted-strings candidate pool, exact set-cover search).
    Augment {
        /// The fault universe the augmented set must cover.
        universe: StandardUniverse,
        /// The base test set to augment.
        tests: Vec<ChannelVec>,
    },
}

impl Query {
    /// A deterministic fingerprint of the query for cache keys.  The
    /// test vectors are part of the hash: coverage and augmentation
    /// answers depend on the submitted set (first-detection indices are
    /// positions *in that set*), so two queries differing only in tests
    /// must never share a cache line.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        match self {
            Query::Verify { property, strategy } => {
                let (ptag, k) = match property {
                    Property::Sorter => (0u8, 0u64),
                    Property::Selector { k } => (1, *k as u64),
                    Property::Merger => (2, 0),
                };
                let stag = match strategy {
                    Strategy::Exhaustive => 0u8,
                    Strategy::MinimalBinary => 1,
                    Strategy::Permutation => 2,
                };
                fingerprint(&(0u8, ptag, k, stag))
            }
            Query::Coverage {
                universe,
                tests,
                redundancy,
            } => fingerprint(&(1u8, universe, redundancy, tests)),
            Query::Augment { universe, tests } => fingerprint(&(2u8, universe, tests)),
        }
    }
}

/// A queued unit of work: a network, a question, an optional budget,
/// an optional deadline.
#[derive(Clone, Debug)]
pub struct Request {
    /// The submitted network.
    pub network: Network,
    /// The question.
    pub query: Query,
    /// Per-request budget; `None` falls back to the service default.
    /// Any bounded effective budget routes the request down the solo,
    /// cache-bypassing path.
    pub budget: Option<SweepBudget>,
    /// Per-request deadline.  Checked at dequeue (an already-expired
    /// request gets a typed [`ServiceError::DeadlineExpired`] without
    /// touching the engine) and intersected into the effective budget
    /// so in-flight work degrades to a typed deadline partial.  Crosses
    /// the wire as a relative remaining-time axis.
    pub deadline: Option<Instant>,
}

/// The minimum-augmentation answer, summarised for serving (the full
/// [`AugmentationReport`](sortnet_testsets::augment::AugmentationReport)
/// carries per-fault witness lists the wire front does not ship).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AugmentSummary {
    /// Detectable faults the base set missed.
    pub missed: usize,
    /// Candidates streamed through the matrix before dedup.
    pub candidates_considered: usize,
    /// The greedy augmentation (upper bound).
    pub greedy: Vec<ChannelVec>,
    /// The smallest augmentation found.
    pub minimum: Vec<ChannelVec>,
    /// Root lower bound on any augmentation from the pool.
    pub lower_bound: usize,
    /// `true` when `minimum` is a certified optimum over the pool.
    pub certified: bool,
}

/// A successful answer, by query kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// Outcome of a [`Query::Verify`].
    Verify(verify::Report),
    /// Outcome of a [`Query::Coverage`].
    Coverage(CoverageReport),
    /// Outcome of a [`Query::Augment`].
    Augment(AugmentSummary),
}

/// Whether the answer reflects the whole computation or a budgeted
/// prefix of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// The run finished; the answer equals the unbudgeted one.
    Complete,
    /// The budget tripped; the answer is the engine's conservative
    /// partial (see `docs/SERVICE.md` for the per-kind semantics).
    Partial {
        /// The axis that tripped.
        reason: BudgetReason,
        /// Work committed before the trip.
        progress: SweepProgress,
    },
}

/// How the cache participated in an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the answer cache.
    Hit,
    /// Computed (and, when complete, stored).
    Miss,
    /// Budgeted solo path: the cache was neither read nor written.
    Bypass,
}

/// The service's reply to one [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The answer, or a typed refusal — the engine's (passed through as
    /// [`ServiceError::Engine`]) or the service's own (overload,
    /// expired deadline, quarantined panic).
    pub outcome: Result<Answer, ServiceError>,
    /// Complete vs budget-degraded.
    pub completion: Completion,
    /// Cache participation.
    pub cache: CacheStatus,
    /// Service-side processing latency in microseconds (queue wait
    /// excluded; the load generator measures client-side round trips
    /// separately).
    pub micros: u64,
}

/// The answer-cache key: network fingerprint + line count + query
/// fingerprint (which covers universe, flags and the submitted tests —
/// see [`Query::fingerprint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AnswerKey {
    /// [`fingerprint`] of the whole network (lines + comparator list).
    pub network: u64,
    /// Line count, kept explicit so `n` is part of the key even under
    /// fingerprint collisions of the comparator list.
    pub lines: usize,
    /// [`Query::fingerprint`].
    pub query: u64,
}

impl AnswerKey {
    /// The key for `request`.
    #[must_use]
    pub fn of(request: &Request) -> Self {
        Self {
            network: fingerprint(&request.network),
            lines: request.network.lines(),
            query: request.query.fingerprint(),
        }
    }
}

/// The matrix-cache key: one shared detection matrix per (network,
/// universe, union-test-list) triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatrixKey {
    /// [`fingerprint`] of the whole network.
    pub network: u64,
    /// Line count (same rationale as [`AnswerKey::lines`]).
    pub lines: usize,
    /// The fault universe the rows enumerate.
    pub universe: StandardUniverse,
    /// [`fingerprint`] of the union test list, order-sensitive (columns
    /// are positional).
    pub tests: u64,
}

/// The two LRU caches the workers share.  Each is behind its own mutex
/// and locked only for lookups and inserts — matrix and coverage
/// computation happen outside the locks, so concurrent workers can
/// (rarely) both compute the same entry; the second insert is a
/// harmless overwrite.
pub struct OracleCaches {
    answers: Mutex<Lru<AnswerKey, Answer>>,
    matrices: Mutex<Lru<MatrixKey, Arc<DetectionMatrix>>>,
}

impl OracleCaches {
    /// Fresh caches with the given entry capacities and no TTL.
    #[must_use]
    pub fn new(answer_capacity: usize, matrix_capacity: usize) -> Self {
        Self::with_ttls(answer_capacity, None, matrix_capacity, None)
    }

    /// Fresh caches with capacities and per-cache entry TTLs.
    #[must_use]
    pub fn with_ttls(
        answer_capacity: usize,
        answer_ttl: Option<std::time::Duration>,
        matrix_capacity: usize,
        matrix_ttl: Option<std::time::Duration>,
    ) -> Self {
        Self {
            answers: Mutex::new(Lru::with_ttl(answer_capacity, answer_ttl)),
            matrices: Mutex::new(Lru::with_ttl(matrix_capacity, matrix_ttl)),
        }
    }

    /// (answer-cache counters, matrix-cache counters).
    #[must_use]
    pub fn counters(&self) -> (CacheCounters, CacheCounters) {
        (
            unpoisoned(&self.answers).counters(),
            unpoisoned(&self.matrices).counters(),
        )
    }
}

/// Locks through poisoning.  Worker panics are caught and supervised
/// per request ([`crate::pool`]); the cache locks are only ever held
/// across single LRU operations (whose invariants hold between calls),
/// and the in-tree panic sites — the engine's entry points and the
/// `worker-panic` failpoint — all sit outside these locks, so a
/// poisoned flag here means "another worker panicked elsewhere", not
/// "this data is torn".
fn unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn effective_budget(config: &ServiceConfig, request: &Request) -> SweepBudget {
    let mut budget = request
        .budget
        .clone()
        .unwrap_or_else(|| config.default_budget.clone());
    if let Some(deadline) = request.deadline {
        // Intersect: the sooner of the budget's own deadline and the
        // request's.  This bounds the budget, which routes the request
        // down the solo cache-bypassing path — deadline-shaped partials
        // must never be cached.
        budget.deadline = Some(budget.deadline.map_or(deadline, |d| d.min(deadline)));
    }
    budget
}

fn completion_of<T>(outcome: &Budgeted<T>) -> Completion {
    match outcome {
        Budgeted::Complete(_) => Completion::Complete,
        Budgeted::Partial {
            reason, progress, ..
        } => Completion::Partial {
            reason: *reason,
            progress: *progress,
        },
    }
}

/// One shared-prefix detection matrix, at the lane width the configured
/// engine implies (the scalar engine maps to `W = 1`; all widths
/// produce bit-identical matrices, so the choice is a throughput knob,
/// never a semantic one).
fn build_matrix(
    config: &ServiceConfig,
    network: &Network,
    faults: &[MultiFault],
    tests: &[ChannelVec],
) -> DetectionMatrix {
    let b = config.backend;
    match config.engine {
        FaultSimEngine::Scalar => {
            detection_matrix_multi_packed_on::<1, ChannelVec>(network, faults, tests, b)
        }
        FaultSimEngine::BitParallel => {
            detection_matrix_multi_packed_on::<4, ChannelVec>(network, faults, tests, b)
        }
        FaultSimEngine::BitParallelWide(w) => match w {
            LaneWidth::W1 => {
                detection_matrix_multi_packed_on::<1, ChannelVec>(network, faults, tests, b)
            }
            LaneWidth::W2 => {
                detection_matrix_multi_packed_on::<2, ChannelVec>(network, faults, tests, b)
            }
            LaneWidth::W4 => {
                detection_matrix_multi_packed_on::<4, ChannelVec>(network, faults, tests, b)
            }
            LaneWidth::W8 => {
                detection_matrix_multi_packed_on::<8, ChannelVec>(network, faults, tests, b)
            }
            LaneWidth::W16 => {
                detection_matrix_multi_packed_on::<16, ChannelVec>(network, faults, tests, b)
            }
        },
    }
}

/// The reference path: evaluates one request straight through the
/// engine's typed entry points, with the request's effective budget and
/// no cache in either direction.  The batched path is proven
/// bit-identical to this one.
#[must_use]
pub fn answer_cold(config: &ServiceConfig, request: &Request) -> Response {
    let start = Instant::now();
    let budget = effective_budget(config, request);
    let (outcome, completion) = evaluate(config, request, &budget);
    Response {
        outcome,
        completion,
        cache: CacheStatus::Bypass,
        micros: start.elapsed().as_micros() as u64,
    }
}

fn evaluate(
    config: &ServiceConfig,
    request: &Request,
    budget: &SweepBudget,
) -> (Result<Answer, ServiceError>, Completion) {
    let network = &request.network;
    match &request.query {
        // Verification cost is bounded by the paper's test-set sizes
        // (the whole point of the theorems), so it runs unbudgeted; the
        // typed guards refuse the genuinely unbounded shapes (n > 64,
        // exhaustive n ≥ 32) up front.
        Query::Verify { property, strategy } => (
            try_verify_on(network, *property, *strategy, config.backend)
                .map(Answer::Verify)
                .map_err(ServiceError::from),
            Completion::Complete,
        ),
        Query::Coverage {
            universe,
            tests,
            redundancy,
        } => {
            if budget.is_unlimited() {
                let report = try_coverage_of_universe_packed_with(
                    network,
                    universe,
                    tests,
                    *redundancy,
                    config.engine,
                );
                (
                    report.map(Answer::Coverage).map_err(ServiceError::from),
                    Completion::Complete,
                )
            } else {
                match coverage_of_universe_budgeted_packed_with(
                    network,
                    universe,
                    tests,
                    *redundancy,
                    config.engine,
                    budget,
                ) {
                    Ok(budgeted) => {
                        let completion = completion_of(&budgeted);
                        (Ok(Answer::Coverage(budgeted.into_value())), completion)
                    }
                    Err(e) => (Err(e.into()), Completion::Complete),
                }
            }
        }
        Query::Augment { universe, tests } => {
            let options = SearchOptions {
                engine: config.engine,
                node_budget: config.node_budget,
                budget: budget.clone(),
                // The augmentation surface keeps the legacy exhaustive
                // grading; past-the-wall callers go through the packed
                // entry points directly.
                redundancy: RedundancyMode::Exhaustive,
            };
            match try_minimum_augmentation_packed::<ChannelVec>(
                network,
                universe,
                tests,
                &CandidatePool::SortedStrings,
                &options,
            ) {
                Ok(budgeted) => {
                    let completion = completion_of(&budgeted);
                    let report = budgeted.into_value();
                    (
                        Ok(Answer::Augment(AugmentSummary {
                            missed: report.missed_faults.len(),
                            candidates_considered: report.candidates_considered,
                            greedy: report.greedy,
                            minimum: report.minimum,
                            lower_bound: report.lower_bound,
                            certified: report.certified,
                        })),
                        completion,
                    )
                }
                Err(e) => (Err(e.into()), Completion::Complete),
            }
        }
    }
}

/// A coverage shard: every member grades the same network against the
/// same universe with the same redundancy mode, so one matrix (and one
/// redundancy sweep) serves them all.
struct Shard {
    members: Vec<usize>,
}

/// The serving path: answers a drained batch of requests with cache
/// lookups, coverage sharding and shared matrices.  Responses come back
/// in request order.
#[must_use]
pub fn answer_batch(
    config: &ServiceConfig,
    caches: &OracleCaches,
    requests: &[Request],
) -> Vec<Response> {
    let start = Instant::now();
    let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
    let mut shards: HashMap<(u64, usize, StandardUniverse, RedundancyMode), Shard> = HashMap::new();

    for (i, request) in requests.iter().enumerate() {
        // Chaos site: a per-request injected panic, caught and
        // supervised by the worker pool like any real evaluation panic.
        // Deliberately placed before any cache lock is taken.
        failpoint::maybe_panic("worker-panic");
        let budget = effective_budget(config, request);
        if !budget.is_unlimited() {
            // Solo, cache-bypassing path: partial answers are shaped by
            // their budget and must not be shared.
            let (outcome, completion) = evaluate(config, request, &budget);
            responses[i] = Some(Response {
                outcome,
                completion,
                cache: CacheStatus::Bypass,
                micros: start.elapsed().as_micros() as u64,
            });
            continue;
        }
        let key = AnswerKey::of(request);
        if let Some(answer) = unpoisoned(&caches.answers).get(&key) {
            responses[i] = Some(Response {
                outcome: Ok(answer.clone()),
                completion: Completion::Complete,
                cache: CacheStatus::Hit,
                micros: start.elapsed().as_micros() as u64,
            });
            continue;
        }
        match &request.query {
            Query::Coverage {
                universe,
                redundancy,
                ..
            } => {
                shards
                    .entry((key.network, key.lines, *universe, *redundancy))
                    .or_insert_with(|| Shard {
                        members: Vec::new(),
                    })
                    .members
                    .push(i);
            }
            Query::Verify { .. } | Query::Augment { .. } => {
                let (outcome, completion) = evaluate(config, request, &SweepBudget::unlimited());
                if completion == Completion::Complete {
                    if let Ok(answer) = &outcome {
                        unpoisoned(&caches.answers).insert(key, answer.clone());
                    }
                }
                responses[i] = Some(Response {
                    outcome,
                    completion,
                    cache: CacheStatus::Miss,
                    micros: start.elapsed().as_micros() as u64,
                });
            }
        }
    }

    for ((net_fp, lines, universe, redundancy), shard) in shards {
        // A fingerprint groups, equality decides: members whose network
        // is not byte-equal to the sub-shard leader get their own pass,
        // so a (astronomically unlikely) hash collision can never share
        // a matrix across different networks.
        let mut pending = shard.members;
        while let Some(&leader) = pending.first() {
            let network = requests[leader].network.clone();
            let (same, rest): (Vec<usize>, Vec<usize>) = pending
                .iter()
                .partition(|&&i| requests[i].network == network);
            pending = rest;
            answer_coverage_shard(
                config,
                caches,
                requests,
                &network,
                (net_fp, lines, universe, redundancy),
                &same,
                &mut responses,
                start,
            );
        }
    }

    responses
        .into_iter()
        .map(|r| r.expect("every request gets a response"))
        .collect()
}

fn shard_tests(requests: &[Request], i: usize) -> &[ChannelVec] {
    match &requests[i].query {
        Query::Coverage { tests, .. } => tests,
        _ => unreachable!("coverage shards hold coverage queries"),
    }
}

#[allow(clippy::too_many_arguments)]
fn answer_coverage_shard(
    config: &ServiceConfig,
    caches: &OracleCaches,
    requests: &[Request],
    network: &Network,
    key: (u64, usize, StandardUniverse, RedundancyMode),
    members: &[usize],
    responses: &mut [Option<Response>],
    start: Instant,
) {
    let (net_fp, lines, universe, redundancy) = key;
    // Admission per member, by the cold path's own rules.
    let mut faults: Option<Vec<MultiFault>> = None;
    let mut valid: Vec<usize> = Vec::with_capacity(members.len());
    for &i in members {
        match check_coverage_inputs(network, &universe, shard_tests(requests, i), redundancy) {
            Ok(f) => {
                faults.get_or_insert(f);
                valid.push(i);
            }
            Err(e) => {
                responses[i] = Some(Response {
                    outcome: Err(e.into()),
                    completion: Completion::Complete,
                    cache: CacheStatus::Miss,
                    micros: start.elapsed().as_micros() as u64,
                });
            }
        }
    }
    let Some(faults) = faults else { return };

    // The union test list, deduplicated in arrival order; per-member
    // columns map each submitted test to its union column.
    let mut union: Vec<ChannelVec> = Vec::new();
    let mut column: HashMap<&ChannelVec, usize> = HashMap::new();
    for &i in &valid {
        for test in shard_tests(requests, i) {
            if !column.contains_key(test) {
                column.insert(test, union.len());
                union.push(test.clone());
            }
        }
    }

    let mkey = MatrixKey {
        network: net_fp,
        lines,
        universe,
        tests: fingerprint(&union),
    };
    let matrix: Arc<DetectionMatrix> = {
        let cached = unpoisoned(&caches.matrices).get(&mkey).cloned();
        match cached {
            Some(m) => m,
            None => {
                let m = Arc::new(build_matrix(config, network, &faults, &union));
                unpoisoned(&caches.matrices).insert(mkey, Arc::clone(&m));
                m
            }
        }
    };

    // Per-member first detections, in each member's own test order —
    // exactly what the cold path's per-query sweep reports.
    let member_first: Vec<Vec<Option<usize>>> = valid
        .iter()
        .map(|&i| {
            let cols: Vec<usize> = shard_tests(requests, i).iter().map(|t| column[t]).collect();
            (0..faults.len())
                .map(|f| cols.iter().position(|&c| matrix.is_detected_by(f, c)))
                .collect()
        })
        .collect();

    // One redundancy sweep for the union of the shard's missed faults;
    // the verdict of a fault is engine-independent (and, for the
    // relative mode, depends only on the named family), so every member
    // shares it.
    let mut union_redundant: Vec<bool> = vec![false; faults.len()];
    if redundancy != RedundancyMode::Skip {
        let need: Vec<usize> = (0..faults.len())
            .filter(|&f| member_first.iter().any(|first| first[f].is_none()))
            .collect();
        match redundancy {
            RedundancyMode::Exhaustive => {
                for &f in &need {
                    union_redundant[f] = is_multi_fault_redundant(network, &faults[f]);
                }
            }
            RedundancyMode::RelativeTo(family) => {
                // Materialise the named family once per shard; every
                // member's verdicts come from the same vectors.
                let fam: Vec<ChannelVec> = family.collect(lines);
                for &f in &need {
                    union_redundant[f] =
                        is_multi_fault_redundant_relative(network, &faults[f], &fam);
                }
            }
            RedundancyMode::Skip => unreachable!("skip mode classifies nothing"),
        }
    }

    for (slot, &i) in valid.iter().enumerate() {
        let first = &member_first[slot];
        let redundant: Vec<bool> = first
            .iter()
            .zip(&union_redundant)
            .map(|(f, &r)| f.is_none() && r)
            .collect();
        let report = summarise_verdicts(&faults, first, &redundant, redundancy);
        unpoisoned(&caches.answers).insert(
            AnswerKey::of(&requests[i]),
            Answer::Coverage(report.clone()),
        );
        responses[i] = Some(Response {
            outcome: Ok(Answer::Coverage(report)),
            completion: Completion::Complete,
            cache: CacheStatus::Miss,
            micros: start.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortnet_network::builders::batcher::odd_even_merge_sort;
    use sortnet_network::error::EngineError;

    fn sorted_tests(n: usize) -> Vec<ChannelVec> {
        (0..=n)
            .map(|ones| ChannelVec::sorted_of(n - ones, ones))
            .collect()
    }

    fn coverage_request(n: usize, redundancy: impl Into<RedundancyMode>) -> Request {
        Request {
            network: odd_even_merge_sort(n),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: sorted_tests(n),
                redundancy: redundancy.into(),
            },
            budget: None,
            deadline: None,
        }
    }

    #[test]
    fn batched_coverage_is_bit_identical_to_cold_and_caches_repeats() {
        let config = ServiceConfig::default();
        let caches = OracleCaches::new(8, 4);
        let requests = vec![coverage_request(8, true), coverage_request(8, true)];
        let batch = answer_batch(&config, &caches, &requests);
        let cold = answer_cold(&config, &requests[0]);
        // Both members miss the cache (the duplicate joins the same
        // shard in the same batch), but both answers equal the cold one.
        for response in &batch {
            assert_eq!(response.outcome, cold.outcome);
            assert_eq!(response.completion, Completion::Complete);
        }
        // A repeat in a later batch is a pure cache hit.
        let again = answer_batch(&config, &caches, &requests[..1]);
        assert_eq!(again[0].cache, CacheStatus::Hit);
        assert_eq!(again[0].outcome, cold.outcome);
    }

    #[test]
    fn mixed_shard_members_get_their_own_first_detection_order() {
        // Two queries over the same network/universe whose test lists
        // differ in order: the shared matrix must not leak one member's
        // indices into the other's report.
        let n = 6;
        let network = odd_even_merge_sort(n);
        let forward = sorted_tests(n);
        let mut reversed = forward.clone();
        reversed.reverse();
        let config = ServiceConfig::default();
        let caches = OracleCaches::new(8, 4);
        let make = |tests: Vec<ChannelVec>| Request {
            network: network.clone(),
            query: Query::Coverage {
                universe: StandardUniverse::SingleComparator,
                tests,
                redundancy: RedundancyMode::Skip,
            },
            budget: None,
            deadline: None,
        };
        let requests = vec![make(forward), make(reversed)];
        let batch = answer_batch(&config, &caches, &requests);
        for (response, request) in batch.iter().zip(&requests) {
            assert_eq!(response.outcome, answer_cold(&config, request).outcome);
        }
    }

    #[test]
    fn budgeted_requests_bypass_the_cache_and_degrade_typed() {
        // The scalar engine admits one block per fault scan, so a
        // one-block cap must trip on the 16-fault stuck-line universe
        // (the W = 4 engine would fit all nine tests in a single block
        // and complete).
        let config = ServiceConfig {
            engine: FaultSimEngine::Scalar,
            ..ServiceConfig::default()
        };
        let caches = OracleCaches::new(8, 4);
        let mut request = coverage_request(8, false);
        request.budget = Some(SweepBudget::unlimited().with_max_blocks(1));
        let batch = answer_batch(&config, &caches, std::slice::from_ref(&request));
        assert_eq!(batch[0].cache, CacheStatus::Bypass);
        assert!(matches!(
            batch[0].completion,
            Completion::Partial {
                reason: BudgetReason::Blocks,
                ..
            }
        ));
        // Identical to the cold path under the same budget.
        assert_eq!(batch[0].outcome, answer_cold(&config, &request).outcome);
        // Nothing was cached.
        let (answers, _) = caches.counters();
        assert_eq!(answers.hits, 0);
    }

    #[test]
    fn verify_and_augment_queries_cache_their_answers() {
        let config = ServiceConfig::default();
        let caches = OracleCaches::new(8, 4);
        let network = odd_even_merge_sort(6);
        let verify_req = Request {
            network: network.clone(),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: None,
        };
        // The paper's minimal binary sorter set misses some stuck-line
        // faults, and those misses are detectable by sorted strings —
        // exactly what the service's SortedStrings pool offers, so the
        // augmentation search is feasible and certifies.
        let augment_req = Request {
            network,
            query: Query::Augment {
                universe: StandardUniverse::StuckLine,
                tests: sortnet_testsets::sorting::binary_testset(6)
                    .into_iter()
                    .map(ChannelVec::from_bitstring)
                    .collect(),
            },
            budget: None,
            deadline: None,
        };
        let first = answer_batch(&config, &caches, &[verify_req.clone(), augment_req.clone()]);
        assert!(first.iter().all(|r| r.cache == CacheStatus::Miss));
        let second = answer_batch(&config, &caches, &[verify_req, augment_req]);
        assert!(second.iter().all(|r| r.cache == CacheStatus::Hit));
        assert_eq!(
            first.iter().map(|r| &r.outcome).collect::<Vec<_>>(),
            second.iter().map(|r| &r.outcome).collect::<Vec<_>>()
        );
        match &first[0].outcome {
            Ok(Answer::Verify(report)) => assert!(report.passed),
            other => panic!("expected a verify answer, got {other:?}"),
        }
        match &first[1].outcome {
            Ok(Answer::Augment(summary)) => {
                assert!(summary.certified);
                assert!(!summary.minimum.is_empty());
            }
            other => panic!("expected an augment answer, got {other:?}"),
        }
    }

    #[test]
    fn typed_refusals_flow_through_the_batch_path() {
        // Packed redundancy at n = 96 is refused up front with the
        // pinned SweepTooLarge error, batched exactly as cold.
        let config = ServiceConfig::default();
        let caches = OracleCaches::new(8, 4);
        let n = 96;
        let request = Request {
            network: Network::from_pairs(n, &[(0, 1), (1, 95)]),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: sorted_tests(n),
                redundancy: RedundancyMode::Exhaustive,
            },
            budget: None,
            deadline: None,
        };
        let batch = answer_batch(&config, &caches, std::slice::from_ref(&request));
        assert_eq!(
            batch[0].outcome,
            Err(ServiceError::Engine(EngineError::SweepTooLarge {
                lines: n
            }))
        );
        assert_eq!(batch[0].outcome, answer_cold(&config, &request).outcome);
    }

    #[test]
    fn relative_redundancy_coverage_serves_past_the_64_line_wall() {
        use sortnet_network::lanes::PackedFamily;
        // The headline regime: n = 96, redundancy graded relative to the
        // sorted strings — batched, cached and cold answers all agree and
        // the report names its provenance.
        let config = ServiceConfig::default();
        let caches = OracleCaches::new(8, 4);
        let n = 96;
        let request = Request {
            network: Network::from_pairs(n, &[(0, 95), (31, 64), (0, 1)]),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: vec![ChannelVec::zeros(n)],
                redundancy: RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
            },
            budget: None,
            deadline: None,
        };
        let cold = answer_cold(&config, &request);
        let Ok(Answer::Coverage(report)) = &cold.outcome else {
            panic!("expected a coverage answer, got {:?}", cold.outcome);
        };
        assert_eq!(report.redundancy, "relative:sorted-strings");
        assert!(report.redundant_faults > 0, "family-invisible faults exist");
        assert!(report.missed > 0, "one test cannot catch everything");
        let batch = answer_batch(&config, &caches, std::slice::from_ref(&request));
        assert_eq!(batch[0].cache, CacheStatus::Miss);
        assert_eq!(batch[0].outcome, cold.outcome);
        let again = answer_batch(&config, &caches, std::slice::from_ref(&request));
        assert_eq!(again[0].cache, CacheStatus::Hit);
        assert_eq!(again[0].outcome, cold.outcome);
    }

    #[test]
    fn a_past_deadline_intersects_into_the_budget_and_degrades_typed() {
        // The engine-side half of the deadline contract: an expired
        // deadline bounds the effective budget, the first block is
        // refused, and the answer is the engine's conservative partial
        // with the Deadline reason — on the cache-bypassing path.
        let config = ServiceConfig::default();
        let caches = OracleCaches::new(8, 4);
        let mut request = coverage_request(8, false);
        request.deadline = Some(Instant::now() - std::time::Duration::from_millis(5));
        let cold = answer_cold(&config, &request);
        assert!(matches!(
            cold.completion,
            Completion::Partial {
                reason: BudgetReason::Deadline,
                ..
            }
        ));
        assert!(cold.outcome.is_ok(), "a deadline partial is still typed Ok");
        let batch = answer_batch(&config, &caches, std::slice::from_ref(&request));
        assert_eq!(batch[0].cache, CacheStatus::Bypass);
        assert_eq!(batch[0].outcome, cold.outcome);
        assert_eq!(batch[0].completion, cold.completion);
        let (answers, _) = caches.counters();
        assert_eq!(answers.hits + answers.misses, 0, "deadline requests bypass");
    }

    #[test]
    fn a_deadline_intersects_with_an_existing_budget_deadline() {
        let config = ServiceConfig::default();
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let near = Instant::now() + std::time::Duration::from_secs(60);
        let mut request = coverage_request(8, false);
        request.budget = Some(SweepBudget::unlimited().with_deadline(far));
        request.deadline = Some(near);
        let budget = effective_budget(&config, &request);
        assert_eq!(budget.deadline, Some(near), "the sooner deadline wins");
        // And the other way round.
        request.budget = Some(SweepBudget::unlimited().with_deadline(near));
        request.deadline = Some(far);
        let budget = effective_budget(&config, &request);
        assert_eq!(budget.deadline, Some(near));
    }
}
