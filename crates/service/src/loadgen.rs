//! A seeded load generator for the oracle service.
//!
//! [`run`] replays a deterministic mixed workload against a fresh
//! [`Service`]: hot repeats (which must become answer-cache hits), cold
//! random networks, `n > 64` packed coverage queries, verify and
//! augmentation queries, and deliberately starved budgets (which must
//! degrade to typed [`Completion::Partial`] answers on the
//! cache-bypassing path).  Requests go in waves through
//! [`Service::submit_batch`], so batching pressure is real; the
//! client-observed latency of a request is its whole wave's round trip.
//!
//! With `check_against_cold` on (the default), every response is
//! compared against [`answer_cold`] for the same request and budget —
//! outcome and completion must match bit-for-bit; cold answers are
//! memoised per (answer key, budget) so hot repeats do not recompute.
//! The mismatch counter in the summary is the service's end-to-end
//! correctness score: the CI smoke job asserts it is zero.

use std::collections::HashMap;
use std::time::Instant;

use sortnet_combinat::ChannelVec;
use sortnet_faults::coverage::RedundancyMode;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::budget::SweepBudget;
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::PackedFamily;
use sortnet_network::Network;
use sortnet_testsets::verify::{Property, Strategy};

use crate::error::ServiceError;
use crate::oracle::{answer_cold, AnswerKey, CacheStatus, Completion, Query, Request};
use crate::pool::Service;
use crate::ServiceConfig;

/// A tiny deterministic RNG (Steele–Lea–Flood splitmix64) so the
/// workload is reproducible from one `u64` seed with no dependencies.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// An RNG at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (modulo bias is irrelevant for workload
    /// shaping).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert_ne!(bound, 0);
        self.next_u64() % bound
    }
}

/// Knobs of one load-generator run.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Workload seed; the same seed always produces the same request
    /// sequence.
    pub seed: u64,
    /// Total requests to submit.
    pub queries: usize,
    /// Requests per [`Service::submit_batch`] wave.
    pub wave: usize,
    /// Compare every response against [`answer_cold`] (slower, but the
    /// point of the exercise).
    pub check_against_cold: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00_5EED,
            queries: 200,
            wave: 8,
            check_against_cold: true,
        }
    }
}

/// What one run measured.  All latencies are client-observed round
/// trips in microseconds.
#[derive(Clone, Debug)]
pub struct LoadgenSummary {
    /// The workload seed.
    pub seed: u64,
    /// Requests answered.
    pub queries: u64,
    /// Wall-clock time for the whole replay.
    pub elapsed_micros: u64,
    /// `queries / elapsed`.
    pub qps: f64,
    /// Median latency.
    pub p50_micros: u64,
    /// 99th-percentile latency.
    pub p99_micros: u64,
    /// Responses served from the answer cache.
    pub hits: u64,
    /// Responses computed on the cacheable path.
    pub misses: u64,
    /// Responses on the budgeted cache-bypassing path.
    pub bypasses: u64,
    /// Answer-cache evictions (capacity pressure).
    pub evictions: u64,
    /// Detection-matrix cache hits (shard sharing across waves).
    pub matrix_hits: u64,
    /// `hits / (hits + misses)` over the cacheable responses.
    pub hit_rate: f64,
    /// Responses that degraded to [`Completion::Partial`].
    pub partials: u64,
    /// Service-level refusals (overload, deadline, quarantine) — not
    /// engine errors, which the cold path reproduces and the mismatch
    /// counter covers.  Refused responses are excluded from the cold
    /// comparison; under the default unbounded-ish queue this workload
    /// must produce zero.
    pub refusals: u64,
    /// Responses whose outcome or completion differed from
    /// [`answer_cold`] — must be zero.
    pub mismatches: u64,
}

impl LoadgenSummary {
    /// The summary as a small flat JSON object (hand-rolled; the
    /// workspace carries no serde_json).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"service_loadgen\",\n",
                "  \"seed\": {},\n",
                "  \"queries\": {},\n",
                "  \"elapsed_micros\": {},\n",
                "  \"qps\": {:.2},\n",
                "  \"p50_micros\": {},\n",
                "  \"p99_micros\": {},\n",
                "  \"hits\": {},\n",
                "  \"misses\": {},\n",
                "  \"bypasses\": {},\n",
                "  \"evictions\": {},\n",
                "  \"matrix_hits\": {},\n",
                "  \"hit_rate\": {:.4},\n",
                "  \"partials\": {},\n",
                "  \"refusals\": {},\n",
                "  \"mismatches\": {}\n",
                "}}\n",
            ),
            self.seed,
            self.queries,
            self.elapsed_micros,
            self.qps,
            self.p50_micros,
            self.p99_micros,
            self.hits,
            self.misses,
            self.bypasses,
            self.evictions,
            self.matrix_hits,
            self.hit_rate,
            self.partials,
            self.refusals,
            self.mismatches,
        )
    }
}

fn binary_sorter_tests(n: usize) -> Vec<ChannelVec> {
    sortnet_testsets::sorting::binary_testset(n)
        .into_iter()
        .map(ChannelVec::from_bitstring)
        .collect()
}

fn sorted_tests(n: usize) -> Vec<ChannelVec> {
    (0..=n)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn sparse_sorted_tests(n: usize, step: usize) -> Vec<ChannelVec> {
    (0..=n)
        .step_by(step)
        .map(|ones| ChannelVec::sorted_of(n - ones, ones))
        .collect()
}

fn random_network(rng: &mut SplitMix64, n: usize, comparators: usize) -> Network {
    let pairs: Vec<(usize, usize)> = (0..comparators)
        .map(|_| {
            let a = rng.below(n as u64) as usize;
            let mut b = rng.below(n as u64 - 1) as usize;
            if b >= a {
                b += 1;
            }
            (a, b)
        })
        .collect();
    Network::from_pairs(n, &pairs)
}

/// The fixed `n > 64` hot network: a comparator ladder wide enough that
/// every query against it exercises the multi-word [`ChannelVec`] lane
/// path.
fn wide_hot_network() -> Network {
    let n = 96;
    let pairs: Vec<(usize, usize)> = (0..n / 2).map(|i| (i, i + n / 2)).collect();
    Network::from_pairs(n, &pairs)
}

/// The deterministic request sequence for `options`.
#[must_use]
pub fn workload(options: &LoadgenOptions) -> Vec<Request> {
    let mut rng = SplitMix64::new(options.seed);
    // The hot pool: a handful of fixed requests the workload keeps
    // resubmitting, so the answer cache has something to hit.
    let hot: Vec<Request> = vec![
        Request {
            network: odd_even_merge_sort(8),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: sorted_tests(8),
                redundancy: RedundancyMode::Exhaustive,
            },
            budget: None,
            deadline: None,
        },
        Request {
            network: odd_even_merge_sort(6),
            query: Query::Coverage {
                universe: StandardUniverse::SingleComparator,
                tests: sorted_tests(6),
                redundancy: RedundancyMode::Skip,
            },
            budget: None,
            deadline: None,
        },
        Request {
            network: odd_even_merge_sort(8),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: None,
        },
        Request {
            network: odd_even_merge_sort(6),
            query: Query::Augment {
                universe: StandardUniverse::StuckLine,
                tests: binary_sorter_tests(6),
            },
            budget: None,
            deadline: None,
        },
        Request {
            network: wide_hot_network(),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: sparse_sorted_tests(96, 12),
                redundancy: RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
            },
            budget: None,
            deadline: None,
        },
    ];

    // The starvation target: more test vectors than one block holds at
    // any lane width, so a one-block budget is guaranteed to trip.
    let starved = Request {
        network: odd_even_merge_sort(8),
        query: Query::Coverage {
            universe: StandardUniverse::StuckLine,
            tests: (0..1100)
                .map(|_| ChannelVec::from_words(&[rng.next_u64() & 0xFF], 8))
                .collect(),
            redundancy: RedundancyMode::Skip,
        },
        budget: None,
        deadline: None,
    };

    (0..options.queries)
        .map(|_| match rng.below(20) {
            // 40 % hot repeats — the cache-hit fuel.
            0..=7 => hot[rng.below(hot.len() as u64) as usize].clone(),
            // 15 % verify queries over the hot sorters.
            8..=10 => {
                let n = if rng.below(2) == 0 { 6 } else { 8 };
                let property = match rng.below(3) {
                    0 => Property::Sorter,
                    1 => Property::Selector {
                        k: 1 + rng.below(n as u64 - 1) as usize,
                    },
                    _ => Property::Merger,
                };
                let strategy = match rng.below(3) {
                    0 => Strategy::MinimalBinary,
                    1 => Strategy::Permutation,
                    _ => Strategy::Exhaustive,
                };
                Request {
                    network: odd_even_merge_sort(n),
                    query: Query::Verify { property, strategy },
                    budget: None,
                    deadline: None,
                }
            }
            // 10 % augmentation of a truncated base set.  Some
            // truncations leave misses no sorted-string candidate can
            // cover: the service must answer those with the same typed
            // infeasibility the cold path reports.
            11..=12 => {
                let base = binary_sorter_tests(6);
                let keep = base.len() - rng.below(3) as usize;
                Request {
                    network: odd_even_merge_sort(6),
                    query: Query::Augment {
                        universe: StandardUniverse::StuckLine,
                        tests: base[..keep].to_vec(),
                    },
                    budget: None,
                    deadline: None,
                }
            }
            // 20 % cold coverage of random small networks.
            13..=16 => {
                let n = 5 + rng.below(5) as usize;
                let comparators = n + rng.below(n as u64) as usize;
                let network = random_network(&mut rng, n, comparators);
                let redundancy = match rng.below(3) {
                    0 => RedundancyMode::Exhaustive,
                    1 => RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
                    _ => RedundancyMode::Skip,
                };
                Request {
                    network,
                    query: Query::Coverage {
                        universe: StandardUniverse::StuckLine,
                        tests: sorted_tests(n),
                        redundancy,
                    },
                    budget: None,
                    deadline: None,
                }
            }
            // 10 % cold n = 96 packed coverage; one in four asks for the
            // exhaustive redundancy sweep and must get the typed
            // up-front refusal, one in four grades relative to a packed
            // family past the wall.
            17..=18 => {
                let network = random_network(&mut rng, 96, 32);
                let redundancy = match rng.below(4) {
                    0 => RedundancyMode::Exhaustive,
                    1 => RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
                    _ => RedundancyMode::Skip,
                };
                Request {
                    network,
                    query: Query::Coverage {
                        universe: StandardUniverse::StuckLine,
                        tests: sparse_sorted_tests(96, 16),
                        redundancy,
                    },
                    budget: None,
                    deadline: None,
                }
            }
            // 5 % deliberately starved budgets: one admitted block can
            // never cover 1100 tests at any lane width (W = 16 packs
            // 1024 lanes per block) nor the scalar engine's 16 per-fault
            // scans, so these degrade to typed partials on the
            // cache-bypassing path under every engine.
            _ => {
                let mut request = starved.clone();
                request.budget = Some(SweepBudget::unlimited().with_max_blocks(1));
                request
            }
        })
        .collect()
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * pct / 100) as usize]
}

fn budget_axes(request: &Request) -> Option<(Option<u64>, Option<u64>)> {
    request.budget.as_ref().map(|b| (b.max_blocks, b.max_forks))
}

/// Replays the workload for `options` against a fresh service running
/// `config`.
#[must_use]
pub fn run(config: &ServiceConfig, options: &LoadgenOptions) -> LoadgenSummary {
    let service = Service::start(config.clone());
    let requests = workload(options);

    let mut latencies: Vec<u64> = Vec::with_capacity(requests.len());
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut bypasses = 0u64;
    let mut partials = 0u64;
    let mut refusals = 0u64;
    let mut mismatches = 0u64;
    // Cold reference answers, memoised so a hot request is only ever
    // recomputed once per distinct budget.
    type ColdKey = (AnswerKey, Option<(Option<u64>, Option<u64>)>);
    let mut cold: HashMap<ColdKey, crate::oracle::Response> = HashMap::new();

    let started = Instant::now();
    for wave in requests.chunks(options.wave.max(1)) {
        let sent = Instant::now();
        let responses = service.submit_batch(wave.to_vec());
        let round_trip = sent.elapsed().as_micros() as u64;
        for (request, response) in wave.iter().zip(&responses) {
            latencies.push(round_trip);
            match response.cache {
                CacheStatus::Hit => hits += 1,
                CacheStatus::Miss => misses += 1,
                CacheStatus::Bypass => bypasses += 1,
            }
            if !matches!(response.completion, Completion::Complete) {
                partials += 1;
            }
            // A service-level refusal never reaches the engine, so the
            // cold path has nothing to agree with — count it apart.
            if matches!(&response.outcome, Err(e) if !matches!(e, ServiceError::Engine(_))) {
                refusals += 1;
                continue;
            }
            if options.check_against_cold {
                let key = (AnswerKey::of(request), budget_axes(request));
                let reference = cold
                    .entry(key)
                    .or_insert_with(|| answer_cold(config, request));
                if reference.outcome != response.outcome
                    || reference.completion != response.completion
                {
                    mismatches += 1;
                }
            }
        }
    }
    let elapsed_micros = started.elapsed().as_micros().max(1) as u64;
    let stats = service.stats();
    drop(service);

    latencies.sort_unstable();
    let cacheable = hits + misses;
    LoadgenSummary {
        seed: options.seed,
        queries: requests.len() as u64,
        elapsed_micros,
        qps: requests.len() as f64 / (elapsed_micros as f64 / 1_000_000.0),
        p50_micros: percentile(&latencies, 50),
        p99_micros: percentile(&latencies, 99),
        hits,
        misses,
        bypasses,
        evictions: stats.answers.evictions,
        matrix_hits: stats.matrices.hits,
        hit_rate: if cacheable == 0 {
            0.0
        } else {
            hits as f64 / cacheable as f64
        },
        partials,
        refusals,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let options = LoadgenOptions {
            queries: 64,
            ..LoadgenOptions::default()
        };
        let a = workload(&options);
        let b = workload(&options);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(AnswerKey::of(x), AnswerKey::of(y));
            assert_eq!(budget_axes(x), budget_axes(y));
        }
        // A different seed produces a different sequence.
        let c = workload(&LoadgenOptions {
            seed: options.seed + 1,
            ..options
        });
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| AnswerKey::of(x) != AnswerKey::of(y)));
    }

    #[test]
    fn mixed_workload_runs_clean_end_to_end() {
        let config = ServiceConfig {
            workers: 2,
            max_batch: 8,
            answer_cache: 32,
            matrix_cache: 8,
            ..ServiceConfig::default()
        };
        let options = LoadgenOptions {
            queries: 48,
            wave: 8,
            ..LoadgenOptions::default()
        };
        let summary = run(&config, &options);
        assert_eq!(summary.queries, 48);
        assert_eq!(summary.mismatches, 0, "service answers must equal cold");
        assert_eq!(summary.refusals, 0, "the default queue never sheds this");
        assert!(summary.hits > 0, "hot repeats must hit the cache");
        assert!(summary.partials > 0, "starved budgets must degrade typed");
        assert!(summary.bypasses > 0, "budgeted requests must bypass");
        assert!(summary.p99_micros >= summary.p50_micros);
        assert!(summary.qps > 0.0);
        let json = summary.to_json();
        for field in [
            "\"p50_micros\"",
            "\"p99_micros\"",
            "\"qps\"",
            "\"hit_rate\"",
            "\"mismatches\"",
        ] {
            assert!(json.contains(field), "summary JSON must carry {field}");
        }
    }
}
