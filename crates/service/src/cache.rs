//! A plain O(1) LRU cache with hit/miss/eviction counters.
//!
//! The service keeps two instances: finished answers keyed by
//! [`crate::oracle::AnswerKey`], and shared detection matrices keyed by
//! [`crate::oracle::MatrixKey`]
//! (see `docs/SERVICE.md` for the key definitions and why the test
//! fingerprint must be part of both).  The implementation is a
//! `HashMap` into a slab-allocated doubly-linked recency list — no
//! external crates, every operation O(1) amortised.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::time::{Duration, Instant};

/// Cumulative counters of one cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure (not overwrites).
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed — counted separately
    /// from capacity evictions, on both the lookup path (a stale hit is
    /// a miss plus an expiration) and the insert path (displacing a
    /// stale tail is an expiration, not an eviction).
    pub expirations: u64,
}

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    inserted: Instant,
    prev: usize,
    next: usize,
}

/// An LRU map of bounded capacity, with optional entry TTL.
///
/// `get` refreshes recency; `insert` evicts the least-recently-used
/// entry when full.  A capacity of zero caches nothing (every lookup
/// is a miss, every insert an immediate no-op) — the configuration
/// spelling for "cache off".  With a TTL ([`Lru::with_ttl`]) an entry
/// older than the TTL is never served: the lookup removes it, counts an
/// expiration, and reports a miss, so stale answers cannot outlive
/// their window no matter how hot they are.
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    ttl: Option<Duration>,
    counters: CacheCounters,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries, no TTL.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_ttl(capacity, None)
    }

    /// An empty cache holding at most `capacity` entries whose entries
    /// expire `ttl` after insertion (overwrites restart the clock).
    #[must_use]
    pub fn with_ttl(capacity: usize, ttl: Option<Duration>) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            slab: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            ttl,
            counters: CacheCounters::default(),
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entry is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn is_expired(&self, idx: usize) -> bool {
        self.ttl
            .is_some_and(|ttl| self.slab[idx].inserted.elapsed() >= ttl)
    }

    /// Looks `key` up, refreshing its recency and counting the outcome.
    /// An entry past its TTL is removed, counted as an expiration, and
    /// reported as a miss — never served.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                if self.is_expired(idx) {
                    self.unlink(idx);
                    self.map.remove(key);
                    self.free.push(idx);
                    self.counters.expirations += 1;
                    self.counters.misses += 1;
                    return None;
                }
                self.counters.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.slab[idx].value)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting the least-recently-used
    /// entry if the cache is full.  Overwrites restart the TTL clock.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.slab[idx].inserted = Instant::now();
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "a full cache has a tail");
            if self.is_expired(victim) {
                self.counters.expirations += 1;
            } else {
                self.counters.evictions += 1;
            }
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            inserted: Instant::now(),
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            if self.head == idx {
                self.head = next;
            }
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            if self.tail == idx {
                self.tail = prev;
            }
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Hashes one value with the std sip hasher's fixed keys — deterministic
/// within and across processes, which keeps cache keys and the wire
/// protocol stable.
#[must_use]
pub fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.get(&1), Some(&"one")); // 1 is now most recent
        lru.insert(3, "three"); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.get(&3), Some(&"three"));
        let c = lru.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 1);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn overwrite_refreshes_without_evicting() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // overwrite, no eviction
        assert_eq!(lru.counters().evictions, 0);
        lru.insert(3, 30); // 2 is now LRU (1 was refreshed by overwrite)
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&11));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut lru: Lru<u32, u32> = Lru::new(0);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), None);
        assert!(lru.is_empty());
        assert_eq!(lru.counters().evictions, 0);
    }

    #[test]
    fn single_slot_cache_cycles_through_evictions() {
        let mut lru: Lru<u32, u32> = Lru::new(1);
        for i in 0..5 {
            lru.insert(i, i);
            assert_eq!(lru.get(&i), Some(&i));
        }
        assert_eq!(lru.counters().evictions, 4);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn fingerprint_is_deterministic_and_input_sensitive() {
        assert_eq!(fingerprint(&(1u64, "a")), fingerprint(&(1u64, "a")));
        assert_ne!(fingerprint(&(1u64, "a")), fingerprint(&(2u64, "a")));
    }

    #[test]
    fn expired_entries_are_never_served_and_counted_separately() {
        // A zero TTL expires an entry the instant it lands.
        let mut lru: Lru<u32, &str> = Lru::with_ttl(4, Some(Duration::ZERO));
        lru.insert(1, "one");
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), None, "an expired entry is never served");
        assert!(lru.is_empty(), "the stale lookup removed it");
        let c = lru.counters();
        assert_eq!(c.expirations, 1);
        assert_eq!(c.evictions, 0, "TTL drops are not capacity evictions");
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 1, "a stale hit reads as a miss to callers");
        // Reinsert after expiry: a fresh entry, fresh clock.
        lru.insert(1, "again");
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.counters().expirations, 2);
    }

    #[test]
    fn generous_ttl_serves_normally_and_overwrite_restarts_the_clock() {
        let mut lru: Lru<u32, u32> = Lru::with_ttl(2, Some(Duration::from_secs(3600)));
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), Some(&10));
        lru.insert(1, 11);
        assert_eq!(lru.get(&1), Some(&11));
        let c = lru.counters();
        assert_eq!(c.expirations, 0);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn displacing_a_stale_tail_counts_as_expiration_not_eviction() {
        let mut lru: Lru<u32, u32> = Lru::with_ttl(1, Some(Duration::ZERO));
        lru.insert(1, 10);
        lru.insert(2, 20); // the stale tail (1) is displaced
        let c = lru.counters();
        assert_eq!(c.expirations, 1);
        assert_eq!(c.evictions, 0);
    }
}
