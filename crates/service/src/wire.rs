//! A minimal wire front: length-prefixed binary frames over a Unix
//! domain socket.
//!
//! Framing: every message is `[u32 LE length][payload]`.  Payloads are
//! hand-rolled little-endian binary (the workspace builds without
//! serde's real derive machinery), with one byte of tag per enum.  The
//! response payload is a **compact summary** — coverage reports ship
//! their counts and statistics but not the per-fault lists, and typed
//! engine errors ship as their pinned display text.  Budgets cross the
//! wire as the counted axes only (`max_blocks`, `max_forks`) plus the
//! deadline as a **relative remaining-ms budget** (an absolute
//! `Instant` means nothing to another process; the decoder re-anchors
//! it at arrival).  Cancel tokens are process-local by nature and stay
//! on the in-process API.
//!
//! The server ([`WireServer::bind`]) accepts connections on a
//! background thread and answers each connection's frames in order
//! through a shared [`Service`].  [`WireClient`] is the matching
//! blocking caller.  This front intentionally stays small: one
//! request–response exchange per frame, no pipelining, no auth.
//!
//! Both ends are hardened ([`WireServerConfig`], [`WireClientConfig`]):
//! the server puts a read/write deadline on every connection (a peer
//! that stalls **mid-frame** is cut off — the slow-loris defense) and
//! runs an idle reaper that shuts down connections silent past
//! `idle_timeout`; the client can retry a failed call on a fresh
//! connection under capped, seeded-jitter exponential backoff, with a
//! per-call timeout so a dead server costs bounded time.  Requests are
//! re-encoded per attempt, so a retried deadline ships its *shrunken*
//! remaining budget.

use std::io::{self, Read, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sortnet_combinat::{BitString, ChannelVec};
use sortnet_faults::coverage::RedundancyMode;
use sortnet_faults::universe::StandardUniverse;
use sortnet_network::budget::{BudgetReason, SweepBudget, SweepProgress};
use sortnet_network::lanes::PackedFamily;
use sortnet_network::Network;
use sortnet_testsets::verify::{Property, Strategy};

use crate::failpoint;
use crate::loadgen::SplitMix64;
use crate::oracle::{Answer, CacheStatus, Completion, Query, Request, Response};
use crate::pool::Service;

/// Largest accepted frame (16 MiB) — a submitted query should never be
/// near this; the cap bounds a malformed length prefix.
pub const MAX_FRAME: u32 = 16 << 20;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one `[len][payload]` frame.
///
/// # Errors
/// Propagates socket write errors; refuses payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| bad("frame too large"))?;
    if len > MAX_FRAME {
        return Err(bad("frame too large"));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` is a clean EOF at a frame boundary.
///
/// # Errors
/// Propagates socket read errors; refuses length prefixes over
/// [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(bad("frame length over MAX_FRAME"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---- primitive put/take helpers ----------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}
fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Take<'a> {
    buf: &'a [u8],
}

impl<'a> Take<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }
    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("truncated payload"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> io::Result<bool> {
        Ok(self.u8()? != 0)
    }
    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.bytes(len)?.to_vec()).map_err(|_| bad("invalid utf-8"))
    }
    fn finished(&self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes in payload"))
        }
    }
}

// ---- domain encodings ---------------------------------------------------

fn put_network(out: &mut Vec<u8>, network: &Network) {
    put_u32(out, network.lines() as u32);
    put_u32(out, network.size() as u32);
    for c in network.comparators() {
        put_u32(out, c.min_line() as u32);
        put_u32(out, c.max_line() as u32);
    }
}

fn take_network(t: &mut Take) -> io::Result<Network> {
    let lines = t.u32()? as usize;
    let count = t.u32()? as usize;
    if count > (MAX_FRAME as usize) / 8 {
        return Err(bad("comparator count over frame budget"));
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let a = t.u32()? as usize;
        let b = t.u32()? as usize;
        if a >= lines || b >= lines || a == b {
            return Err(bad("comparator lines out of range"));
        }
        pairs.push((a, b));
    }
    Ok(Network::from_pairs(lines, &pairs))
}

fn put_channel_vec(out: &mut Vec<u8>, v: &ChannelVec) {
    put_u32(out, v.len() as u32);
    put_u32(out, v.word_count() as u32);
    for &w in v.words() {
        put_u64(out, w);
    }
}

fn take_channel_vec(t: &mut Take) -> io::Result<ChannelVec> {
    let n = t.u32()? as usize;
    let words = t.u32()? as usize;
    if words != n.div_ceil(64).max(1) {
        return Err(bad("channel word count does not match length"));
    }
    let mut buf = Vec::with_capacity(words);
    for _ in 0..words {
        buf.push(t.u64()?);
    }
    Ok(ChannelVec::from_words(&buf, n))
}

fn put_tests(out: &mut Vec<u8>, tests: &[ChannelVec]) {
    put_u32(out, tests.len() as u32);
    for t in tests {
        put_channel_vec(out, t);
    }
}

fn take_tests(t: &mut Take) -> io::Result<Vec<ChannelVec>> {
    let count = t.u32()? as usize;
    if count > (MAX_FRAME as usize) / 8 {
        return Err(bad("test count over frame budget"));
    }
    let mut tests = Vec::with_capacity(count);
    for _ in 0..count {
        tests.push(take_channel_vec(t)?);
    }
    Ok(tests)
}

fn put_redundancy(out: &mut Vec<u8>, mode: RedundancyMode) {
    match mode {
        RedundancyMode::Skip => put_u8(out, 0),
        RedundancyMode::Exhaustive => put_u8(out, 1),
        RedundancyMode::RelativeTo(family) => {
            put_u8(out, 2);
            match family {
                PackedFamily::SortedStrings => put_u8(out, 0),
                PackedFamily::WeightAtMost(k) => {
                    put_u8(out, 1);
                    put_u32(out, k);
                }
                PackedFamily::SingleRuns => put_u8(out, 2),
                PackedFamily::NecessityWitnesses => put_u8(out, 3),
            }
        }
    }
}

fn take_redundancy(t: &mut Take) -> io::Result<RedundancyMode> {
    match t.u8()? {
        0 => Ok(RedundancyMode::Skip),
        1 => Ok(RedundancyMode::Exhaustive),
        2 => {
            let family = match t.u8()? {
                0 => PackedFamily::SortedStrings,
                1 => PackedFamily::WeightAtMost(t.u32()?),
                2 => PackedFamily::SingleRuns,
                3 => PackedFamily::NecessityWitnesses,
                tag => return Err(bad(format!("unknown family tag {tag}"))),
            };
            Ok(RedundancyMode::RelativeTo(family))
        }
        tag => Err(bad(format!("unknown redundancy tag {tag}"))),
    }
}

fn universe_tag(u: StandardUniverse) -> u8 {
    match u {
        StandardUniverse::SingleComparator => 0,
        StandardUniverse::StuckLine => 1,
        StandardUniverse::SingleComparatorPairs => 2,
        StandardUniverse::StuckLinePairs => 3,
    }
}

fn take_universe(t: &mut Take) -> io::Result<StandardUniverse> {
    match t.u8()? {
        0 => Ok(StandardUniverse::SingleComparator),
        1 => Ok(StandardUniverse::StuckLine),
        2 => Ok(StandardUniverse::SingleComparatorPairs),
        3 => Ok(StandardUniverse::StuckLinePairs),
        tag => Err(bad(format!("unknown universe tag {tag}"))),
    }
}

/// Encodes a request payload (no frame prefix).
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    put_network(&mut out, &request.network);
    match &request.query {
        Query::Verify { property, strategy } => {
            put_u8(&mut out, 0);
            let (ptag, k) = match property {
                Property::Sorter => (0u8, 0u32),
                Property::Selector { k } => (1, *k as u32),
                Property::Merger => (2, 0),
            };
            put_u8(&mut out, ptag);
            put_u32(&mut out, k);
            put_u8(
                &mut out,
                match strategy {
                    Strategy::Exhaustive => 0,
                    Strategy::MinimalBinary => 1,
                    Strategy::Permutation => 2,
                },
            );
        }
        Query::Coverage {
            universe,
            tests,
            redundancy,
        } => {
            put_u8(&mut out, 1);
            put_u8(&mut out, universe_tag(*universe));
            put_redundancy(&mut out, *redundancy);
            put_tests(&mut out, tests);
        }
        Query::Augment { universe, tests } => {
            put_u8(&mut out, 2);
            put_u8(&mut out, universe_tag(*universe));
            put_tests(&mut out, tests);
        }
    }
    match &request.budget {
        None => put_u8(&mut out, 0),
        Some(budget) => {
            put_u8(&mut out, 1);
            match budget.max_blocks {
                None => put_u8(&mut out, 0),
                Some(v) => {
                    put_u8(&mut out, 1);
                    put_u64(&mut out, v);
                }
            }
            match budget.max_forks {
                None => put_u8(&mut out, 0),
                Some(v) => {
                    put_u8(&mut out, 1);
                    put_u64(&mut out, v);
                }
            }
        }
    }
    match &request.deadline {
        None => put_u8(&mut out, 0),
        Some(deadline) => {
            // Relative remaining budget at encode time; an expired
            // deadline ships as 0 ms and the server answers it typed.
            put_u8(&mut out, 1);
            let remaining = deadline.saturating_duration_since(Instant::now());
            put_u64(
                &mut out,
                u64::try_from(remaining.as_millis()).unwrap_or(u64::MAX),
            );
        }
    }
    out
}

/// Decodes a request payload.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] on any malformed payload.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut t = Take::new(payload);
    let network = take_network(&mut t)?;
    let query = match t.u8()? {
        0 => {
            let ptag = t.u8()?;
            let k = t.u32()? as usize;
            let property = match ptag {
                0 => Property::Sorter,
                1 => Property::Selector { k },
                2 => Property::Merger,
                tag => return Err(bad(format!("unknown property tag {tag}"))),
            };
            let strategy = match t.u8()? {
                0 => Strategy::Exhaustive,
                1 => Strategy::MinimalBinary,
                2 => Strategy::Permutation,
                tag => return Err(bad(format!("unknown strategy tag {tag}"))),
            };
            Query::Verify { property, strategy }
        }
        1 => {
            let universe = take_universe(&mut t)?;
            let redundancy = take_redundancy(&mut t)?;
            let tests = take_tests(&mut t)?;
            Query::Coverage {
                universe,
                tests,
                redundancy,
            }
        }
        2 => {
            let universe = take_universe(&mut t)?;
            let tests = take_tests(&mut t)?;
            Query::Augment { universe, tests }
        }
        tag => return Err(bad(format!("unknown query tag {tag}"))),
    };
    let budget = match t.u8()? {
        0 => None,
        1 => {
            let mut budget = SweepBudget::unlimited();
            if t.u8()? == 1 {
                budget = budget.with_max_blocks(t.u64()?);
            }
            if t.u8()? == 1 {
                budget = budget.with_max_forks(t.u64()?);
            }
            Some(budget)
        }
        tag => return Err(bad(format!("unknown budget tag {tag}"))),
    };
    let deadline = match t.u8()? {
        0 => None,
        1 => {
            let ms = t.u64()?;
            // checked_add: a hostile u64::MAX must be a typed decode
            // error, not an Instant-arithmetic panic.
            let deadline = Instant::now()
                .checked_add(Duration::from_millis(ms))
                .ok_or_else(|| bad("deadline out of range"))?;
            Some(deadline)
        }
        tag => return Err(bad(format!("unknown deadline tag {tag}"))),
    };
    t.finished()?;
    Ok(Request {
        network,
        query,
        budget,
        deadline,
    })
}

/// The compact coverage summary the wire ships (no per-fault lists).
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageSummary {
    /// Total faults in the universe.
    pub total_faults: u64,
    /// Faults proven redundant.
    pub redundant_faults: u64,
    /// Faults detected by the submitted set.
    pub detected: u64,
    /// Detectable faults the set missed (or left undecided).
    pub missed: u64,
    /// `detected / (total - redundant)` as the engine computed it.
    pub coverage: f64,
    /// Mean 1-based first-detection index over detected faults.
    pub mean_first_detection: f64,
    /// Max 1-based first-detection index.
    pub max_first_detection: u64,
    /// Provenance of the redundancy grading (`"exhaustive"`,
    /// `"relative:<family>"` or `"skipped"`), exactly as the report
    /// named it.
    pub redundancy: String,
}

/// A wire-shaped answer (see module docs for what is summarised away).
#[derive(Clone, Debug, PartialEq)]
pub enum WireAnswer {
    /// Verify outcome; the witness is `(word, n)` of the failing input.
    Verify {
        /// Whether the property held.
        passed: bool,
        /// Tests evaluated.
        tests_run: u64,
        /// A failing input, when `passed` is false.
        witness: Option<(u64, u32)>,
    },
    /// Coverage summary.
    Coverage(CoverageSummary),
    /// Augmentation outcome, with the suggested vectors in full.
    Augment {
        /// Missed faults the augmentation must cover.
        missed: u64,
        /// Candidates streamed through the matrix.
        candidates_considered: u64,
        /// Greedy augmentation.
        greedy: Vec<ChannelVec>,
        /// Best augmentation found.
        minimum: Vec<ChannelVec>,
        /// Root lower bound.
        lower_bound: u64,
        /// Whether `minimum` is certified optimal over the pool.
        certified: bool,
    },
}

/// A wire-shaped response: typed errors collapse to their pinned
/// display text.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResponse {
    /// The answer or the engine's refusal text.
    pub outcome: Result<WireAnswer, String>,
    /// Complete vs budget-degraded.
    pub completion: Completion,
    /// Cache participation.
    pub cache: CacheStatus,
    /// Service-side processing latency in microseconds.
    pub micros: u64,
}

/// Compacts an in-process [`Response`] into its wire shape.
#[must_use]
pub fn compact(response: &Response) -> WireResponse {
    let outcome = match &response.outcome {
        Err(e) => Err(e.to_string()),
        Ok(Answer::Verify(report)) => Ok(WireAnswer::Verify {
            passed: report.passed,
            tests_run: report.tests_run as u64,
            witness: report
                .witness
                .as_ref()
                .map(|w: &BitString| (w.word(), w.len() as u32)),
        }),
        Ok(Answer::Coverage(report)) => Ok(WireAnswer::Coverage(CoverageSummary {
            total_faults: report.total_faults as u64,
            redundant_faults: report.redundant_faults as u64,
            detected: report.detected as u64,
            missed: report.missed as u64,
            coverage: report.coverage,
            mean_first_detection: report.mean_first_detection,
            max_first_detection: report.max_first_detection as u64,
            redundancy: report.redundancy.clone(),
        })),
        Ok(Answer::Augment(summary)) => Ok(WireAnswer::Augment {
            missed: summary.missed as u64,
            candidates_considered: summary.candidates_considered as u64,
            greedy: summary.greedy.clone(),
            minimum: summary.minimum.clone(),
            lower_bound: summary.lower_bound as u64,
            certified: summary.certified,
        }),
    };
    WireResponse {
        outcome,
        completion: response.completion,
        cache: response.cache,
        micros: response.micros,
    }
}

/// Encodes a response payload (no frame prefix).
#[must_use]
pub fn encode_response(response: &WireResponse) -> Vec<u8> {
    let mut out = Vec::new();
    match &response.outcome {
        Err(text) => {
            put_u8(&mut out, 0);
            put_str(&mut out, text);
        }
        Ok(WireAnswer::Verify {
            passed,
            tests_run,
            witness,
        }) => {
            put_u8(&mut out, 1);
            put_bool(&mut out, *passed);
            put_u64(&mut out, *tests_run);
            match witness {
                None => put_u8(&mut out, 0),
                Some((word, n)) => {
                    put_u8(&mut out, 1);
                    put_u64(&mut out, *word);
                    put_u32(&mut out, *n);
                }
            }
        }
        Ok(WireAnswer::Coverage(s)) => {
            put_u8(&mut out, 2);
            put_u64(&mut out, s.total_faults);
            put_u64(&mut out, s.redundant_faults);
            put_u64(&mut out, s.detected);
            put_u64(&mut out, s.missed);
            put_f64(&mut out, s.coverage);
            put_f64(&mut out, s.mean_first_detection);
            put_u64(&mut out, s.max_first_detection);
            put_str(&mut out, &s.redundancy);
        }
        Ok(WireAnswer::Augment {
            missed,
            candidates_considered,
            greedy,
            minimum,
            lower_bound,
            certified,
        }) => {
            put_u8(&mut out, 3);
            put_u64(&mut out, *missed);
            put_u64(&mut out, *candidates_considered);
            put_tests(&mut out, greedy);
            put_tests(&mut out, minimum);
            put_u64(&mut out, *lower_bound);
            put_bool(&mut out, *certified);
        }
    }
    match response.completion {
        Completion::Complete => put_u8(&mut out, 0),
        Completion::Partial { reason, progress } => {
            put_u8(&mut out, 1);
            put_u8(
                &mut out,
                match reason {
                    BudgetReason::Blocks => 0,
                    BudgetReason::Forks => 1,
                    BudgetReason::Deadline => 2,
                    BudgetReason::Cancelled => 3,
                },
            );
            put_u64(&mut out, progress.blocks);
            put_u64(&mut out, progress.vectors);
            put_u64(&mut out, progress.forks);
        }
    }
    put_u8(
        &mut out,
        match response.cache {
            CacheStatus::Hit => 0,
            CacheStatus::Miss => 1,
            CacheStatus::Bypass => 2,
        },
    );
    put_u64(&mut out, response.micros);
    out
}

/// Decodes a response payload.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] on any malformed payload.
pub fn decode_response(payload: &[u8]) -> io::Result<WireResponse> {
    let mut t = Take::new(payload);
    let outcome = match t.u8()? {
        0 => Err(t.str()?),
        1 => {
            let passed = t.bool()?;
            let tests_run = t.u64()?;
            let witness = match t.u8()? {
                0 => None,
                1 => Some((t.u64()?, t.u32()?)),
                tag => return Err(bad(format!("unknown witness tag {tag}"))),
            };
            Ok(WireAnswer::Verify {
                passed,
                tests_run,
                witness,
            })
        }
        2 => Ok(WireAnswer::Coverage(CoverageSummary {
            total_faults: t.u64()?,
            redundant_faults: t.u64()?,
            detected: t.u64()?,
            missed: t.u64()?,
            coverage: t.f64()?,
            mean_first_detection: t.f64()?,
            max_first_detection: t.u64()?,
            redundancy: t.str()?,
        })),
        3 => Ok(WireAnswer::Augment {
            missed: t.u64()?,
            candidates_considered: t.u64()?,
            greedy: take_tests(&mut t)?,
            minimum: take_tests(&mut t)?,
            lower_bound: t.u64()?,
            certified: t.bool()?,
        }),
        tag => return Err(bad(format!("unknown outcome tag {tag}"))),
    };
    let completion = match t.u8()? {
        0 => Completion::Complete,
        1 => {
            let reason = match t.u8()? {
                0 => BudgetReason::Blocks,
                1 => BudgetReason::Forks,
                2 => BudgetReason::Deadline,
                3 => BudgetReason::Cancelled,
                tag => return Err(bad(format!("unknown reason tag {tag}"))),
            };
            Completion::Partial {
                reason,
                progress: SweepProgress {
                    blocks: t.u64()?,
                    vectors: t.u64()?,
                    forks: t.u64()?,
                },
            }
        }
        tag => return Err(bad(format!("unknown completion tag {tag}"))),
    };
    let cache = match t.u8()? {
        0 => CacheStatus::Hit,
        1 => CacheStatus::Miss,
        2 => CacheStatus::Bypass,
        tag => return Err(bad(format!("unknown cache tag {tag}"))),
    };
    let micros = t.u64()?;
    t.finished()?;
    Ok(WireResponse {
        outcome,
        completion,
        cache,
        micros,
    })
}

// ---- server and client --------------------------------------------------

/// Locks through poisoning — the registry's invariants hold between
/// operations and no panic site sits inside it.
fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Connection-handling knobs of a [`WireServer`].
#[derive(Clone, Copy, Debug)]
pub struct WireServerConfig {
    /// Longest one read slice may block.  A peer silent **mid-frame**
    /// for this long is disconnected (slow-loris defense); silence at a
    /// frame boundary is mere idleness, judged by `idle_timeout`.
    pub read_timeout: Duration,
    /// Longest one reply write may block.
    pub write_timeout: Duration,
    /// A connection with no completed traffic for this long is shut
    /// down by the reaper.
    pub idle_timeout: Duration,
    /// How often the reaper scans for idle and finished connections.
    pub reap_interval: Duration,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(60),
            reap_interval: Duration::from_millis(200),
        }
    }
}

/// One live connection as the reaper sees it.
struct Conn {
    /// A `try_clone` of the handler's stream — lets the reaper shut an
    /// idle connection down without racing the handler's reads.
    stream: UnixStream,
    /// Milliseconds since the server epoch of the last completed
    /// frame (written by the handler, read by the reaper).
    last_active: Arc<AtomicU64>,
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// A Unix-socket server answering framed requests through a shared
/// [`Service`].  Dropping the handle stops the accept loop, shuts every
/// open connection down, joins all threads and removes the socket file;
/// the accept loop also removes the file itself when it exits through
/// an error path, so a crashed server never leaves a stale socket
/// behind.
pub struct WireServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    registry: Arc<Mutex<Vec<Conn>>>,
}

impl WireServer {
    /// Binds `path` with the default [`WireServerConfig`].
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(path: impl AsRef<Path>, service: Arc<Service>) -> io::Result<Self> {
        Self::bind_with(path, service, WireServerConfig::default())
    }

    /// Binds `path` (removing a stale socket file first) and starts the
    /// accept loop and the idle-connection reaper.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind_with(
        path: impl AsRef<Path>,
        service: Arc<Service>,
        config: WireServerConfig,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));
        let epoch = Instant::now();
        let accept = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let path = path.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Chaos site: a fatal accept error — the loop must
                    // exit through the same cleanup as a real one.
                    if failpoint::should_fire("accept-error") {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
                        || stream
                            .set_write_timeout(Some(config.write_timeout))
                            .is_err()
                    {
                        continue;
                    }
                    let Ok(reaper_stream) = stream.try_clone() else {
                        continue;
                    };
                    let last_active = Arc::new(AtomicU64::new(epoch.elapsed().as_millis() as u64));
                    let done = Arc::new(AtomicBool::new(false));
                    let handle = {
                        let service = Arc::clone(&service);
                        let stop = Arc::clone(&stop);
                        let last_active = Arc::clone(&last_active);
                        let done = Arc::clone(&done);
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, &service, &stop, epoch, &last_active);
                            done.store(true, Ordering::Release);
                        })
                    };
                    locked(&registry).push(Conn {
                        stream: reaper_stream,
                        last_active,
                        done,
                        handle: Some(handle),
                    });
                }
                // The socket file goes away however the accept loop
                // exits — clean stop or error path — not only through
                // the handle's Drop, so no stale socket survives a
                // crashed accept loop.
                let _ = std::fs::remove_file(&path);
            })
        };
        let reaper = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(config.reap_interval);
                    let now_ms = epoch.elapsed().as_millis() as u64;
                    let mut registry = locked(&registry);
                    registry.retain_mut(|conn| {
                        if conn.done.load(Ordering::Acquire) {
                            if let Some(handle) = conn.handle.take() {
                                let _ = handle.join();
                            }
                            return false;
                        }
                        let idle_ms =
                            now_ms.saturating_sub(conn.last_active.load(Ordering::Relaxed));
                        if Duration::from_millis(idle_ms) >= config.idle_timeout {
                            let _ = conn.stream.shutdown(Shutdown::Both);
                        }
                        true
                    });
                }
            })
        };
        Ok(Self {
            path,
            stop,
            accept: Some(accept),
            reaper: Some(reaper),
            registry,
        })
    }

    /// The socket path the server listens on.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many connections are currently registered (live handlers
    /// plus finished ones the reaper has not collected yet).
    #[must_use]
    pub fn connections(&self) -> usize {
        locked(&self.registry).len()
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.path);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for conn in locked(&self.registry).iter() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reaper.take() {
            let _ = handle.join();
        }
        for mut conn in locked(&self.registry).drain(..) {
            if let Some(handle) = conn.handle.take() {
                let _ = handle.join();
            }
        }
        // Fallback: the accept thread already removed the file on its
        // way out; harmless if the path is gone.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Reads exactly `buf.len()` bytes through a timeout-bearing stream.
///
/// Returns `Ok(false)` on a clean EOF **before any byte** when
/// `idle_ok` (a frame boundary — the peer simply hung up).  Silence at
/// a boundary is tolerated indefinitely (the reaper owns idleness);
/// silence or EOF mid-buffer is an error — that is the slow-loris cut.
fn read_full(
    stream: &mut UnixStream,
    buf: &mut [u8],
    idle_ok: bool,
    stop: &AtomicBool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && idle_ok {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer disconnected mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && idle_ok {
                    if stop.load(Ordering::Relaxed) {
                        return Ok(false);
                    }
                    continue;
                }
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "read stalled mid-frame",
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn malformed(detail: impl std::fmt::Display) -> WireResponse {
    WireResponse {
        outcome: Err(format!("malformed request: {detail}")),
        completion: Completion::Complete,
        cache: CacheStatus::Bypass,
        micros: 0,
    }
}

fn write_reply(stream: &mut UnixStream, reply: &WireResponse) -> io::Result<()> {
    let payload = encode_response(reply);
    if failpoint::should_fire("torn-frame") {
        // Half a frame, then hang up — the client sees a truncated
        // reply and must retry on a fresh connection.
        stream.write_all(&(payload.len() as u32).to_le_bytes())?;
        stream.write_all(&payload[..payload.len() / 2])?;
        stream.flush()?;
        return Err(io::Error::other("torn-frame failpoint"));
    }
    write_frame(stream, &payload)
}

fn serve_connection(
    mut stream: UnixStream,
    service: &Service,
    stop: &AtomicBool,
    epoch: Instant,
    last_active: &AtomicU64,
) -> io::Result<()> {
    loop {
        // Chaos site: the server dawdling before its read — lets the
        // client's call timeout and retry path fire.
        failpoint::maybe_sleep("slow-read");
        let mut len_bytes = [0u8; 4];
        if !read_full(&mut stream, &mut len_bytes, true, stop)? {
            return Ok(());
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME {
            // Typed refusal, then close: past an oversized length
            // prefix there is no way to resynchronise the framing.
            let _ = write_reply(
                &mut stream,
                &malformed(format!("frame length {len} over MAX_FRAME")),
            );
            return Err(bad("frame length over MAX_FRAME"));
        }
        let mut payload = vec![0u8; len as usize];
        read_full(&mut stream, &mut payload, false, stop)?;
        last_active.store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        let reply = match decode_request(&payload) {
            Ok(request) => compact(&service.submit(request)),
            // The framing is still intact (we consumed exactly the
            // declared length): answer typed and keep serving.
            Err(e) => malformed(e),
        };
        write_reply(&mut stream, &reply)?;
        last_active.store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }
}

/// Retry and timeout knobs of a [`WireClient`].
#[derive(Clone, Copy, Debug)]
pub struct WireClientConfig {
    /// Timeout applied to each socket read/write slice of a call
    /// (`None` blocks forever).  A timed-out call counts as failed and
    /// is retried like any other error.
    pub call_timeout: Option<Duration>,
    /// Retries after the first failed attempt (0 = fail fast).  Each
    /// retry reconnects — a torn or desynchronised stream is never
    /// reused.
    pub retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on the backoff sleep.
    pub backoff_cap: Duration,
    /// Seed of the jitter RNG (each sleep is uniform in
    /// `[backoff/2, backoff]` — deterministic per seed).
    pub seed: u64,
}

impl Default for WireClientConfig {
    fn default() -> Self {
        Self {
            call_timeout: None,
            retries: 0,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            seed: 0x5EED_0B0E,
        }
    }
}

/// A blocking client for the framed protocol, with optional per-call
/// timeouts and capped-exponential-backoff retries.
pub struct WireClient {
    path: PathBuf,
    config: WireClientConfig,
    stream: Option<UnixStream>,
    rng: SplitMix64,
    retries_used: u64,
}

impl WireClient {
    /// Connects to a [`WireServer`] socket with the default
    /// [`WireClientConfig`] (no timeout, no retries).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::connect_with(path, WireClientConfig::default())
    }

    /// Connects with explicit retry/timeout behaviour.  The first
    /// connection is made eagerly so an unreachable server fails here,
    /// not on the first call.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect_with(path: impl AsRef<Path>, config: WireClientConfig) -> io::Result<Self> {
        let mut client = Self {
            path: path.as_ref().to_path_buf(),
            config,
            stream: None,
            rng: SplitMix64::new(config.seed),
            retries_used: 0,
        };
        client.ensure_stream()?;
        Ok(client)
    }

    /// Reconnects (total calls minus first attempts) performed so far.
    #[must_use]
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    fn ensure_stream(&mut self) -> io::Result<&mut UnixStream> {
        if self.stream.is_none() {
            let stream = UnixStream::connect(&self.path)?;
            stream.set_read_timeout(self.config.call_timeout)?;
            stream.set_write_timeout(self.config.call_timeout)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("stream just ensured"))
    }

    fn call_once(&mut self, request: &Request) -> io::Result<WireResponse> {
        // Encoded per attempt: the deadline crosses the wire as
        // *remaining* time, so a retry ships its shrunken budget.
        let payload = encode_request(request);
        let stream = self.ensure_stream()?;
        write_frame(stream, &payload)?;
        match read_frame(stream)? {
            Some(reply) => decode_response(&reply),
            None => Err(bad("server closed the connection mid-call")),
        }
    }

    fn backoff(&mut self, attempt: u32) -> Duration {
        let doubled = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = doubled.min(self.config.backoff_cap);
        let micros = u64::try_from(capped.as_micros()).unwrap_or(u64::MAX);
        let jitter = if micros >= 2 {
            self.rng.next_u64() % (micros / 2 + 1)
        } else {
            0
        };
        Duration::from_micros(micros / 2 + jitter)
    }

    /// One request–response exchange, retried per the client config.
    /// Any failed attempt (connect, write, read, timeout, malformed or
    /// truncated reply) drops the connection; retries start from a
    /// fresh one after a capped, jittered exponential backoff.
    ///
    /// # Errors
    /// The last attempt's error once retries are exhausted.
    pub fn call(&mut self, request: &Request) -> io::Result<WireResponse> {
        let mut attempt = 0u32;
        loop {
            match self.call_once(request) {
                Ok(response) => return Ok(response),
                Err(error) => {
                    // The stream's framing is suspect after any error.
                    self.stream = None;
                    if attempt >= self.config.retries {
                        return Err(error);
                    }
                    attempt += 1;
                    self.retries_used += 1;
                    std::thread::sleep(self.backoff(attempt));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: &Request) -> Request {
        decode_request(&encode_request(request)).expect("roundtrip")
    }

    #[test]
    fn request_payloads_roundtrip() {
        let network = Network::from_pairs(96, &[(0, 95), (3, 64)]);
        let tests = vec![ChannelVec::zeros(96), ChannelVec::ones(96)];
        let requests = [
            Request {
                network: Network::from_pairs(6, &[(0, 1), (2, 3)]),
                query: Query::Verify {
                    property: Property::Selector { k: 2 },
                    strategy: Strategy::Permutation,
                },
                budget: None,
                deadline: None,
            },
            Request {
                network: network.clone(),
                query: Query::Coverage {
                    universe: StandardUniverse::StuckLine,
                    tests: tests.clone(),
                    redundancy: RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
                },
                budget: Some(SweepBudget::unlimited().with_max_blocks(7)),
                deadline: None,
            },
            Request {
                network: network.clone(),
                query: Query::Coverage {
                    universe: StandardUniverse::StuckLinePairs,
                    tests: tests.clone(),
                    redundancy: RedundancyMode::RelativeTo(PackedFamily::WeightAtMost(3)),
                },
                budget: None,
                deadline: None,
            },
            Request {
                network: network.clone(),
                query: Query::Coverage {
                    universe: StandardUniverse::SingleComparator,
                    tests: tests.clone(),
                    redundancy: RedundancyMode::Skip,
                },
                budget: None,
                deadline: None,
            },
            Request {
                network,
                query: Query::Augment {
                    universe: StandardUniverse::SingleComparator,
                    tests,
                },
                budget: Some(
                    SweepBudget::unlimited()
                        .with_max_blocks(1)
                        .with_max_forks(2),
                ),
                deadline: None,
            },
        ];
        for request in &requests {
            let back = roundtrip_request(request);
            assert_eq!(back.network, request.network);
            assert_eq!(back.query, request.query);
            match (&back.budget, &request.budget) {
                (None, None) => {}
                (Some(b), Some(a)) => {
                    assert_eq!(b.max_blocks, a.max_blocks);
                    assert_eq!(b.max_forks, a.max_forks);
                }
                other => panic!("budget shape changed: {other:?}"),
            }
            assert_eq!(back.deadline, None);
        }
    }

    #[test]
    fn deadlines_cross_the_wire_as_remaining_budget() {
        let mut request = Request {
            network: Network::from_pairs(4, &[(0, 1)]),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: Some(Instant::now() + Duration::from_millis(5_000)),
        };
        let back = roundtrip_request(&request);
        let remaining = back
            .deadline
            .expect("deadline survives the wire")
            .saturating_duration_since(Instant::now());
        assert!(
            remaining > Duration::from_millis(4_000) && remaining <= Duration::from_millis(5_000),
            "re-anchored deadline keeps the remaining budget, got {remaining:?}"
        );
        // An already-expired deadline ships as zero remaining.
        request.deadline = Some(Instant::now() - Duration::from_millis(50));
        let back = roundtrip_request(&request);
        let remaining = back
            .deadline
            .expect("expired deadlines still cross the wire")
            .saturating_duration_since(Instant::now());
        assert!(remaining <= Duration::from_millis(1));
    }

    #[test]
    fn hostile_deadline_ms_is_a_typed_decode_error() {
        let mut payload = encode_request(&Request {
            network: Network::from_pairs(4, &[(0, 1)]),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: None,
        });
        // Rewrite the trailing deadline block: tag 1 + u64::MAX ms.
        assert_eq!(payload.pop(), Some(0), "trailing byte is the deadline tag");
        payload.push(1);
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        // The contract is "no panic": platforms where the Instant
        // arithmetic would overflow get a typed InvalidData error,
        // roomier ones an effectively-infinite deadline.
        match decode_request(&payload) {
            Ok(request) => {
                let deadline = request.deadline.expect("tag 1 carries a deadline");
                assert!(deadline > Instant::now() + Duration::from_secs(60 * 60 * 24 * 365));
            }
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidData),
        }
    }

    #[test]
    fn response_payloads_roundtrip() {
        let responses = [
            WireResponse {
                outcome: Err("exhaustive 2^96 sweep refused; use test-set verification".into()),
                completion: Completion::Complete,
                cache: CacheStatus::Bypass,
                micros: 12,
            },
            WireResponse {
                outcome: Ok(WireAnswer::Verify {
                    passed: false,
                    tests_run: 57,
                    witness: Some((0b10, 6)),
                }),
                completion: Completion::Complete,
                cache: CacheStatus::Miss,
                micros: 3,
            },
            WireResponse {
                outcome: Ok(WireAnswer::Coverage(CoverageSummary {
                    total_faults: 10,
                    redundant_faults: 1,
                    detected: 8,
                    missed: 1,
                    coverage: 8.0 / 9.0,
                    mean_first_detection: 1.5,
                    max_first_detection: 4,
                    redundancy: "relative:sorted-strings".into(),
                })),
                completion: Completion::Partial {
                    reason: BudgetReason::Deadline,
                    progress: SweepProgress {
                        blocks: 3,
                        vectors: 192,
                        forks: 0,
                    },
                },
                cache: CacheStatus::Bypass,
                micros: 99,
            },
            WireResponse {
                outcome: Ok(WireAnswer::Augment {
                    missed: 2,
                    candidates_considered: 9,
                    greedy: vec![ChannelVec::ones(65)],
                    minimum: vec![ChannelVec::ones(65)],
                    lower_bound: 1,
                    certified: true,
                }),
                completion: Completion::Complete,
                cache: CacheStatus::Hit,
                micros: 7,
            },
        ];
        for response in &responses {
            let back = decode_response(&encode_response(response)).expect("roundtrip");
            assert_eq!(&back, response);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_io_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[9, 9, 9]).is_err());
        // Trailing garbage is refused, not ignored.
        let mut payload = encode_request(&Request {
            network: Network::from_pairs(4, &[(0, 1)]),
            query: Query::Verify {
                property: Property::Sorter,
                strategy: Strategy::MinimalBinary,
            },
            budget: None,
            deadline: None,
        });
        payload.push(0xFF);
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn unknown_redundancy_and_family_tags_are_typed_decode_errors() {
        let template = Request {
            network: Network::from_pairs(4, &[(0, 1)]),
            query: Query::Coverage {
                universe: StandardUniverse::StuckLine,
                tests: vec![],
                redundancy: RedundancyMode::Skip,
            },
            budget: None,
            deadline: None,
        };
        let payload = encode_request(&template);
        // The redundancy tag sits right after the network, the query tag
        // and the universe tag.
        let mut prefix = Vec::new();
        put_network(&mut prefix, &template.network);
        let mode_at = prefix.len() + 2;
        assert_eq!(payload[mode_at], 0, "skip encodes as tag 0");

        let mut bad_mode = payload.clone();
        bad_mode[mode_at] = 9;
        let err = decode_request(&bad_mode).expect_err("unknown redundancy tag");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown redundancy tag 9"));

        // Tag 2 demands a family byte; an unknown one is refused too.
        let mut bad_family = payload;
        bad_family[mode_at] = 2;
        bad_family.insert(mode_at + 1, 7);
        let err = decode_request(&bad_family).expect_err("unknown family tag");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown family tag 7"));
    }
}
