//! Property-based cross-check: the bit-parallel fault engine (`bitsim`)
//! must agree with the scalar simulator (`simulate`) on random networks,
//! random faults of all four kinds, and random test blocks.

use proptest::prelude::*;

use sortnet_combinat::BitString;
use sortnet_faults::bitsim::{
    detection_matrix, faulty_run_block, first_detections, is_fault_redundant_bitparallel,
};
use sortnet_faults::model::{enumerate_faults, Fault, FaultKind};
use sortnet_faults::simulate::{
    detects, faulty_apply_bits, first_detection_index, is_fault_redundant,
};
use sortnet_network::bitparallel::BitBlock;
use sortnet_network::{Comparator, Network};

const N: usize = 8;

/// Strategy: a random standard network on [`N`] lines with 1..=`max_size`
/// comparators (non-empty, so a fault universe exists).
fn arb_network(max_size: usize) -> impl Strategy<Value = Network> {
    prop::collection::vec((0..N, 0..N), 1..=max_size).prop_map(|pairs| {
        let mut comparators: Vec<Comparator> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Comparator::new(a, b))
            .collect();
        if comparators.is_empty() {
            comparators.push(Comparator::new(0, 1));
        }
        Network::from_comparators(N, comparators)
    })
}

/// Picks one fault of the network's universe by index; the universe
/// enumerates every comparator × every applicable kind, so sampling the
/// index uniformly exercises `StuckPass`, `StuckSwap`, `Inverted` and
/// `Misrouted` alike.
fn pick_fault(network: &Network, selector: usize) -> Fault {
    let universe = enumerate_faults(network);
    universe[selector % universe.len()]
}

/// Strategy: a block of 1..=64 random test vectors on [`N`] lines.
fn arb_tests() -> impl Strategy<Value = Vec<BitString>> {
    prop::collection::vec(0u64..(1u64 << N), 1..=64).prop_map(|words| {
        words
            .into_iter()
            .map(|w| BitString::from_word(w, N))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lane-for-lane agreement: running a faulty network over a block
    /// equals 64 scalar faulty evaluations, for every fault kind.
    #[test]
    fn faulty_block_run_matches_scalar_evaluation(
        net in arb_network(20),
        selector in 0usize..1000,
        tests in arb_tests(),
    ) {
        let fault = pick_fault(&net, selector);
        let mut block = BitBlock::from_strings(N, &tests);
        faulty_run_block(&net, &fault, &mut block);
        for (j, input) in tests.iter().enumerate() {
            let scalar = faulty_apply_bits(&net, &fault, input);
            prop_assert_eq!(block.extract(j as u32), scalar, "fault {:?} input {}", fault, input);
        }
    }

    /// The shared-prefix detection matrix equals the scalar `detects`
    /// verdict on every (fault, test) cell, and its word-level summaries
    /// equal the scalar first-detection scan.
    #[test]
    fn detection_matrix_matches_scalar_detects(net in arb_network(16), tests in arb_tests()) {
        let faults = enumerate_faults(&net);
        let matrix = detection_matrix(&net, &faults, &tests);
        for (f, fault) in faults.iter().enumerate() {
            for (t, test) in tests.iter().enumerate() {
                prop_assert_eq!(
                    matrix.is_detected_by(f, t),
                    detects(&net, fault, test),
                    "fault {:?} test {}", fault, test
                );
            }
            prop_assert_eq!(matrix.first_detection(f), first_detection_index(&net, fault, &tests));
        }
    }

    /// The early-exit first-detection sweep agrees with the scalar
    /// per-fault scan over the whole universe.
    #[test]
    fn first_detections_match_scalar_scan(net in arb_network(16), tests in arb_tests()) {
        let faults = enumerate_faults(&net);
        let bitpar = first_detections(&net, &faults, &tests);
        for (f, fault) in faults.iter().enumerate() {
            prop_assert_eq!(bitpar[f], first_detection_index(&net, fault, &tests), "fault {:?}", fault);
        }
    }

    /// The blocked 2^n redundancy sweep agrees with the scalar one.
    #[test]
    fn redundancy_sweeps_agree(net in arb_network(12), selector in 0usize..1000) {
        let fault = pick_fault(&net, selector);
        prop_assert_eq!(
            is_fault_redundant_bitparallel(&net, &fault),
            is_fault_redundant(&net, &fault),
            "fault {:?}", fault
        );
    }

    /// The fault universe has the exact composition the sampling scheme
    /// relies on: every comparator contributes the three behavioural kinds,
    /// plus one `Misrouted` per valid adjacent line (a comparator whose
    /// bottom line has no in-range, non-top neighbour legitimately
    /// contributes none).
    #[test]
    fn sampling_sees_the_full_universe_per_comparator(net in arb_network(20)) {
        let universe = enumerate_faults(&net);
        for (idx, c) in net.comparators().iter().enumerate() {
            let here: Vec<FaultKind> = universe
                .iter()
                .filter(|f| f.comparator == idx)
                .map(|f| f.kind)
                .collect();
            prop_assert!(here.contains(&FaultKind::StuckPass), "comparator {}", idx);
            prop_assert!(here.contains(&FaultKind::StuckSwap), "comparator {}", idx);
            prop_assert!(here.contains(&FaultKind::Inverted), "comparator {}", idx);
            let expected_misroutes = [c.bottom() as isize - 1, c.bottom() as isize + 1]
                .into_iter()
                .filter(|&nb| nb >= 0 && (nb as usize) < N && nb as usize != c.top())
                .count();
            let misroutes = here
                .iter()
                .filter(|k| matches!(k, FaultKind::Misrouted { .. }))
                .count();
            prop_assert_eq!(misroutes, expected_misroutes, "comparator {}", idx);
        }
    }
}
