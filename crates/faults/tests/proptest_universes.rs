//! Property-based cross-checks for the multi-fault universes: random
//! networks × random universes must keep the universe-generic engines
//! consistent with the scalar lesion-timeline oracle, and [`FaultPairs`]
//! coverage consistent with its base universe.
//!
//! One classical phenomenon shapes what "consistent with the base" can
//! mean: **fault masking**.  A pair is *not* guaranteed detectable just
//! because a member is detectable alone — one lesion can repair the damage
//! of the other — and two individually redundant lesions can form a
//! detectable pair.  The deterministic tests at the bottom pin minimal
//! witnesses of both phenomena, so the properties asserted here are the
//! ones that actually hold: per-test verdicts equal an independent scalar
//! re-simulation, detection is monotone in the *test set* (never in the
//! lesion set), and redundancy means exactly "no input detects".

use proptest::prelude::*;

use sortnet_combinat::BitString;
use sortnet_faults::bitsim::{
    detection_matrix_multi_wide, first_detections_multi_wide, redundant_faults_multi_wide,
};
use sortnet_faults::universe::{
    is_multi_fault_redundant, multi_detects, multi_faulty_apply_bits, FaultPairs, FaultUniverse,
    MultiFault, SingleComparator, StandardUniverse, StuckLine,
};
use sortnet_faults::{Fault, FaultKind, Lesion};
use sortnet_network::{Comparator, Network};

const N: usize = 6;

/// Strategy: a random standard network on [`N`] lines with 1..=`max_size`
/// comparators (non-empty, so every universe is inhabited).
fn arb_network(max_size: usize) -> impl Strategy<Value = Network> {
    prop::collection::vec((0..N, 0..N), 1..=max_size).prop_map(|pairs| {
        let mut comparators: Vec<Comparator> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Comparator::new(a, b))
            .collect();
        if comparators.is_empty() {
            comparators.push(Comparator::new(0, 1));
        }
        Network::from_comparators(N, comparators)
    })
}

/// Strategy: 1..=32 random test vectors on [`N`] lines.
fn arb_tests() -> impl Strategy<Value = Vec<BitString>> {
    prop::collection::vec(0u64..(1u64 << N), 1..=32).prop_map(|words| {
        words
            .into_iter()
            .map(|w| BitString::from_word(w, N))
            .collect()
    })
}

/// Picks one of the four standard universes.
fn pick_universe(selector: usize) -> StandardUniverse {
    StandardUniverse::ALL[selector % StandardUniverse::ALL.len()]
}

/// An independent scalar re-implementation of the lesion timeline, coded
/// differently from `universe::multi_faulty_apply_bits` (per-comparator
/// event scan over a `Vec<u8>` state instead of word arithmetic) so the
/// two can serve as oracles for each other.
fn reference_faulty_apply(network: &Network, fault: &MultiFault, input: &BitString) -> BitString {
    let mut state: Vec<u8> = input.to_vec();
    let lesions = fault.lesions();
    for cut in 0..=network.size() {
        for lesion in lesions {
            if let Lesion::Stuck(s) = lesion {
                if s.cut == cut {
                    state[s.line] = u8::from(s.value);
                }
            }
        }
        if cut == network.size() {
            break;
        }
        let c = network.comparators()[cut];
        let faulty_kind = lesions.iter().find_map(|l| match l {
            Lesion::Comparator(f) if f.comparator == cut => Some(f.kind),
            _ => None,
        });
        let (i, j) = (c.min_line(), c.max_line());
        let (a, b) = (state[i], state[j]);
        match faulty_kind {
            None => {
                state[i] = a.min(b);
                state[j] = a.max(b);
            }
            Some(FaultKind::StuckPass) => {}
            Some(FaultKind::StuckSwap) => {
                state[i] = b;
                state[j] = a;
            }
            Some(FaultKind::Inverted) => {
                state[i] = a.max(b);
                state[j] = a.min(b);
            }
            Some(FaultKind::Misrouted { new_bottom }) => {
                if new_bottom != c.top() {
                    let (t, nb) = (c.top(), new_bottom);
                    let (x, y) = (state[t], state[nb]);
                    state[t] = x.min(y);
                    state[nb] = x.max(y);
                }
            }
        }
    }
    let mut word = 0u64;
    for (i, &v) in state.iter().enumerate() {
        if v != 0 {
            word |= 1 << i;
        }
    }
    BitString::from_word(word, network.lines())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every engine's per-(fault, test) verdict equals an independently
    /// coded scalar reference, for every universe.
    #[test]
    fn engines_match_the_independent_reference(
        net in arb_network(8),
        selector in 0usize..4,
        tests in arb_tests(),
    ) {
        let universe = pick_universe(selector);
        let faults: Vec<MultiFault> = universe.iter(&net).collect();
        let matrix = detection_matrix_multi_wide::<2>(&net, &faults, &tests);
        for (f, fault) in faults.iter().enumerate() {
            for (t, test) in tests.iter().enumerate() {
                let reference = reference_faulty_apply(&net, fault, test);
                prop_assert_eq!(
                    multi_faulty_apply_bits(&net, fault, test),
                    reference.clone(),
                    "fault {} test {}", fault, test
                );
                prop_assert_eq!(
                    matrix.is_detected_by(f, t),
                    !reference.is_sorted(),
                    "fault {} test {}", fault, test
                );
            }
        }
    }

    /// The early-exit sweep and the batch redundancy sweep agree with the
    /// scalar definitions on every universe.
    #[test]
    fn sweeps_agree_with_scalar_definitions(
        net in arb_network(8),
        selector in 0usize..4,
        tests in arb_tests(),
    ) {
        let universe = pick_universe(selector);
        let faults: Vec<MultiFault> = universe.iter(&net).collect();
        let first = first_detections_multi_wide::<4>(&net, &faults, &tests);
        let redundant = redundant_faults_multi_wide::<4>(&net, &faults);
        for (i, fault) in faults.iter().enumerate() {
            prop_assert_eq!(
                first[i],
                tests.iter().position(|t| multi_detects(&net, fault, t)),
                "fault {}", fault
            );
            prop_assert_eq!(
                redundant[i],
                is_multi_fault_redundant(&net, fault),
                "fault {}", fault
            );
            // Redundant means exactly "no input detects": a redundant fault
            // can never be detected by any test sample.
            if redundant[i] {
                prop_assert_eq!(first[i], None, "fault {}", fault);
            }
        }
    }

    /// `FaultPairs` is consistent with its base universe: the pair space is
    /// exactly the conflict-free 2-subsets, every pair's fork site is the
    /// earlier member's, and a pair is detected iff some test distinguishes
    /// it (its faulty output is unsorted) — which the exhaustive sweep
    /// reduces to "detectable iff not redundant".
    #[test]
    fn pairs_are_consistent_with_their_base(net in arb_network(8), stuck in 0usize..2) {
        let base: Vec<MultiFault> = if stuck == 0 {
            SingleComparator.iter(&net).collect()
        } else {
            StuckLine.iter(&net).collect()
        };
        let pairs: Vec<MultiFault> = if stuck == 0 {
            FaultPairs(SingleComparator).iter(&net).collect()
        } else {
            FaultPairs(StuckLine).iter(&net).collect()
        };
        let mut expected = 0usize;
        for i in 0..base.len() {
            for j in i + 1..base.len() {
                if !base[i].lesions()[0].conflicts_with(&base[j].lesions()[0]) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(pairs.len(), expected);
        let sites: std::collections::HashSet<usize> =
            base.iter().map(MultiFault::fork_site).collect();
        let redundant = redundant_faults_multi_wide::<4>(&net, &pairs);
        let all_inputs: Vec<BitString> = BitString::all(N).collect();
        let detected = first_detections_multi_wide::<4>(&net, &pairs, &all_inputs);
        for (i, pair) in pairs.iter().enumerate() {
            prop_assert!(pair.is_pair());
            prop_assert!(sites.contains(&pair.fork_site()), "pair {}", pair);
            prop_assert_eq!(
                pair.fork_site(),
                pair.lesions().iter().map(Lesion::fork_site).min().unwrap(),
                "pair {}", pair
            );
            // Detected by the exhaustive test set iff not redundant.
            prop_assert_eq!(detected[i].is_some(), !redundant[i], "pair {}", pair);
        }
    }

    /// Detection is monotone in the *test set*: extending the sequence can
    /// only turn misses into detections (contrast with the lesion set,
    /// where masking breaks monotonicity — see the pinned tests below).
    #[test]
    fn detection_is_monotone_in_the_test_set(
        net in arb_network(8),
        selector in 0usize..4,
        tests in arb_tests(),
        extra in arb_tests(),
    ) {
        let universe = pick_universe(selector);
        let faults: Vec<MultiFault> = universe.iter(&net).collect();
        let small = first_detections_multi_wide::<2>(&net, &faults, &tests);
        let mut longer = tests.clone();
        longer.extend(extra);
        let large = first_detections_multi_wide::<2>(&net, &faults, &longer);
        for (i, fault) in faults.iter().enumerate() {
            if let Some(idx) = small[i] {
                prop_assert_eq!(large[i], Some(idx), "fault {}", fault);
            }
        }
    }
}

/// Minimal pinned witness of **fault masking**: on the 2-line sorter
/// `[1,2][1,2][1,2]`, a stuck-swap on the last comparator is detectable
/// alone, an inverted middle comparator is redundant alone — and the pair
/// is redundant: the middle inversion pre-swaps exactly the states the
/// stuck-swap then restores.  Hence "a member is detectable ⇒ the pair is
/// detectable" is *false*, and pair universes must be swept directly.
#[test]
fn a_detectable_fault_can_be_masked_by_a_redundant_partner() {
    let net = Network::from_pairs(2, &[(0, 1), (0, 1), (0, 1)]);
    let detectable = Lesion::Comparator(Fault {
        comparator: 2,
        kind: FaultKind::StuckSwap,
    });
    let redundant = Lesion::Comparator(Fault {
        comparator: 1,
        kind: FaultKind::Inverted,
    });
    assert!(!is_multi_fault_redundant(
        &net,
        &MultiFault::single(detectable)
    ));
    assert!(is_multi_fault_redundant(
        &net,
        &MultiFault::single(redundant)
    ));
    let pair = MultiFault::pair(detectable, redundant);
    assert!(
        is_multi_fault_redundant(&net, &pair),
        "the redundant partner must mask the detectable fault"
    );
    // The bit-parallel engine agrees.
    assert_eq!(redundant_faults_multi_wide::<4>(&net, &[pair]), vec![true]);
}

/// The converse phenomenon: two individually redundant lesions whose pair
/// is detectable.  On `[1,2][1,2]`, a stuck-swap on the first comparator is
/// repaired by the second, and a stuck-pass second comparator is harmless
/// after the first has sorted — but together the swapped state passes
/// through unrepaired.
#[test]
fn two_redundant_faults_can_form_a_detectable_pair() {
    let net = Network::from_pairs(2, &[(0, 1), (0, 1)]);
    let a = Lesion::Comparator(Fault {
        comparator: 0,
        kind: FaultKind::StuckSwap,
    });
    let b = Lesion::Comparator(Fault {
        comparator: 1,
        kind: FaultKind::StuckPass,
    });
    assert!(is_multi_fault_redundant(&net, &MultiFault::single(a)));
    assert!(is_multi_fault_redundant(&net, &MultiFault::single(b)));
    let pair = MultiFault::pair(a, b);
    assert!(!is_multi_fault_redundant(&net, &pair));
    // The sorted input (0, 1) is a witness: swap then pass leaves (1, 0).
    let sorted = BitString::from_word(0b10, 2);
    assert!(sorted.is_sorted());
    assert!(multi_detects(&net, &pair, &sorted));
}
