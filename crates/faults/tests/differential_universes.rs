//! Differential oracle harness: every [`FaultUniverse`] × every
//! [`FaultSimEngine`] × every lane-ops backend must agree bit for bit.
//!
//! For each universe (single-comparator, stuck-line, and the two pair
//! universes) on bubble and Batcher sorters up to `n = 8`:
//!
//! * the detection matrix is identical at lane widths
//!   `W ∈ {1, 2, 4, 8, 16}`, on every runnable [`Backend`] (scalar,
//!   portable-chunked, and AVX2 where the CPU has it), and equals the
//!   scalar lesion-timeline simulator cell by cell;
//! * the early-exit first-detection sweep equals the scalar per-fault scan;
//! * redundant-fault classification agrees between the scalar exhaustive
//!   sweep, the per-fault bit-parallel re-run path, and the shared-prefix
//!   batch sweep (the ROADMAP prefix-fork fix) — on every backend;
//! * full coverage reports are `==` across all engines;
//! * the **two-level pair fork** (checkpoint after the shared first
//!   lesion) is bit-identical to the single-fork reference that evaluates
//!   every fault's full lesion timeline from the block start
//!   ([`multi_faulty_run_block`]), pinned by a proptest over random
//!   networks and random pair subsets.
//!
//! The `n = 8` Batcher rows double as pins for the stuck-line and
//! fault-pair results the PR's acceptance criteria name.

// The legacy panicking wrappers stay exercised here until stage 3 of the
// deprecation path (docs/ERRORS.md) reclaims them.
#![allow(deprecated)]

use proptest::prelude::*;

use sortnet_combinat::BitString;
use sortnet_faults::bitsim::{
    detection_matrix_multi_on, detection_matrix_multi_wide, first_detections_multi_wide,
    is_fault_redundant_wide, multi_faulty_run_block, redundant_faults_multi_on,
    redundant_faults_multi_wide, DetectionMatrix,
};
use sortnet_faults::coverage::{coverage_of_universe_with, FaultSimEngine};
use sortnet_faults::universe::{
    is_multi_fault_redundant, multi_detects, multi_first_detection_index, FaultUniverse,
    MultiFault, StandardUniverse,
};
use sortnet_faults::{Fault, Lesion};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::builders::bubble::bubble_sort_network;
use sortnet_network::lanes::{Backend, LaneWidth, WideBlock};
use sortnet_network::{Comparator, Network};
use sortnet_testsets::sorting;

/// The networks the differential suite sweeps.
fn networks(n: usize) -> Vec<(&'static str, Network)> {
    vec![
        ("batcher", odd_even_merge_sort(n)),
        ("bubble", bubble_sort_network(n)),
    ]
}

#[test]
fn detection_matrices_are_width_independent_and_match_the_scalar_oracle() {
    for n in [4usize, 6] {
        let tests = sorting::binary_testset(n);
        for (label, net) in networks(n) {
            for universe in StandardUniverse::ALL {
                let faults: Vec<MultiFault> = universe.iter(&net).collect();
                let w1 = detection_matrix_multi_wide::<1>(&net, &faults, &tests);
                let w2 = detection_matrix_multi_wide::<2>(&net, &faults, &tests);
                let w4 = detection_matrix_multi_wide::<4>(&net, &faults, &tests);
                assert_eq!(w1, w2, "{label} n={n} {}", universe.name());
                assert_eq!(w1, w4, "{label} n={n} {}", universe.name());
                for (f, fault) in faults.iter().enumerate() {
                    for (t, test) in tests.iter().enumerate() {
                        assert_eq!(
                            w1.is_detected_by(f, t),
                            multi_detects(&net, fault, test),
                            "{label} n={n} {} fault {fault} test {test}",
                            universe.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn detection_matrices_are_backend_independent_across_all_widths() {
    // The SIMD acceptance matrix: backend × universe × W ∈ {1, 2, 4, 8, 16}
    // must all equal the scalar-backend W = 1 matrix (which in turn equals
    // the PR 1 single-word engine — pinned by
    // `detection_matrices_are_width_independent_and_match_the_scalar_oracle`
    // via the scalar oracle).
    for n in [4usize, 6] {
        let tests = sorting::binary_testset(n);
        for (label, net) in networks(n) {
            for universe in StandardUniverse::ALL {
                let faults: Vec<MultiFault> = universe.iter(&net).collect();
                let reference =
                    detection_matrix_multi_on::<1>(&net, &faults, &tests, Backend::Scalar);
                for backend in Backend::runnable() {
                    let check = |matrix: DetectionMatrix, w: usize| {
                        assert_eq!(
                            matrix,
                            reference,
                            "{label} n={n} {} backend={} W={w}",
                            universe.name(),
                            backend.name()
                        );
                    };
                    check(
                        detection_matrix_multi_on::<1>(&net, &faults, &tests, backend),
                        1,
                    );
                    check(
                        detection_matrix_multi_on::<2>(&net, &faults, &tests, backend),
                        2,
                    );
                    check(
                        detection_matrix_multi_on::<4>(&net, &faults, &tests, backend),
                        4,
                    );
                    check(
                        detection_matrix_multi_on::<8>(&net, &faults, &tests, backend),
                        8,
                    );
                    check(
                        detection_matrix_multi_on::<16>(&net, &faults, &tests, backend),
                        16,
                    );
                }
            }
        }
    }
}

#[test]
fn batch_redundancy_is_backend_independent() {
    for n in [4usize, 6] {
        for (label, net) in networks(n) {
            for universe in StandardUniverse::ALL {
                let faults: Vec<MultiFault> = universe.iter(&net).collect();
                let reference = redundant_faults_multi_on::<1>(&net, &faults, Backend::Scalar);
                for backend in Backend::runnable() {
                    assert_eq!(
                        redundant_faults_multi_on::<4>(&net, &faults, backend),
                        reference,
                        "{label} n={n} {} backend={}",
                        universe.name(),
                        backend.name()
                    );
                    assert_eq!(
                        redundant_faults_multi_on::<16>(&net, &faults, backend),
                        reference,
                        "{label} n={n} {} backend={} W=16",
                        universe.name(),
                        backend.name()
                    );
                }
            }
        }
    }
}

#[test]
fn first_detections_match_the_scalar_scan_in_every_universe() {
    for n in [4usize, 6, 8] {
        let tests = sorting::binary_testset(n);
        for (label, net) in networks(n) {
            for universe in StandardUniverse::ALL {
                let faults: Vec<MultiFault> = universe.iter(&net).collect();
                let w1 = first_detections_multi_wide::<1>(&net, &faults, &tests);
                let w2 = first_detections_multi_wide::<2>(&net, &faults, &tests);
                let w4 = first_detections_multi_wide::<4>(&net, &faults, &tests);
                assert_eq!(w1, w2, "{label} n={n} {}", universe.name());
                assert_eq!(w1, w4, "{label} n={n} {}", universe.name());
                for (f, fault) in faults.iter().enumerate() {
                    assert_eq!(
                        w1[f],
                        multi_first_detection_index(&net, fault, &tests),
                        "{label} n={n} {} fault {fault}",
                        universe.name()
                    );
                }
            }
        }
    }
}

#[test]
fn redundancy_classification_agrees_across_all_three_paths() {
    // Scalar exhaustive sweep vs the shared-prefix batch sweep, plus — for
    // the single-comparator universe — the old per-fault re-run path the
    // batch sweep replaced (the ROADMAP prefix-fork fix regression pin).
    for n in [4usize, 6] {
        for (label, net) in networks(n) {
            for universe in StandardUniverse::ALL {
                let faults: Vec<MultiFault> = universe.iter(&net).collect();
                let batch = redundant_faults_multi_wide::<4>(&net, &faults);
                let batch_w1 = redundant_faults_multi_wide::<1>(&net, &faults);
                assert_eq!(batch, batch_w1, "{label} n={n} {}", universe.name());
                for (i, fault) in faults.iter().enumerate() {
                    assert_eq!(
                        batch[i],
                        is_multi_fault_redundant(&net, fault),
                        "{label} n={n} {} fault {fault}",
                        universe.name()
                    );
                }
                if universe == StandardUniverse::SingleComparator {
                    for (i, fault) in faults.iter().enumerate() {
                        let [Lesion::Comparator(single)] = fault.lesions() else {
                            panic!("single-comparator universe must yield comparator lesions")
                        };
                        let legacy: Fault = *single;
                        assert_eq!(
                            batch[i],
                            is_fault_redundant_wide::<4>(&net, &legacy),
                            "{label} n={n} per-fault path fault {fault}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn coverage_reports_are_identical_across_every_engine() {
    let engines = [
        FaultSimEngine::Scalar,
        FaultSimEngine::BitParallel,
        FaultSimEngine::BitParallelWide(LaneWidth::W1),
        FaultSimEngine::BitParallelWide(LaneWidth::W2),
        FaultSimEngine::BitParallelWide(LaneWidth::W4),
        FaultSimEngine::BitParallelWide(LaneWidth::W8),
        FaultSimEngine::BitParallelWide(LaneWidth::W16),
    ];
    for n in [4usize, 6, 8] {
        let tests = sorting::binary_testset(n);
        for (label, net) in networks(n) {
            for universe in StandardUniverse::ALL {
                let reference =
                    coverage_of_universe_with(&net, &universe, &tests, true, engines[0]);
                for engine in &engines[1..] {
                    let report = coverage_of_universe_with(&net, &universe, &tests, true, *engine);
                    assert_eq!(
                        report,
                        reference,
                        "{label} n={n} {} engine {engine:?}",
                        universe.name()
                    );
                }
            }
        }
    }
}

#[test]
fn batcher_n8_universe_results_are_pinned() {
    // Acceptance pin: the stuck-line and fault-pair universes on Batcher's
    // 8-line merge-exchange sorter with the Theorem 2.2 minimal 0/1 test
    // set.  These concrete numbers are what experiment E10 prints; any
    // engine or universe change that shifts them must be deliberate.
    let net = odd_even_merge_sort(8);
    let tests = sorting::binary_testset(8);
    assert_eq!(net.size(), 19);
    assert_eq!(tests.len(), 247);

    let expected: [(StandardUniverse, usize, usize, usize, usize); 4] = [
        // (universe, total, detected, missed, undetectable)
        (StandardUniverse::SingleComparator, 85, 85, 0, 0),
        (StandardUniverse::StuckLine, 92, 54, 8, 30),
        (StandardUniverse::SingleComparatorPairs, 3419, 3419, 0, 0),
        (StandardUniverse::StuckLinePairs, 4140, 3367, 118, 655),
    ];
    for (universe, total, detected, missed, undetectable) in expected {
        let report =
            coverage_of_universe_with(&net, &universe, &tests, true, FaultSimEngine::BitParallel);
        assert_eq!(report.total_faults, total, "{}", universe.name());
        assert_eq!(report.detected, detected, "{}", universe.name());
        assert_eq!(report.missed, missed, "{}", universe.name());
        assert_eq!(report.redundant_faults, undetectable, "{}", universe.name());
    }
}

/// Strategy: a random standard network on 7 lines with up to `max_size`
/// comparators.
fn arb_network(max_size: usize) -> impl Strategy<Value = Network> {
    prop::collection::vec((0usize..7, 0usize..7), 1..=max_size).prop_map(|pairs| {
        let mut comparators: Vec<Comparator> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Comparator::new(a, b))
            .collect();
        if comparators.is_empty() {
            comparators.push(Comparator::new(0, 1));
        }
        Network::from_comparators(7, comparators)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two-level pair fork is bit-identical to the single-fork path:
    /// for a random network and a random test batch, every fault of the
    /// pair universe gets — cell for cell — the detections that evaluating
    /// its full lesion timeline from the block start
    /// ([`multi_faulty_run_block`], the degenerate fork-at-0 reference the
    /// PR 3 single-fork engine was pinned against) produces.
    #[test]
    fn two_level_pair_fork_matches_the_single_fork_reference(
        net in arb_network(9),
        test_words in prop::collection::vec(0u64..(1u64 << 7), 1..=150),
    ) {
        let tests: Vec<BitString> = test_words
            .into_iter()
            .map(|w| BitString::from_word(w, 7))
            .collect();
        // Pairs (quadratic — subsample to keep the scalar reference cheap)
        // plus every single fault, so the sweep mixes group sizes.
        let pairs: Vec<MultiFault> = StandardUniverse::SingleComparatorPairs.iter(&net).collect();
        let mut faults: Vec<MultiFault> = pairs
            .iter()
            .step_by((pairs.len() / 300).max(1))
            .copied()
            .collect();
        faults.extend(StandardUniverse::SingleComparator.iter(&net));
        for backend in Backend::runnable() {
            let matrix = detection_matrix_multi_on::<2>(&net, &faults, &tests, backend);
            let capacity = WideBlock::<2>::capacity() as usize;
            for (f, fault) in faults.iter().enumerate() {
                for (block_idx, chunk) in tests.chunks(capacity).enumerate() {
                    let mut block = WideBlock::<2>::from_strings(7, chunk);
                    multi_faulty_run_block(&net, fault, &mut block);
                    let masks = block.unsorted_masks();
                    for (j, _) in chunk.iter().enumerate() {
                        let expected = (masks[j / 64] >> (j % 64)) & 1 == 1;
                        prop_assert_eq!(
                            matrix.is_detected_by(f, block_idx * capacity + j),
                            expected,
                            "fault {} test {} backend {}",
                            fault,
                            block_idx * capacity + j,
                            backend.name()
                        );
                    }
                }
            }
            // The batch redundancy sweep (also two-level) agrees with the
            // scalar exhaustive verdicts on a subsample.
            let redundant = redundant_faults_multi_on::<2>(&net, &faults, backend);
            for (f, fault) in faults.iter().enumerate().step_by(37) {
                prop_assert_eq!(
                    redundant[f],
                    is_multi_fault_redundant(&net, fault),
                    "fault {} backend {}",
                    fault,
                    backend.name()
                );
            }
        }
    }
}
