//! Cancellation-safety suite for the budgeted sweep entry points.
//!
//! The contract under test: whenever a [`CancelToken`] (or any other
//! budget trip) cuts a sweep off, the partial result exposes **no
//! partially-built rows** — a block's contribution is either committed
//! whole or discarded whole, so everything observable is an exact prefix
//! of the unbudgeted answer.  Exercised at lane widths 1, 4 and 8 and on
//! the pinned scalar lane-ops backend, since the commit/discard points
//! sit in width- and backend-generic code.

use sortnet_combinat::BitString;
use sortnet_faults::bitsim::{
    detection_matrix_multi_budgeted_on, detection_matrix_multi_on,
    first_detections_multi_budgeted_on,
};
use sortnet_faults::coverage::{coverage_of_universe_budgeted_with, FaultSimEngine};
use sortnet_faults::universe::{FaultUniverse, MultiFault, StandardUniverse};
use sortnet_faults::{BudgetReason, Budgeted, CancelToken, DetectionMatrix, SweepBudget};
use sortnet_network::builders::batcher::odd_even_merge_sort;
use sortnet_network::lanes::Backend;
use sortnet_network::Network;

fn all_inputs(n: usize) -> Vec<BitString> {
    (0..1u32 << n)
        .map(|v| {
            BitString::parse(
                &(0..n)
                    .map(|i| if (v >> i) & 1 == 1 { '1' } else { '0' })
                    .collect::<String>(),
            )
            .unwrap()
        })
        .collect()
}

fn fixture() -> (Network, Vec<MultiFault>, Vec<BitString>) {
    let net = odd_even_merge_sort(6);
    let faults: Vec<MultiFault> = StandardUniverse::StuckLine.iter(&net).collect();
    // 576 tests: more than one block at every exercised width (64-vector
    // W1 blocks up to 512-vector W8 blocks), so max_blocks(1) always cuts
    // mid-stream.
    let inputs = all_inputs(6);
    let tests: Vec<BitString> = inputs
        .iter()
        .cycle()
        .take(inputs.len() * 9)
        .copied()
        .collect();
    (net, faults, tests)
}

/// Asserts `partial` is an exact prefix of `full`: identical bits for
/// every committed test, and *no* detection at or past the cut.
fn assert_exact_prefix(partial: &DetectionMatrix, full: &DetectionMatrix) {
    assert!(partial.test_count() <= full.test_count());
    assert_eq!(partial.fault_count(), full.fault_count());
    for f in 0..full.fault_count() {
        for t in 0..partial.test_count() {
            assert_eq!(
                partial.is_detected_by(f, t),
                full.is_detected_by(f, t),
                "committed prefix must match the full matrix (fault {f}, test {t})"
            );
        }
    }
}

fn cancelled_matrix_has_no_partial_rows<const W: usize>(backend: Backend) {
    let (net, faults, tests) = fixture();
    let full = detection_matrix_multi_on::<W>(&net, &faults, &tests, backend);

    // Pre-tripped token: the very first block admission refuses, so the
    // partial matrix must be completely empty — not one row started.
    let token = CancelToken::new();
    token.cancel();
    let budget = SweepBudget::unlimited().with_cancel(token);
    let outcome = detection_matrix_multi_budgeted_on::<W>(&net, &faults, &tests, backend, &budget)
        .expect("inputs are valid");
    let Budgeted::Partial {
        progress,
        reason,
        best_so_far,
    } = outcome
    else {
        panic!("a cancelled sweep must report Partial");
    };
    assert_eq!(reason, BudgetReason::Cancelled);
    assert_eq!(progress.blocks, 0);
    assert_eq!(best_so_far.test_count(), 0, "no partial rows observable");
    assert!(
        (0..best_so_far.fault_count()).all(|f| !best_so_far.detected(f)),
        "an empty prefix detects nothing"
    );

    // Mid-stream trip (after one committed block): the surviving rows are
    // an exact whole-block prefix of the full matrix, never a torn block.
    let budget = SweepBudget::unlimited().with_max_blocks(1);
    let outcome = detection_matrix_multi_budgeted_on::<W>(&net, &faults, &tests, backend, &budget)
        .expect("inputs are valid");
    let Budgeted::Partial {
        progress,
        reason,
        best_so_far,
    } = outcome
    else {
        panic!("576 tests exceed one block at every exercised width");
    };
    assert_eq!(reason, BudgetReason::Blocks);
    assert_eq!(progress.blocks, 1);
    assert_eq!(
        best_so_far.test_count() % (W * 64),
        0,
        "the cut must land on a whole-block boundary"
    );
    assert_exact_prefix(&best_so_far, &full);
}

#[test]
fn cancelled_matrices_have_no_partial_rows_at_w1() {
    cancelled_matrix_has_no_partial_rows::<1>(Backend::active());
}

#[test]
fn cancelled_matrices_have_no_partial_rows_at_w4() {
    cancelled_matrix_has_no_partial_rows::<4>(Backend::active());
}

#[test]
fn cancelled_matrices_have_no_partial_rows_at_w8() {
    cancelled_matrix_has_no_partial_rows::<8>(Backend::active());
}

#[test]
fn cancelled_matrices_have_no_partial_rows_on_the_forced_scalar_backend() {
    cancelled_matrix_has_no_partial_rows::<1>(Backend::Scalar);
    cancelled_matrix_has_no_partial_rows::<4>(Backend::Scalar);
}

#[test]
fn a_token_cancelled_between_blocks_leaves_first_detections_prefix_exact() {
    let (net, faults, tests) = fixture();
    let full = detection_matrix_multi_on::<1>(&net, &faults, &tests, Backend::active());
    let budget = SweepBudget::unlimited().with_max_blocks(1);
    let firsts =
        first_detections_multi_budgeted_on::<1>(&net, &faults, &tests, Backend::active(), &budget)
            .expect("inputs are valid");
    let Budgeted::Partial {
        progress,
        best_so_far,
        ..
    } = firsts
    else {
        panic!("576 tests exceed one 64-vector W1 block");
    };
    let committed = progress.vectors as usize;
    assert_eq!(committed % 64, 0);
    for (f, first) in best_so_far.iter().enumerate() {
        match first {
            Some(t) => {
                assert!(*t < committed, "a reported hit must lie in the prefix");
                assert_eq!(full.first_detection(f), Some(*t));
            }
            None => {
                // Undecided within the prefix: the full answer, if any,
                // must lie past the committed cut.
                if let Some(t) = full.first_detection(f) {
                    assert!(t >= committed, "a prefix hit must not be dropped");
                }
            }
        }
    }
}

#[test]
fn a_cancelled_coverage_run_is_conservative_on_every_engine_and_width() {
    let (net, _, tests) = fixture();
    let token = CancelToken::new();
    token.cancel();
    let budget = SweepBudget::unlimited().with_cancel(token);
    for engine in [
        FaultSimEngine::Scalar,
        FaultSimEngine::BitParallel,
        FaultSimEngine::BitParallelWide(sortnet_network::lanes::LaneWidth::W1),
        FaultSimEngine::BitParallelWide(sortnet_network::lanes::LaneWidth::W8),
    ] {
        let outcome = coverage_of_universe_budgeted_with(
            &net,
            &StandardUniverse::StuckLine,
            &tests,
            false,
            engine,
            &budget,
        )
        .expect("inputs are valid");
        let Budgeted::Partial {
            reason,
            best_so_far,
            ..
        } = outcome
        else {
            panic!("a pre-cancelled token must trip {engine:?}");
        };
        assert_eq!(reason, BudgetReason::Cancelled);
        assert_eq!(
            best_so_far.detected, 0,
            "nothing committed, so nothing may claim detection ({engine:?})"
        );
        assert_eq!(
            best_so_far.missed + best_so_far.redundant_faults,
            best_so_far.total_faults,
            "undecided faults must land in missed, conservatively ({engine:?})"
        );
    }
}
