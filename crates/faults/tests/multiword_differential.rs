//! Multi-word (ChannelWords > 1) differential suite: the bit-parallel
//! engines past the 64-line wall are pinned bit for bit against a
//! **shift-free `Vec<u8>` reference** that re-codes the lesion-timeline
//! semantics with one byte per line — no word packing, no shifts, no lane
//! indexing — so every hazard class the multi-word layout introduces
//! (lane indices above 63, comparators spanning the 63/64 and 127/128
//! word seams, live-mask math in the top word) is checked against an
//! implementation that cannot share the bug.
//!
//! Coverage:
//!
//! * `n ∈ {65, 96, 127, 128}` — one line over a seam, mid-word, one line
//!   under a seam, and exactly two full words;
//! * single-comparator and stuck-line universes, plus hand-built lesion
//!   *pairs* straddling the word seam;
//! * every runnable lane-ops backend × lane widths `W ∈ {1, 4}`;
//! * the streamed-source matrix against the slice-at-once matrix, and
//!   scalar vs bit-parallel coverage reports on a 96-line network.

use sortnet_combinat::{channel_words, ChannelPack, ChannelVec};
use sortnet_faults::bitsim::{
    detection_matrix_from_source_packed_on, detection_matrix_multi_packed_on,
    first_detections_multi_packed_on,
};
use sortnet_faults::coverage::{coverage_of_universe_packed_with, FaultSimEngine};
use sortnet_faults::universe::{
    FaultUniverse, Lesion, MultiFault, StandardUniverse, StuckAt, TestVector,
};
use sortnet_faults::{Fault, FaultKind};
use sortnet_network::lanes::{Backend, IterSource, LaneWidth};
use sortnet_network::Network;

/// Shift-free reference for a full lesion timeline: one `u8` per line.
///
/// Semantics mirrored from the engines: a stuck lesion at cut `c` forces
/// its line *after* `c` comparators have been applied (downstream
/// comparators read the constant but write fresh segments); a comparator
/// lesion replaces that comparator's behaviour.
fn reference_multi(network: &Network, fault: &MultiFault, input: &ChannelVec) -> ChannelVec {
    let mut v: Vec<u8> = (0..input.len()).map(|i| u8::from(input.bit(i))).collect();
    let stuck_at = |v: &mut Vec<u8>, cut: usize| {
        for lesion in fault.lesions() {
            if let Lesion::Stuck(StuckAt {
                line,
                cut: c,
                value,
            }) = lesion
            {
                if *c == cut {
                    v[*line] = u8::from(*value);
                }
            }
        }
    };
    for (idx, c) in network.comparators().iter().enumerate() {
        stuck_at(&mut v, idx);
        let broken = fault.lesions().iter().find_map(|lesion| match lesion {
            Lesion::Comparator(f) if f.comparator == idx => Some(f),
            _ => None,
        });
        let (i, j) = (c.min_line(), c.max_line());
        let (bi, bj) = (v[i], v[j]);
        match broken.map(|f| f.kind) {
            None => {
                v[i] = bi.min(bj);
                v[j] = bi.max(bj);
            }
            Some(FaultKind::StuckPass) => {}
            Some(FaultKind::StuckSwap) => {
                v[i] = bj;
                v[j] = bi;
            }
            Some(FaultKind::Inverted) => {
                v[i] = bi.max(bj);
                v[j] = bi.min(bj);
            }
            Some(FaultKind::Misrouted { new_bottom }) => {
                let t = c.top();
                if new_bottom != t {
                    let (bt, bb) = (v[t], v[new_bottom]);
                    v[t] = bt.min(bb);
                    v[new_bottom] = bt.max(bb);
                }
            }
        }
    }
    stuck_at(&mut v, network.size());
    ChannelVec::from_fn(v.len(), |i| v[i] == 1)
}

/// Detection per the engines' contract: the faulty output is unsorted.
fn reference_detects(network: &Network, fault: &MultiFault, input: &ChannelVec) -> bool {
    !reference_multi(network, fault, input).is_sorted()
}

/// A small network whose comparators straddle every word seam `n` has.
fn seam_network(n: usize) -> Network {
    assert!(n >= 65);
    let mut pairs = vec![
        (0, n - 1),
        (63, 64),
        (62, 63),
        if n > 65 { (64, 65) } else { (1, 64) },
        (0, 64),
        (n - 2, n - 1),
        (0, 1),
        (1, 62),
    ];
    if n >= 128 {
        pairs.push((126, 127));
    }
    Network::from_pairs(n, &pairs)
}

/// Inputs with live bits at every word boundary of an `n`-line state.
fn boundary_channel_inputs(n: usize) -> Vec<ChannelVec> {
    let mut inputs = vec![
        ChannelVec::zeros(n),
        ChannelVec::ones(n),
        ChannelVec::from_fn(n, |i| i % 2 == 1),
        ChannelVec::from_fn(n, |i| i == n - 1),
        ChannelVec::from_fn(n, |i| i != n - 1),
        ChannelVec::from_fn(n, |i| i == 63),
        ChannelVec::from_fn(n, |i| i == 64),
        ChannelVec::from_fn(n, |i| i < 64),
        ChannelVec::from_fn(n, |i| i >= 64),
    ];
    if n >= 128 {
        inputs.push(ChannelVec::from_fn(n, |i| i == 127));
    }
    inputs
}

#[test]
fn multiword_matrices_match_the_byte_reference_on_every_backend_and_width() {
    for n in [65usize, 96, 127, 128] {
        let net = seam_network(n);
        let tests = boundary_channel_inputs(n);
        for universe in [
            StandardUniverse::SingleComparator,
            StandardUniverse::StuckLine,
        ] {
            let faults: Vec<MultiFault> = universe.iter(&net).collect();
            let mut expected = Vec::with_capacity(faults.len() * tests.len());
            for fault in &faults {
                for test in &tests {
                    expected.push(reference_detects(&net, fault, test));
                }
            }
            for backend in Backend::runnable() {
                let w1 = detection_matrix_multi_packed_on::<1, ChannelVec>(
                    &net, &faults, &tests, backend,
                );
                let w4 = detection_matrix_multi_packed_on::<4, ChannelVec>(
                    &net, &faults, &tests, backend,
                );
                assert_eq!(w1, w4, "n={n} {} {}", universe.name(), backend.name());
                for (f, fault) in faults.iter().enumerate() {
                    for (t, test) in tests.iter().enumerate() {
                        assert_eq!(
                            w1.is_detected_by(f, t),
                            expected[f * tests.len() + t],
                            "n={n} {} {} fault {fault} test {test}",
                            universe.name(),
                            backend.name()
                        );
                    }
                }
            }
            // The scalar TestVector oracle agrees with the byte reference
            // (so the channel simulator itself is pinned too).
            for (f, fault) in faults.iter().enumerate().step_by(17) {
                for (t, test) in tests.iter().enumerate() {
                    assert_eq!(
                        !ChannelVec::multi_apply(&net, fault, test).is_sorted(),
                        expected[f * tests.len() + t],
                        "scalar channel oracle n={n} fault {fault} test {test}"
                    );
                }
            }
        }
    }
}

#[test]
fn lesion_pairs_straddling_the_word_seam_match_the_byte_reference() {
    // The two-level pair fork re-checkpoints the block after the first
    // lesion; past the 64-line wall that checkpoint copies multi-word
    // lanes.  Pairs are built by hand so each combination (stuck+stuck,
    // stuck+comparator) crosses the 63/64 seam with distinct cuts.
    for n in [65usize, 96, 128] {
        let net = seam_network(n);
        let tests = boundary_channel_inputs(n);
        let stuck = |line, cut, value| Lesion::Stuck(StuckAt { line, cut, value });
        let comp = |comparator, kind| Lesion::Comparator(Fault { comparator, kind });
        let faults = vec![
            MultiFault::pair(stuck(63, 0, true), stuck(64, 2, false)),
            MultiFault::pair(stuck(64, 1, true), stuck(n - 1, net.size(), false)),
            MultiFault::pair(stuck(0, 0, true), stuck(64, net.size(), true)),
            MultiFault::pair(stuck(63, 3, false), comp(1, FaultKind::StuckSwap)),
            MultiFault::pair(comp(1, FaultKind::StuckPass), stuck(n - 2, 4, true)),
            MultiFault::pair(
                comp(3, FaultKind::Inverted),
                comp(4, FaultKind::Misrouted { new_bottom: 63 }),
            ),
        ];
        for backend in Backend::runnable() {
            let w4 =
                detection_matrix_multi_packed_on::<4, ChannelVec>(&net, &faults, &tests, backend);
            for (f, fault) in faults.iter().enumerate() {
                for (t, test) in tests.iter().enumerate() {
                    assert_eq!(
                        w4.is_detected_by(f, t),
                        reference_detects(&net, fault, test),
                        "n={n} {} pair {fault} test {test}",
                        backend.name()
                    );
                }
            }
        }
    }
}

#[test]
fn streamed_source_and_first_detections_agree_with_the_slice_matrix_past_64() {
    let n = 96usize;
    let net = seam_network(n);
    let tests = boundary_channel_inputs(n);
    let faults: Vec<MultiFault> = StandardUniverse::StuckLine.iter(&net).collect();
    let reference =
        detection_matrix_multi_packed_on::<1, ChannelVec>(&net, &faults, &tests, Backend::Scalar);
    for backend in Backend::runnable() {
        let (streamed, echoed) = detection_matrix_from_source_packed_on::<4, ChannelVec, _>(
            &net,
            &faults,
            IterSource::new(n, tests.clone()),
            backend,
        );
        assert_eq!(streamed, reference, "{}", backend.name());
        assert_eq!(echoed, tests, "{}", backend.name());
        let firsts =
            first_detections_multi_packed_on::<4, ChannelVec>(&net, &faults, &tests, backend);
        for (f, &first) in firsts.iter().enumerate() {
            let expected = (0..tests.len()).find(|&t| reference.is_detected_by(f, t));
            assert_eq!(first, expected, "{} fault {f}", backend.name());
        }
    }
}

#[test]
fn stuck_line_coverage_sweep_completes_on_a_96_channel_network() {
    // The acceptance sweep: a full stuck-line coverage run on a 96-line
    // network, identical across the scalar engine, the default
    // bit-parallel engine, and pinned lane widths.
    let n = 96usize;
    assert_eq!(channel_words(n), 2);
    // Two brick-wall exchange passes: enough structure for non-trivial
    // detection patterns while keeping the scalar cross-check affordable.
    let mut pairs: Vec<(usize, usize)> = (0..n - 1).step_by(2).map(|i| (i, i + 1)).collect();
    pairs.extend((1..n - 1).step_by(2).map(|i| (i, i + 1)));
    let net = Network::from_pairs(n, &pairs);
    let tests = boundary_channel_inputs(n);
    let reference = coverage_of_universe_packed_with(
        &net,
        &StuckLineUniverse,
        &tests,
        false,
        FaultSimEngine::Scalar,
    );
    // StuckLine enumerates the 2n input segments plus both output
    // segments of every comparator at both values: 2n + 4·size lesions.
    assert_eq!(
        reference.total_faults,
        2 * n + 4 * net.size(),
        "stuck-line universe size"
    );
    assert!(reference.detected > 0, "the sweep must detect something");
    for engine in [
        FaultSimEngine::BitParallel,
        FaultSimEngine::BitParallelWide(LaneWidth::W1),
        FaultSimEngine::BitParallelWide(LaneWidth::W4),
    ] {
        let report =
            coverage_of_universe_packed_with(&net, &StuckLineUniverse, &tests, false, engine);
        assert_eq!(report, reference, "engine {engine:?}");
    }
}

use sortnet_faults::universe::StuckLine as StuckLineUniverse;
