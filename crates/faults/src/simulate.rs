//! Fault injection and simulation.

use sortnet_combinat::{channel_words, BitString, ChannelVec};
use sortnet_network::error::{self, EngineError};
use sortnet_network::{Comparator, Network};

use crate::model::{Fault, FaultKind};

/// One fault-free comparator step on a word-packed 0/1 state: the minimum
/// of the two line bits to `min_line`, the maximum to `max_line`.
#[inline]
pub(crate) fn step_word(c: &Comparator, w: u64) -> u64 {
    let (i, j) = (c.min_line(), c.max_line());
    let bi = (w >> i) & 1;
    let bj = (w >> j) & 1;
    (w & !((1u64 << i) | (1u64 << j))) | ((bi & bj) << i) | ((bi | bj) << j)
}

/// One *faulty* comparator step on a word-packed 0/1 state — the scalar
/// semantics of each [`FaultKind`], shared by the single-fault simulator
/// below and the multi-lesion simulator in [`crate::universe`].
#[inline]
pub(crate) fn step_word_faulty(c: &Comparator, kind: FaultKind, w: u64) -> u64 {
    let (i, j) = (c.min_line(), c.max_line());
    let bi = (w >> i) & 1;
    let bj = (w >> j) & 1;
    let (new_i, new_j) = match kind {
        FaultKind::StuckPass => (bi, bj),
        FaultKind::StuckSwap => (bj, bi),
        FaultKind::Inverted => (bi | bj, bi & bj),
        FaultKind::Misrouted { new_bottom } => {
            // Re-route: comparator acts between `top` and `new_bottom`
            // (minimum to the top line).  `new_bottom == top` degenerates
            // to a no-op, matching the lane engine.
            let top = c.top();
            let bt = (w >> top) & 1;
            let bb = (w >> new_bottom) & 1;
            return (w & !((1u64 << top) | (1u64 << new_bottom)))
                | ((bt & bb) << top)
                | ((bt | bb) << new_bottom);
        }
    };
    (w & !((1u64 << i) | (1u64 << j))) | (new_i << i) | (new_j << j)
}

/// Reads the bit of line `line` from a multi-word channel state
/// (`ceil(n/64)` words, line `i` at word `i / 64`, bit `i % 64`).
#[inline]
pub(crate) fn channel_bit(w: &[u64], line: usize) -> u64 {
    (w[line / 64] >> (line % 64)) & 1
}

/// Writes the bit of line `line` in a multi-word channel state.
#[inline]
pub(crate) fn set_channel_bit(w: &mut [u64], line: usize, value: u64) {
    let mask = 1u64 << (line % 64);
    if value == 1 {
        w[line / 64] |= mask;
    } else {
        w[line / 64] &= !mask;
    }
}

/// One fault-free comparator step on a multi-word channel state — the
/// `ChannelWords ≥ 1` sibling of [`step_word`], with per-line word
/// indexing instead of a `1 << line` shift (so lines past 63 are exact,
/// not wrapped).
#[inline]
pub(crate) fn step_channels(c: &Comparator, w: &mut [u64]) {
    let (i, j) = (c.min_line(), c.max_line());
    let bi = channel_bit(w, i);
    let bj = channel_bit(w, j);
    set_channel_bit(w, i, bi & bj);
    set_channel_bit(w, j, bi | bj);
}

/// One *faulty* comparator step on a multi-word channel state — the
/// `ChannelWords ≥ 1` sibling of [`step_word_faulty`], kind by kind.
#[inline]
pub(crate) fn step_channels_faulty(c: &Comparator, kind: FaultKind, w: &mut [u64]) {
    let (i, j) = (c.min_line(), c.max_line());
    let bi = channel_bit(w, i);
    let bj = channel_bit(w, j);
    let (new_i, new_j) = match kind {
        FaultKind::StuckPass => (bi, bj),
        FaultKind::StuckSwap => (bj, bi),
        FaultKind::Inverted => (bi | bj, bi & bj),
        FaultKind::Misrouted { new_bottom } => {
            // Re-route: comparator acts between `top` and `new_bottom`
            // (minimum to the top line).  `new_bottom == top` degenerates
            // to a no-op, matching the lane engine.
            let top = c.top();
            let bt = channel_bit(w, top);
            let bb = channel_bit(w, new_bottom);
            set_channel_bit(w, top, bt & bb);
            set_channel_bit(w, new_bottom, bt | bb);
            return;
        }
    };
    set_channel_bit(w, i, new_i);
    set_channel_bit(w, j, new_j);
}

/// A faulty evaluation of a network on a multi-word channel input — the
/// arbitrary-`n` form of [`faulty_apply_bits`].
///
/// # Panics
/// The panicking wrapper over [`try_faulty_apply_channels`].
#[must_use]
pub fn faulty_apply_channels(network: &Network, fault: &Fault, input: &ChannelVec) -> ChannelVec {
    try_faulty_apply_channels(network, fault, input).unwrap_or_else(|e| panic!("{e}"))
}

/// [`faulty_apply_channels`] with every precondition reported as a typed
/// [`EngineError`] instead of a panic.
///
/// # Errors
/// [`EngineError::IndexOutOfRange`] for an out-of-range fault index;
/// [`EngineError::OversizedNetwork`] past the
/// [`max_channel_lines`](sortnet_network::error::max_channel_lines) cap;
/// [`EngineError::InputLengthMismatch`] otherwise.
pub fn try_faulty_apply_channels(
    network: &Network,
    fault: &Fault,
    input: &ChannelVec,
) -> Result<ChannelVec, EngineError> {
    if fault.comparator >= network.size() {
        return Err(EngineError::IndexOutOfRange {
            what: "fault",
            index: fault.comparator,
            limit: network.size(),
        });
    }
    let n = network.lines();
    error::ensure_channel_packable(n, channel_words(n))?;
    if input.len() != n {
        return Err(EngineError::InputLengthMismatch {
            expected: n,
            actual: input.len(),
        });
    }
    let mut w = input.words().to_vec();
    for (idx, c) in network.comparators().iter().enumerate() {
        if idx == fault.comparator {
            step_channels_faulty(c, fault.kind, &mut w);
        } else {
            step_channels(c, &mut w);
        }
    }
    Ok(ChannelVec::from_words(&w, n))
}

/// A faulty evaluation of a network on a 0/1 input: comparator
/// `fault.comparator` misbehaves according to `fault.kind`.
///
/// # Panics
/// Panics if the fault's comparator index is out of range, the network
/// has more than 64 lines, or the input length mismatches the network —
/// the panicking wrapper over [`try_faulty_apply_bits`].
#[must_use]
pub fn faulty_apply_bits(network: &Network, fault: &Fault, input: &BitString) -> BitString {
    try_faulty_apply_bits(network, fault, input).unwrap_or_else(|e| panic!("{e}"))
}

/// [`faulty_apply_bits`] with every precondition reported as a typed
/// [`EngineError`] instead of a panic.
///
/// # Errors
/// [`EngineError::IndexOutOfRange`] for an out-of-range fault index;
/// [`EngineError::OversizedNetwork`] when `n > 64` (the evaluation is
/// word-packed — checked before the input-length comparison so an
/// oversized network is rejected for what it is, not as a length
/// mismatch); [`EngineError::InputLengthMismatch`] otherwise.
pub fn try_faulty_apply_bits(
    network: &Network,
    fault: &Fault,
    input: &BitString,
) -> Result<BitString, EngineError> {
    if fault.comparator >= network.size() {
        return Err(EngineError::IndexOutOfRange {
            what: "fault",
            index: fault.comparator,
            limit: network.size(),
        });
    }
    error::ensure_word_packable(network.lines())?;
    if input.len() != network.lines() {
        return Err(EngineError::InputLengthMismatch {
            expected: network.lines(),
            actual: input.len(),
        });
    }
    let mut w = input.word();
    for (idx, c) in network.comparators().iter().enumerate() {
        w = if idx == fault.comparator {
            step_word_faulty(c, fault.kind, w)
        } else {
            step_word(c, w)
        };
    }
    Ok(BitString::from_word(w, network.lines()))
}

/// Materialises the faulty network as a [`Network`] when the fault is
/// expressible as a comparator replacement (all kinds except the
/// behavioural `StuckPass`/`StuckSwap`, which return `None` for `StuckSwap`
/// and a comparator-deleted network for `StuckPass`).
#[must_use]
pub fn apply_fault(network: &Network, fault: &Fault) -> Option<Network> {
    match fault.kind {
        FaultKind::StuckPass => Some(network.without_comparator(fault.comparator)),
        FaultKind::Inverted => {
            let mut comparators = network.comparators().to_vec();
            let c = comparators[fault.comparator];
            comparators[fault.comparator] = Comparator::directed(c.max_line(), c.min_line());
            Some(Network::from_comparators(network.lines(), comparators))
        }
        FaultKind::Misrouted { new_bottom } => {
            let mut comparators = network.comparators().to_vec();
            let c = comparators[fault.comparator];
            comparators[fault.comparator] = Comparator::new(c.top(), new_bottom);
            Some(Network::from_comparators(network.lines(), comparators))
        }
        FaultKind::StuckSwap => None,
    }
}

/// `true` iff the test input `input` detects the fault: the faulty network
/// fails to sort it.
#[must_use]
pub fn detects(network: &Network, fault: &Fault, input: &BitString) -> bool {
    !faulty_apply_bits(network, fault, input).is_sorted()
}

/// [`detects`] with preconditions reported as a typed [`EngineError`].
///
/// # Errors
/// As [`try_faulty_apply_bits`].
pub fn try_detects(
    network: &Network,
    fault: &Fault,
    input: &BitString,
) -> Result<bool, EngineError> {
    Ok(!try_faulty_apply_bits(network, fault, input)?.is_sorted())
}

/// `true` iff the fault is *redundant* for the sorting property: the faulty
/// network still sorts all `2^n` inputs (so no test can — or needs to —
/// detect it).
///
/// # Panics
/// Panics when the exhaustive `2^n` sweep is inadmissible (`n ≥ 32` —
/// the canonical [`error::ensure_sweepable`] bound, shared with the
/// bit-parallel engine).
#[must_use]
pub fn is_fault_redundant(network: &Network, fault: &Fault) -> bool {
    let n = network.lines();
    if let Err(e) = error::ensure_sweepable(n) {
        panic!("{e}");
    }
    BitString::all(n).all(|s| faulty_apply_bits(network, fault, &s).is_sorted())
}

/// [`is_fault_redundant`] with the size guard reported as a typed
/// [`EngineError`] (the exhaustive check is refused for `n ≥ 32`,
/// exactly as in the bit-parallel sweep).
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32`;
/// [`EngineError::IndexOutOfRange`] for an out-of-range fault index.
pub fn try_is_fault_redundant(network: &Network, fault: &Fault) -> Result<bool, EngineError> {
    error::ensure_sweepable(network.lines())?;
    if fault.comparator >= network.size() {
        return Err(EngineError::IndexOutOfRange {
            what: "fault",
            index: fault.comparator,
            limit: network.size(),
        });
    }
    Ok(is_fault_redundant(network, fault))
}

/// Index (0-based) of the first test in `tests` that detects the fault, or
/// `None` if none does.
#[must_use]
pub fn first_detection_index(
    network: &Network,
    fault: &Fault,
    tests: &[BitString],
) -> Option<usize> {
    tests.iter().position(|t| detects(network, fault, t))
}

/// [`first_detection_index`] with preconditions reported as a typed
/// [`EngineError`].
///
/// # Errors
/// As [`try_faulty_apply_bits`], for any test in the list.
pub fn try_first_detection_index(
    network: &Network,
    fault: &Fault,
    tests: &[BitString],
) -> Result<Option<usize>, EngineError> {
    for (i, t) in tests.iter().enumerate() {
        if try_detects(network, fault, t)? {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::enumerate_faults;
    use sortnet_network::builders::batcher::odd_even_merge_sort;
    use sortnet_network::properties::is_sorter;

    #[test]
    fn faulty_evaluation_matches_materialised_network_when_available() {
        let net = odd_even_merge_sort(6);
        for fault in enumerate_faults(&net) {
            if let Some(faulty_net) = apply_fault(&net, &fault) {
                for input in BitString::all(6) {
                    assert_eq!(
                        faulty_apply_bits(&net, &fault, &input),
                        faulty_net.apply_bits(&input),
                        "fault {fault:?} input {input}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_free_simulation_matches_normal_evaluation() {
        // A StuckPass fault on a comparator that never fires behaves like the
        // original network on inputs that never exercise it; more simply,
        // simulate with a fault and verify only the faulted comparator can
        // deviate — here we check the trivial invariant that output weight is
        // preserved (faults permute, never create or destroy values).
        let net = odd_even_merge_sort(7);
        for fault in enumerate_faults(&net) {
            for input in BitString::all(7).take(32) {
                let out = faulty_apply_bits(&net, &fault, &input);
                assert_eq!(out.count_ones(), input.count_ones(), "fault {fault:?}");
            }
        }
    }

    #[test]
    fn stuck_pass_faults_on_batcher_are_never_redundant() {
        // Batcher's merge-exchange network is known to contain no redundant
        // comparators: deleting any one breaks sorting.
        for n in [4usize, 6, 8] {
            let net = odd_even_merge_sort(n);
            for idx in 0..net.size() {
                let fault = Fault {
                    comparator: idx,
                    kind: FaultKind::StuckPass,
                };
                assert!(!is_fault_redundant(&net, &fault), "n={n} comparator {idx}");
            }
        }
    }

    #[test]
    fn inverted_faults_break_sorting() {
        let net = odd_even_merge_sort(6);
        for idx in 0..net.size() {
            let fault = Fault {
                comparator: idx,
                kind: FaultKind::Inverted,
            };
            let faulty = apply_fault(&net, &fault).unwrap();
            assert!(!is_sorter(&faulty), "comparator {idx}");
        }
    }

    #[test]
    fn detection_uses_unsorted_outputs_only() {
        let net = odd_even_merge_sort(5);
        let fault = Fault {
            comparator: 0,
            kind: FaultKind::StuckSwap,
        };
        // Sorted inputs can never detect anything on... actually a StuckSwap
        // CAN mis-sort a sorted input, which is exactly why they are included
        // in fault testing but not in the paper's sorting test set.  Just
        // check detects() is consistent with the simulator.
        for input in BitString::all(5) {
            assert_eq!(
                detects(&net, &fault, &input),
                !faulty_apply_bits(&net, &fault, &input).is_sorted()
            );
        }
    }

    /// Independent reference: the faulty step semantics re-coded over a
    /// `Vec<u8>` state (no word shifts), so the word-packed engine's
    /// `1u64 << line` arithmetic is cross-checked at the top of the word.
    fn reference_faulty(network: &Network, fault: &Fault, input: &BitString) -> BitString {
        let mut v: Vec<u8> = input.to_vec();
        for (idx, c) in network.comparators().iter().enumerate() {
            let (i, j) = (c.min_line(), c.max_line());
            let (bi, bj) = (v[i], v[j]);
            if idx != fault.comparator {
                v[i] = bi.min(bj);
                v[j] = bi.max(bj);
                continue;
            }
            match fault.kind {
                FaultKind::StuckPass => {}
                FaultKind::StuckSwap => {
                    v[i] = bj;
                    v[j] = bi;
                }
                FaultKind::Inverted => {
                    v[i] = bi.max(bj);
                    v[j] = bi.min(bj);
                }
                FaultKind::Misrouted { new_bottom } => {
                    let t = c.top();
                    if new_bottom != t {
                        let (bt, bb) = (v[t], v[new_bottom]);
                        v[t] = bt.min(bb);
                        v[new_bottom] = bt.max(bb);
                    }
                }
            }
        }
        BitString::from_bits(&v.iter().map(|&b| b == 1).collect::<Vec<bool>>())
    }

    /// Boundary inputs with live bits at the top of the packed word.
    fn boundary_inputs(n: usize) -> Vec<BitString> {
        [
            0u64,
            u64::MAX,
            1u64 << (n - 1),
            1u64 << (n - 2),
            u64::MAX ^ (1u64 << (n - 1)),
            0xAAAA_AAAA_AAAA_AAAA,
            0x8000_0000_0000_0001,
        ]
        .into_iter()
        .map(|w| BitString::from_word(w, n))
        .collect()
    }

    #[test]
    fn word_boundary_networks_simulate_every_fault_kind_exactly() {
        // n ∈ {63, 64}: lines 62/63 sit at the top bits of the packed u64,
        // where a wrong shift would wrap (the hazard class PR 1 fixed in
        // the enumeration paths).  Every FaultKind on comparators touching
        // the top lines must match a shift-free Vec<u8> reference.
        for n in [63usize, 64] {
            let net = Network::from_pairs(n, &[(0, n - 1), (n - 2, n - 1), (0, 1), (1, n - 2)]);
            for fault in enumerate_faults(&net) {
                for input in boundary_inputs(n) {
                    assert_eq!(
                        faulty_apply_bits(&net, &fault, &input),
                        reference_faulty(&net, &fault, &input),
                        "n={n} fault {fault:?} input {input}"
                    );
                }
            }
        }
    }

    #[test]
    fn channel_simulator_agrees_with_the_word_engine_up_to_64_lines() {
        // The multi-word scalar path must be bit-identical to the packed
        // u64 path wherever both run — including the top-of-word lines.
        for n in [5usize, 63, 64] {
            let net = Network::from_pairs(n, &[(0, n - 1), (n - 2, n - 1), (0, 1), (1, n - 2)]);
            for fault in enumerate_faults(&net) {
                for input in boundary_inputs(n) {
                    let wide = ChannelVec::from_bitstring(input);
                    assert_eq!(
                        faulty_apply_channels(&net, &fault, &wide),
                        ChannelVec::from_bitstring(faulty_apply_bits(&net, &fault, &input)),
                        "n={n} fault {fault:?} input {input}"
                    );
                }
            }
        }
    }

    #[test]
    fn channel_simulator_crosses_the_word_63_64_seam() {
        // A comparator spanning lines 63/64 moves a bit between channel
        // words; a wrong word index would leave both words untouched or
        // corrupt a neighbour.
        let n = 65usize;
        let net = Network::from_pairs(n, &[(63, 64)]);
        let fault = Fault {
            comparator: 0,
            kind: FaultKind::StuckSwap,
        };
        let mut input = ChannelVec::zeros(n);
        input.set(63, true); // 1 on line 63, 0 on line 64: the comparator swaps
        let sorted = input.with_bit(63, false).with_bit(64, true);
        assert_eq!(
            faulty_apply_channels(
                &net,
                &Fault {
                    comparator: 0,
                    kind: FaultKind::StuckPass
                },
                &input
            ),
            input,
            "StuckPass leaves the seam untouched"
        );
        assert_eq!(
            faulty_apply_channels(&net, &fault, &input),
            sorted,
            "StuckSwap on an inverted pair sorts it"
        );
    }

    #[test]
    #[should_panic(expected = "n <= 64")]
    fn networks_beyond_64_lines_are_rejected_by_the_word_engine() {
        let net = Network::from_pairs(65, &[(0, 64)]);
        let fault = Fault {
            comparator: 0,
            kind: FaultKind::StuckSwap,
        };
        // BitString itself caps at 64, so drive the assert with a 64-long
        // input: the n <= 64 guard must fire (before the length check, so
        // the oversized network is rejected for what it is).
        let _ = faulty_apply_bits(&net, &fault, &BitString::zeros(64));
    }

    #[test]
    fn first_detection_index_finds_the_earliest_witness() {
        let net = odd_even_merge_sort(5);
        let tests: Vec<BitString> = BitString::all(5).collect();
        for fault in enumerate_faults(&net) {
            if let Some(idx) = first_detection_index(&net, &fault, &tests) {
                assert!(detects(&net, &fault, &tests[idx]));
                for t in &tests[..idx] {
                    assert!(!detects(&net, &fault, t));
                }
            } else {
                assert!(is_fault_redundant(&net, &fault));
            }
        }
    }
}
