//! Multi-fault universes: streaming enumerations of the fault spaces the
//! engines sweep.
//!
//! §1 of Chung & Ravikumar motivates test-set bounds by VLSI testing, and
//! the paper's central claim — a minimal 0/1 test set detects every
//! *detectable* fault — is a statement about a *fault universe*: the set of
//! lesions a test sequence is graded against.  This module generalises the
//! workspace from the hardcoded single-comparator universe to a
//! [`FaultUniverse`] trait with three implementations, mapping onto the
//! classical stuck-at/bridging taxonomy the paper's VLSI discussion draws
//! from:
//!
//! * [`SingleComparator`] — the original model: one comparator misbehaves
//!   according to a [`FaultKind`] (stuck-pass, stuck-swap, inverted or
//!   misrouted).  This is the comparator-level translation of a *functional*
//!   gate fault;
//! * [`StuckLine`] — the classical **stuck-at-0/1** model applied to wire
//!   segments: every wire of the network is cut into segments by the
//!   comparators touching it, and each segment can be stuck at either
//!   constant.  This is the fault class the paper's "hardware failures"
//!   remark most directly names, and it is *not* the class the minimal test
//!   sets were constructed for — on a correct sorter, a stuck segment early
//!   enough in the network is re-sorted away and therefore undetectable by
//!   any output-order test (see [`StuckLine`] for the exact semantics);
//! * [`FaultPairs`] — the **multi-fault** extension: all 2-subsets of
//!   physically co-realisable lesions of a base universe, enumerated lazily
//!   because the pair space is quadratic in the base.
//!
//! # Lesions and fault timelines
//!
//! A fault of any universe is a [`MultiFault`]: one or two [`Lesion`]s
//! placed on the network's evaluation timeline.  Each lesion has a *cut
//! position* — the number of comparators applied before it acts — so a
//! faulty evaluation is: run comparators fault-free up to the first
//! lesion's cut, apply it, continue to the next lesion, apply it, and run
//! the remaining suffix.  The earliest cut is the fault's
//! [`fork site`](MultiFault::fork_site): everything before it is identical
//! to the fault-free network, which is exactly what the bit-parallel
//! engine's shared-prefix forking exploits (`crate::bitsim` forks the
//! fault-free prefix state at each fault's site instead of re-running it).
//!
//! # Fault masking: why pairs are not the union of their members
//!
//! Pair detection is **not** monotone in member detection.  Two lesions can
//! *mask* each other: on the 2-line network `[1,2][1,2][1,2]`, a stuck-swap
//! on the last comparator is detectable alone (it unsorts every mixed
//! input), and an inverted middle comparator is redundant alone (the last
//! comparator re-sorts its damage) — yet the *pair* is undetectable,
//! because the inverted comparator pre-inverts exactly the inputs the
//! stuck-swap then re-inverts.  Conversely, two individually redundant
//! lesions can form a detectable pair.  The differential suites pin both
//! phenomena; see `tests/proptest_universes.rs`.  This is why a
//! [`FaultUniverse`] is swept directly instead of being derived from
//! single-fault verdicts.
//!
//! # Detection convention
//!
//! As everywhere in this crate, a test input *detects* a fault when the
//! faulty network leaves it unsorted.  Note that stuck-at lesions do not
//! preserve the input's multiset of values (a forced line changes the 0/1
//! weight), so sortedness of the output really is the whole criterion — a
//! stuck-at fault whose output is always sorted is undetectable even
//! though the output may be the "wrong" sorted string.

use std::fmt;

use serde::{Deserialize, Serialize};

use sortnet_combinat::{channel_words, BitString, ChannelPack, ChannelVec};
use sortnet_network::error::{self, EngineError};
use sortnet_network::Network;

use crate::model::{enumerate_faults, Fault, FaultKind};
use crate::simulate::{
    set_channel_bit, step_channels, step_channels_faulty, step_word, step_word_faulty,
};

/// A stuck-at-0/1 fault on one wire segment.
///
/// The wire on line `line` is cut into segments by the comparators that
/// touch the line; the segment starting at cut position `cut` (i.e. just
/// after comparator `cut − 1`, or the input segment when `cut == 0`) is
/// stuck at the constant `value`.  Operationally: evaluate comparators
/// `0..cut` fault-free, force line `line` to `value`, and continue —
/// downstream comparators read the forced constant but write their outputs
/// onto fresh (un-stuck) segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckAt {
    /// The affected line (0-based).
    pub line: usize,
    /// Cut position: number of comparators applied before the forcing.
    pub cut: usize,
    /// The constant the segment is stuck at.
    pub value: bool,
}

/// One atomic lesion: the unit a [`MultiFault`] composes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lesion {
    /// A misbehaving comparator (the [`FaultKind`] single-fault model).
    Comparator(Fault),
    /// A stuck-at-0/1 wire segment.
    Stuck(StuckAt),
}

impl Lesion {
    /// Cut position at which the lesion first diverges from the fault-free
    /// network: comparators `0..fork_site()` are unaffected by it.
    #[must_use]
    pub fn fork_site(&self) -> usize {
        match self {
            Self::Comparator(f) => f.comparator,
            Self::Stuck(s) => s.cut,
        }
    }

    /// Timeline ordering key: `(cut position, rank, …)` with stuck
    /// injections acting *before* the comparator at the same cut executes.
    /// The trailing components are a total tie-break over the lesion's
    /// content, so [`MultiFault::pair`] is canonical — `pair(a, b)` and
    /// `pair(b, a)` are structurally equal — even when two lesions share a
    /// timeline position (e.g. two stuck segments at the same cut).
    ///
    /// Crate-visible because the bit-parallel engine sorts its sweep plan
    /// by this key: ordering faults by the first lesion's key groups equal
    /// first lesions contiguously *and* keeps fork sites nondecreasing
    /// (the key's leading component is [`Lesion::fork_site`]), which is
    /// exactly what two-level prefix forking needs.
    pub(crate) fn order_key(&self) -> (usize, u8, usize, usize) {
        match self {
            Self::Stuck(s) => (s.cut, 0, s.line, usize::from(s.value)),
            Self::Comparator(f) => {
                let (kind, detail) = match f.kind {
                    FaultKind::StuckPass => (0, 0),
                    FaultKind::StuckSwap => (1, 0),
                    FaultKind::Inverted => (2, 0),
                    FaultKind::Misrouted { new_bottom } => (3, new_bottom),
                };
                (f.comparator, 1, kind, detail)
            }
        }
    }

    /// `true` when the two lesions cannot coexist in one physical network:
    /// two (distinct or identical) faults of the same comparator, or
    /// contradictory stuck values on the same segment.
    #[must_use]
    pub fn conflicts_with(&self, other: &Lesion) -> bool {
        match (self, other) {
            (Self::Comparator(a), Self::Comparator(b)) => a.comparator == b.comparator,
            (Self::Stuck(a), Self::Stuck(b)) => a.line == b.line && a.cut == b.cut,
            _ => false,
        }
    }

    /// Panics unless the lesion fits `network`.
    fn assert_in_range(&self, network: &Network) {
        if let Err(e) = self.check_in_range(network) {
            panic!("{e}");
        }
    }

    /// The typed form of the range guard: a lesion fits `network` when
    /// its comparator index / cut position / line index do.
    fn check_in_range(&self, network: &Network) -> Result<(), EngineError> {
        match self {
            Self::Comparator(f) => {
                if f.comparator >= network.size() {
                    return Err(EngineError::IndexOutOfRange {
                        what: "fault",
                        index: f.comparator,
                        limit: network.size(),
                    });
                }
            }
            Self::Stuck(s) => {
                if s.cut > network.size() {
                    return Err(EngineError::IndexOutOfRange {
                        what: "stuck-at cut",
                        index: s.cut,
                        limit: network.size() + 1,
                    });
                }
                if s.line >= network.lines() {
                    return Err(EngineError::IndexOutOfRange {
                        what: "stuck-at line",
                        index: s.line,
                        limit: network.lines(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Lesion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Comparator(fault) => match fault.kind {
                FaultKind::StuckPass => write!(f, "pass@c{}", fault.comparator),
                FaultKind::StuckSwap => write!(f, "swap@c{}", fault.comparator),
                FaultKind::Inverted => write!(f, "inv@c{}", fault.comparator),
                FaultKind::Misrouted { new_bottom } => {
                    write!(f, "misroute@c{}->l{}", fault.comparator, new_bottom + 1)
                }
            },
            Self::Stuck(s) => write!(
                f,
                "stuck-{}@l{}.cut{}",
                u8::from(s.value),
                s.line + 1,
                s.cut
            ),
        }
    }
}

/// A fault drawn from some [`FaultUniverse`]: one or two [`Lesion`]s in
/// timeline order.
///
/// The representation is canonical (a single lesion occupies both slots,
/// pairs are sorted into timeline position), so the derived equality and
/// hashing are structural.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MultiFault {
    lesions: [Lesion; 2],
    len: u8,
}

impl MultiFault {
    /// A single-lesion fault.
    #[must_use]
    pub fn single(lesion: Lesion) -> Self {
        Self {
            lesions: [lesion, lesion],
            len: 1,
        }
    }

    /// A pair of co-realisable lesions, normalised into timeline order.
    ///
    /// # Panics
    /// Panics if the lesions conflict ([`Lesion::conflicts_with`]); a pair
    /// of contradictory lesions has no well-defined faulty network.
    #[must_use]
    pub fn pair(a: Lesion, b: Lesion) -> Self {
        assert!(
            !a.conflicts_with(&b),
            "conflicting lesions cannot form a fault pair: {a} vs {b}"
        );
        let (first, second) = if b.order_key() < a.order_key() {
            (b, a)
        } else {
            (a, b)
        };
        Self {
            lesions: [first, second],
            len: 2,
        }
    }

    /// Pair constructor for callers that have already normalised the two
    /// lesions into timeline order and checked them for conflicts — the
    /// lazy pair enumerator, which compares *cached* order keys instead of
    /// re-deriving them per pair (the derivation showed up in quadratic
    /// universe enumerations).
    pub(crate) fn pair_in_order(first: Lesion, second: Lesion) -> Self {
        debug_assert!(!first.conflicts_with(&second), "conflicting lesions");
        debug_assert!(
            first.order_key() <= second.order_key(),
            "pair lesions must arrive in timeline order"
        );
        Self {
            lesions: [first, second],
            len: 2,
        }
    }

    /// The lesions in timeline order (length 1 or 2).
    #[must_use]
    pub fn lesions(&self) -> &[Lesion] {
        &self.lesions[..usize::from(self.len)]
    }

    /// `true` when the fault is a 2-subset (a [`FaultPairs`] member).
    #[must_use]
    pub fn is_pair(&self) -> bool {
        self.len == 2
    }

    /// Cut position where the fault first diverges from the fault-free
    /// network — the point the bit-parallel engine forks the shared prefix.
    #[must_use]
    pub fn fork_site(&self) -> usize {
        self.lesions[0].fork_site()
    }

    /// Panics unless every lesion fits `network`.
    pub(crate) fn assert_in_range(&self, network: &Network) {
        for lesion in self.lesions() {
            lesion.assert_in_range(network);
        }
    }

    /// The typed form of the range guard.
    pub(crate) fn check_in_range(&self, network: &Network) -> Result<(), EngineError> {
        for lesion in self.lesions() {
            lesion.check_in_range(network)?;
        }
        Ok(())
    }
}

impl From<Fault> for MultiFault {
    fn from(fault: Fault) -> Self {
        Self::single(Lesion::Comparator(fault))
    }
}

impl fmt::Display for MultiFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lesions() {
            [one] => write!(f, "{one}"),
            [a, b] => write!(f, "{{{a}, {b}}}"),
            _ => unreachable!("a MultiFault holds 1 or 2 lesions"),
        }
    }
}

/// Evaluates the faulty network on a word-packed 0/1 state: fault-free
/// ranges between lesion cut positions, each lesion applied in timeline
/// order.
fn multi_faulty_apply_word(network: &Network, lesions: &[Lesion], mut w: u64) -> u64 {
    let comparators = network.comparators();
    let mut pos = 0usize;
    for lesion in lesions {
        match lesion {
            Lesion::Comparator(fault) => {
                for c in &comparators[pos..fault.comparator] {
                    w = step_word(c, w);
                }
                w = step_word_faulty(&comparators[fault.comparator], fault.kind, w);
                pos = fault.comparator + 1;
            }
            Lesion::Stuck(s) => {
                for c in &comparators[pos..s.cut] {
                    w = step_word(c, w);
                }
                w = if s.value {
                    w | (1u64 << s.line)
                } else {
                    w & !(1u64 << s.line)
                };
                pos = s.cut;
            }
        }
    }
    for c in &comparators[pos..] {
        w = step_word(c, w);
    }
    w
}

/// Scalar faulty evaluation of a [`MultiFault`] on a 0/1 input — the
/// oracle the bit-parallel multi-fault engine is cross-checked against.
///
/// For single-comparator faults this agrees bit for bit with
/// [`faulty_apply_bits`](crate::simulate::faulty_apply_bits).
///
/// # Panics
/// Panics if a lesion is out of range, the input length mismatches, or the
/// network has more than 64 lines.
#[must_use]
pub fn multi_faulty_apply_bits(
    network: &Network,
    fault: &MultiFault,
    input: &BitString,
) -> BitString {
    try_multi_faulty_apply_bits(network, fault, input).unwrap_or_else(|e| panic!("{e}"))
}

/// [`multi_faulty_apply_bits`] with every precondition reported as a
/// typed [`EngineError`] instead of a panic.
///
/// # Errors
/// [`EngineError::IndexOutOfRange`] when a lesion does not fit the
/// network; [`EngineError::OversizedNetwork`] when `n > 64` (rejected
/// before the input-length comparison so an oversized network is
/// reported for what it is — the stuck-at injection shifts
/// `1u64 << line`, which needs every line index < 64);
/// [`EngineError::InputLengthMismatch`] otherwise.
pub fn try_multi_faulty_apply_bits(
    network: &Network,
    fault: &MultiFault,
    input: &BitString,
) -> Result<BitString, EngineError> {
    fault.check_in_range(network)?;
    error::ensure_word_packable(network.lines())?;
    if input.len() != network.lines() {
        return Err(EngineError::InputLengthMismatch {
            expected: network.lines(),
            actual: input.len(),
        });
    }
    let w = multi_faulty_apply_word(network, fault.lesions(), input.word());
    Ok(BitString::from_word(w, network.lines()))
}

/// Evaluates the faulty network on a multi-word channel state in place —
/// the `ChannelWords ≥ 1` sibling of [`multi_faulty_apply_word`], with the
/// stuck-at injection indexing word `line / 64` instead of shifting
/// `1u64 << line`.
fn multi_faulty_apply_channel_state(network: &Network, lesions: &[Lesion], w: &mut [u64]) {
    let comparators = network.comparators();
    let mut pos = 0usize;
    for lesion in lesions {
        match lesion {
            Lesion::Comparator(fault) => {
                for c in &comparators[pos..fault.comparator] {
                    step_channels(c, w);
                }
                step_channels_faulty(&comparators[fault.comparator], fault.kind, w);
                pos = fault.comparator + 1;
            }
            Lesion::Stuck(s) => {
                for c in &comparators[pos..s.cut] {
                    step_channels(c, w);
                }
                set_channel_bit(w, s.line, u64::from(s.value));
                pos = s.cut;
            }
        }
    }
    for c in &comparators[pos..] {
        step_channels(c, w);
    }
}

/// Scalar faulty evaluation of a [`MultiFault`] on a multi-word channel
/// input — the arbitrary-`n` form of [`multi_faulty_apply_bits`] and the
/// oracle the multi-word bit-parallel sweeps are cross-checked against.
///
/// # Panics
/// The panicking wrapper over [`try_multi_faulty_apply_channels`].
#[must_use]
pub fn multi_faulty_apply_channels(
    network: &Network,
    fault: &MultiFault,
    input: &ChannelVec,
) -> ChannelVec {
    try_multi_faulty_apply_channels(network, fault, input).unwrap_or_else(|e| panic!("{e}"))
}

/// [`multi_faulty_apply_channels`] with every precondition reported as a
/// typed [`EngineError`] instead of a panic.
///
/// # Errors
/// [`EngineError::IndexOutOfRange`] when a lesion does not fit the
/// network; [`EngineError::OversizedNetwork`] past the
/// [`max_channel_lines`](sortnet_network::error::max_channel_lines) cap;
/// [`EngineError::InputLengthMismatch`] otherwise.
pub fn try_multi_faulty_apply_channels(
    network: &Network,
    fault: &MultiFault,
    input: &ChannelVec,
) -> Result<ChannelVec, EngineError> {
    fault.check_in_range(network)?;
    let n = network.lines();
    error::ensure_channel_packable(n, channel_words(n))?;
    if input.len() != n {
        return Err(EngineError::InputLengthMismatch {
            expected: n,
            actual: input.len(),
        });
    }
    let mut w = input.words().to_vec();
    multi_faulty_apply_channel_state(network, fault.lesions(), &mut w);
    Ok(ChannelVec::from_words(&w, n))
}

/// `true` iff the multi-word channel input detects the fault.
#[must_use]
pub fn multi_detects_channels(network: &Network, fault: &MultiFault, input: &ChannelVec) -> bool {
    !multi_faulty_apply_channels(network, fault, input).is_sorted()
}

/// A packed test vector the scalar fault engines can evaluate directly:
/// the hook that lets the coverage/augmentation layers stay generic over
/// the vector packing without losing the single-word fast path.
///
/// `BitString` routes to the historical word-packed scalar simulator
/// (so the `n ≤ 64` scalar engine is byte-identical to before), and
/// `ChannelVec` to the multi-word channel simulator.  `ensure_packable`
/// is the packing's own size guard: the 64-line wall for `BitString`
/// (with its pinned `"n <= 64"` text), the
/// [`max_channel_lines`](sortnet_network::error::max_channel_lines) cap
/// for `ChannelVec`.
pub trait TestVector: ChannelPack {
    /// Faulty scalar evaluation of `fault` on `input`.
    ///
    /// # Panics
    /// Panics on out-of-range lesions or mismatched input lengths —
    /// callers validate with [`TestVector::ensure_packable`] and a length
    /// check first, as the engines do.
    #[must_use]
    fn multi_apply(network: &Network, fault: &MultiFault, input: &Self) -> Self;

    /// The packing's size guard for an `lines`-line network.
    ///
    /// # Errors
    /// [`EngineError::OversizedNetwork`] past the packing's cap.
    fn ensure_packable(lines: usize) -> Result<(), EngineError>;
}

impl TestVector for BitString {
    #[inline]
    fn multi_apply(network: &Network, fault: &MultiFault, input: &Self) -> Self {
        multi_faulty_apply_bits(network, fault, input)
    }

    #[inline]
    fn ensure_packable(lines: usize) -> Result<(), EngineError> {
        error::ensure_word_packable(lines)
    }
}

impl TestVector for ChannelVec {
    #[inline]
    fn multi_apply(network: &Network, fault: &MultiFault, input: &Self) -> Self {
        multi_faulty_apply_channels(network, fault, input)
    }

    #[inline]
    fn ensure_packable(lines: usize) -> Result<(), EngineError> {
        error::ensure_channel_packable(lines, channel_words(lines))
    }
}

/// `true` iff `input` detects the fault: the faulty network fails to sort
/// it.
#[must_use]
pub fn multi_detects(network: &Network, fault: &MultiFault, input: &BitString) -> bool {
    !multi_faulty_apply_bits(network, fault, input).is_sorted()
}

/// [`multi_detects`] with preconditions reported as a typed
/// [`EngineError`].
///
/// # Errors
/// As [`try_multi_faulty_apply_bits`].
pub fn try_multi_detects(
    network: &Network,
    fault: &MultiFault,
    input: &BitString,
) -> Result<bool, EngineError> {
    Ok(!try_multi_faulty_apply_bits(network, fault, input)?.is_sorted())
}

/// Index (0-based) of the first test in `tests` detecting the fault, or
/// `None` — the scalar reference for the bit-parallel early-exit sweep.
#[must_use]
pub fn multi_first_detection_index(
    network: &Network,
    fault: &MultiFault,
    tests: &[BitString],
) -> Option<usize> {
    tests.iter().position(|t| multi_detects(network, fault, t))
}

/// [`multi_first_detection_index`] generic over the vector packing — the
/// scalar reference the multi-word engines are graded against.
#[must_use]
pub fn multi_first_detection_index_packed<P: TestVector>(
    network: &Network,
    fault: &MultiFault,
    tests: &[P],
) -> Option<usize> {
    tests
        .iter()
        .position(|t| !P::multi_apply(network, fault, t).is_sorted())
}

/// `true` iff the fault is *redundant* (undetectable): the faulty network
/// still sorts all `2^n` binary inputs.  Scalar reference sweep; the
/// bit-parallel engine's shared-prefix batch sweep
/// ([`crate::bitsim::redundant_faults_multi_wide`]) must agree.
///
/// # Panics
/// Panics when the exhaustive `2^n` sweep is inadmissible (`n ≥ 32` —
/// the canonical [`error::ensure_sweepable`] bound, shared with the
/// bit-parallel engine so the two agree on which inputs are sweepable).
#[must_use]
pub fn is_multi_fault_redundant(network: &Network, fault: &MultiFault) -> bool {
    let n = network.lines();
    if let Err(e) = error::ensure_sweepable(n) {
        panic!("{e}");
    }
    BitString::all(n).all(|s| multi_faulty_apply_bits(network, fault, &s).is_sorted())
}

/// [`is_multi_fault_redundant`] with the size guard reported as a typed
/// [`EngineError`].
///
/// # Errors
/// [`EngineError::SweepTooLarge`] when `n ≥ 32` (the canonical
/// [`error::ensure_sweepable`] bound, shared with the bit-parallel
/// engine); [`EngineError::IndexOutOfRange`] when a lesion does not fit.
pub fn try_is_multi_fault_redundant(
    network: &Network,
    fault: &MultiFault,
) -> Result<bool, EngineError> {
    error::ensure_sweepable(network.lines())?;
    fault.check_in_range(network)?;
    Ok(is_multi_fault_redundant(network, fault))
}

/// `true` iff the fault is redundant *relative to* the given vector
/// family: no family member detects it.  The non-exhaustive counterpart
/// to [`is_multi_fault_redundant`] for networks past the sweepable
/// bound — sound (an exhaustively redundant fault is relatively
/// redundant against any family) but not complete (a fault the family
/// misses may still be detectable by vectors outside it).  Batched
/// layers that classify redundancy under
/// [`RedundancyMode::RelativeTo`](crate::coverage::RedundancyMode) must
/// route through this predicate so batched and cold verdicts agree.
#[must_use]
pub fn is_multi_fault_redundant_relative<P: TestVector>(
    network: &Network,
    fault: &MultiFault,
    family: &[P],
) -> bool {
    multi_first_detection_index_packed(network, fault, family).is_none()
}

/// A streaming enumeration of a fault space.
///
/// Implementations yield their faults lazily — [`FaultPairs`] in particular
/// never materialises its quadratic pair space — and deterministically (two
/// enumerations over the same network produce the same sequence, which is
/// what lets the engines index per-fault state by enumeration position).
pub trait FaultUniverse {
    /// Human-readable universe name for reports and tables.
    fn name(&self) -> String;

    /// Streams the universe's faults for `network`.
    fn iter<'a>(&'a self, network: &'a Network) -> Box<dyn Iterator<Item = MultiFault> + 'a>;

    /// Number of faults in the universe for `network`.
    #[must_use]
    fn len(&self, network: &Network) -> usize {
        self.iter(network).count()
    }

    /// [`len`](FaultUniverse::len) with overflow-checked arithmetic:
    /// implementations whose closed-form size computation can overflow
    /// on degenerate huge networks (quadratic pair spaces, `2·(n + 2m)`
    /// segment counts) return [`EngineError::TooLarge`] instead of a
    /// debug-only integer overflow.
    ///
    /// # Errors
    /// [`EngineError::TooLarge`] when the size exceeds `usize`.
    fn try_len(&self, network: &Network) -> Result<usize, EngineError> {
        Ok(self.len(network))
    }

    /// `true` when the universe is empty for `network`.
    #[must_use]
    fn is_empty(&self, network: &Network) -> bool {
        self.iter(network).next().is_none()
    }
}

/// The original single-fault model: every comparator × every applicable
/// [`FaultKind`], in the exact order of [`enumerate_faults`] — engines driven
/// through this universe are bit-identical to the pre-universe API.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SingleComparator;

impl FaultUniverse for SingleComparator {
    fn name(&self) -> String {
        "single-comparator".into()
    }

    fn iter<'a>(&'a self, network: &'a Network) -> Box<dyn Iterator<Item = MultiFault> + 'a> {
        Box::new(enumerate_faults(network).into_iter().map(MultiFault::from))
    }
}

/// Stuck-at-0/1 faults on every wire segment.
///
/// Line `l` is cut into segments by the comparators touching it: one input
/// segment (cut 0) plus one segment starting after each comparator that
/// writes the line.  Forcing anywhere inside a segment is behaviourally
/// identical (no comparator reads the line in between), so the universe
/// enumerates exactly one fault per segment per stuck value:
/// `2·(n + 2m)` faults for `n` lines and `m` comparators.
///
/// Enumeration order is by cut position (input segments first, then the
/// two output segments of each comparator in sequence order), each segment
/// contributing stuck-at-0 before stuck-at-1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StuckLine;

impl FaultUniverse for StuckLine {
    fn name(&self) -> String {
        "stuck-line".into()
    }

    fn iter<'a>(&'a self, network: &'a Network) -> Box<dyn Iterator<Item = MultiFault> + 'a> {
        let inputs = (0..network.lines()).map(|line| (line, 0usize));
        let after = network
            .comparators()
            .iter()
            .enumerate()
            .flat_map(|(k, c)| [(c.top(), k + 1), (c.bottom(), k + 1)]);
        Box::new(inputs.chain(after).flat_map(|(line, cut)| {
            [false, true]
                .map(|value| MultiFault::single(Lesion::Stuck(StuckAt { line, cut, value })))
        }))
    }

    fn len(&self, network: &Network) -> usize {
        self.try_len(network).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_len(&self, network: &Network) -> Result<usize, EngineError> {
        // 2·(n + 2m) segments, checked so a degenerate huge network is a
        // typed refusal rather than a debug-only overflow.
        network
            .size()
            .checked_mul(2)
            .and_then(|m2| network.lines().checked_add(m2))
            .and_then(|segments| segments.checked_mul(2))
            .ok_or(EngineError::TooLarge {
                what: "stuck-line universe",
            })
    }
}

/// All 2-subsets of co-realisable lesions of a base universe, enumerated
/// lazily (the pair space is quadratic in the base, so it is never
/// materialised by the universe itself).
///
/// Pairs whose members [conflict](Lesion::conflicts_with) — two faults of
/// the same comparator, or contradictory stuck values on one segment — are
/// skipped: they have no well-defined faulty network.  The base universe
/// must consist of single-lesion faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPairs<U>(pub U);

impl<U: FaultUniverse> FaultUniverse for FaultPairs<U> {
    fn name(&self) -> String {
        format!("pairs({})", self.0.name())
    }

    fn len(&self, network: &Network) -> usize {
        self.try_len(network).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_len(&self, network: &Network) -> Result<usize, EngineError> {
        // Counted without materialising the quadratic pair space: lesions
        // conflict exactly within their *conflict class* (all faults of one
        // comparator; the two stuck values of one segment), so the skipped
        // pairs are Σ C(class size, 2) over classes.  All arithmetic is
        // overflow-checked — the pair count is quadratic in the base, so a
        // huge (but enumerable) base universe can overflow `usize` here.
        #[derive(PartialEq, Eq, Hash)]
        enum ConflictClass {
            Comparator(usize),
            Segment(usize, usize),
        }
        let too_large = EngineError::TooLarge {
            what: "fault-pair universe",
        };
        let mut class_sizes: std::collections::HashMap<ConflictClass, usize> =
            std::collections::HashMap::new();
        let mut base = 0usize;
        for fault in self.0.iter(network) {
            let [lesion] = fault.lesions() else {
                panic!("FaultPairs requires a single-lesion base universe")
            };
            base += 1;
            let class = match lesion {
                Lesion::Comparator(f) => ConflictClass::Comparator(f.comparator),
                Lesion::Stuck(s) => ConflictClass::Segment(s.line, s.cut),
            };
            *class_sizes.entry(class).or_insert(0) += 1;
        }
        let choose2 =
            |s: usize| -> Option<usize> { s.checked_mul(s.saturating_sub(1)).map(|p| p / 2) };
        let mut conflicting = 0usize;
        for &s in class_sizes.values() {
            conflicting = conflicting
                .checked_add(choose2(s).ok_or(too_large.clone())?)
                .ok_or(too_large.clone())?;
        }
        choose2(base)
            .and_then(|pairs| pairs.checked_sub(conflicting))
            .ok_or(too_large)
    }

    fn iter<'a>(&'a self, network: &'a Network) -> Box<dyn Iterator<Item = MultiFault> + 'a> {
        // One base enumeration (linear), then the quadratic pair space is
        // streamed lazily from the collected lesions.
        let base: Vec<Lesion> = self
            .0
            .iter(network)
            .map(|fault| {
                let [lesion] = fault.lesions() else {
                    panic!("FaultPairs requires a single-lesion base universe")
                };
                *lesion
            })
            .collect();
        let keys = base.iter().map(Lesion::order_key).collect();
        Box::new(PairIter {
            base,
            keys,
            i: 0,
            j: 1,
        })
    }
}

/// Lazy 2-subset iterator over an owned lesion list, in `(i, j)` index
/// order with `i < j`, skipping conflicting members.  Timeline keys are
/// computed once per base lesion, so normalising each of the `O(|base|²)`
/// pairs into timeline order is a cached-key comparison.
struct PairIter {
    base: Vec<Lesion>,
    keys: Vec<(usize, u8, usize, usize)>,
    i: usize,
    j: usize,
}

impl Iterator for PairIter {
    type Item = MultiFault;

    fn next(&mut self) -> Option<MultiFault> {
        while self.i + 1 < self.base.len() {
            if self.j < self.base.len() {
                let a = self.base[self.i];
                let b = self.base[self.j];
                let ordered = if self.keys[self.j] < self.keys[self.i] {
                    (b, a)
                } else {
                    (a, b)
                };
                self.j += 1;
                if !a.conflicts_with(&b) {
                    return Some(MultiFault::pair_in_order(ordered.0, ordered.1));
                }
            } else {
                self.i += 1;
                self.j = self.i + 1;
            }
        }
        None
    }
}

/// The runtime-selectable universes the CLI, experiment E10 and the
/// benches expose, dispatching to the concrete implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StandardUniverse {
    /// [`SingleComparator`].
    SingleComparator,
    /// [`StuckLine`].
    StuckLine,
    /// [`FaultPairs`] over [`SingleComparator`].
    SingleComparatorPairs,
    /// [`FaultPairs`] over [`StuckLine`].
    StuckLinePairs,
}

impl StandardUniverse {
    /// Every standard universe, in presentation order.
    pub const ALL: [Self; 4] = [
        Self::SingleComparator,
        Self::StuckLine,
        Self::SingleComparatorPairs,
        Self::StuckLinePairs,
    ];

    /// Parses a CLI spelling (`single`, `stuck-line`, `pairs`,
    /// `stuck-pairs`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "single" | "single-comparator" => Some(Self::SingleComparator),
            "stuck" | "stuck-line" => Some(Self::StuckLine),
            "pairs" | "single-pairs" => Some(Self::SingleComparatorPairs),
            "stuck-pairs" | "stuck-line-pairs" => Some(Self::StuckLinePairs),
            _ => None,
        }
    }
}

impl StandardUniverse {
    /// The concrete universe this variant dispatches to.
    fn as_universe(self) -> &'static dyn FaultUniverse {
        static SINGLE: SingleComparator = SingleComparator;
        static STUCK: StuckLine = StuckLine;
        static SINGLE_PAIRS: FaultPairs<SingleComparator> = FaultPairs(SingleComparator);
        static STUCK_PAIRS: FaultPairs<StuckLine> = FaultPairs(StuckLine);
        match self {
            Self::SingleComparator => &SINGLE,
            Self::StuckLine => &STUCK,
            Self::SingleComparatorPairs => &SINGLE_PAIRS,
            Self::StuckLinePairs => &STUCK_PAIRS,
        }
    }
}

impl FaultUniverse for StandardUniverse {
    fn name(&self) -> String {
        self.as_universe().name()
    }

    fn iter<'a>(&'a self, network: &'a Network) -> Box<dyn Iterator<Item = MultiFault> + 'a> {
        self.as_universe().iter(network)
    }

    fn len(&self, network: &Network) -> usize {
        self.as_universe().len(network)
    }

    fn try_len(&self, network: &Network) -> Result<usize, EngineError> {
        self.as_universe().try_len(network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::faulty_apply_bits;
    use sortnet_network::builders::batcher::odd_even_merge_sort;

    #[test]
    fn single_comparator_universe_mirrors_enumerate_faults() {
        let net = odd_even_merge_sort(6);
        let legacy = enumerate_faults(&net);
        let universe: Vec<MultiFault> = SingleComparator.iter(&net).collect();
        assert_eq!(universe.len(), SingleComparator.len(&net));
        assert_eq!(universe.len(), legacy.len());
        for (mf, fault) in universe.iter().zip(&legacy) {
            assert_eq!(mf.lesions(), &[Lesion::Comparator(*fault)]);
            for input in BitString::all(6).take(16) {
                assert_eq!(
                    multi_faulty_apply_bits(&net, mf, &input),
                    faulty_apply_bits(&net, fault, &input)
                );
            }
        }
    }

    #[test]
    fn stuck_line_universe_has_one_fault_per_segment_per_value() {
        let net = odd_even_merge_sort(6);
        let universe: Vec<MultiFault> = StuckLine.iter(&net).collect();
        assert_eq!(universe.len(), 2 * (6 + 2 * net.size()));
        assert_eq!(universe.len(), StuckLine.len(&net));
        // Segments are distinct and every cut is a genuine segment start.
        let mut seen = std::collections::HashSet::new();
        for mf in &universe {
            let [Lesion::Stuck(s)] = mf.lesions() else {
                panic!("stuck-line universe must yield single stuck lesions")
            };
            assert!(seen.insert((s.line, s.cut, s.value)), "duplicate {mf}");
            if s.cut > 0 {
                assert!(net.comparators()[s.cut - 1].touches(s.line));
            }
        }
    }

    #[test]
    fn stuck_output_segment_forces_the_output_line() {
        let net = odd_even_merge_sort(4);
        let m = net.size();
        let fault = MultiFault::single(Lesion::Stuck(StuckAt {
            line: 0,
            cut: m,
            value: true,
        }));
        for input in BitString::all(4) {
            let out = multi_faulty_apply_bits(&net, &fault, &input);
            assert!(out.get(0), "input {input}");
        }
        // Detected by any input whose sorted form has ≥ 2 zeros.
        assert!(multi_detects(
            &net,
            &fault,
            &BitString::from_word(0b0100, 4)
        ));
    }

    #[test]
    fn stuck_input_segments_on_a_sorter_are_redundant() {
        // Forcing an *input* line of a correct sorter still yields a sorted
        // output — the whole early-segment class is undetectable by
        // output-order testing.
        let net = odd_even_merge_sort(5);
        for line in 0..5 {
            for value in [false, true] {
                let fault = MultiFault::single(Lesion::Stuck(StuckAt {
                    line,
                    cut: 0,
                    value,
                }));
                assert!(is_multi_fault_redundant(&net, &fault), "line {line}");
            }
        }
    }

    /// Shift-free reference for the lesion timeline over a `Vec<u8>` state
    /// (the same event-scan idea as the proptest oracle, kept local so the
    /// boundary tests need no dev-dependency).
    fn reference_multi_apply(
        network: &Network,
        fault: &MultiFault,
        input: &BitString,
    ) -> BitString {
        let mut v: Vec<u8> = input.to_vec();
        let lesions = fault.lesions();
        for cut in 0..=network.size() {
            for lesion in lesions {
                if let Lesion::Stuck(s) = lesion {
                    if s.cut == cut {
                        v[s.line] = u8::from(s.value);
                    }
                }
            }
            if cut == network.size() {
                break;
            }
            let c = network.comparators()[cut];
            let comparator_fault = lesions.iter().find_map(|l| match l {
                Lesion::Comparator(f) if f.comparator == cut => Some(f.kind),
                _ => None,
            });
            let (i, j) = (c.min_line(), c.max_line());
            let (bi, bj) = (v[i], v[j]);
            match comparator_fault {
                None => {
                    v[i] = bi.min(bj);
                    v[j] = bi.max(bj);
                }
                Some(FaultKind::StuckPass) => {}
                Some(FaultKind::StuckSwap) => {
                    v[i] = bj;
                    v[j] = bi;
                }
                Some(FaultKind::Inverted) => {
                    v[i] = bi.max(bj);
                    v[j] = bi.min(bj);
                }
                Some(FaultKind::Misrouted { new_bottom }) => {
                    let t = c.top();
                    if new_bottom != t {
                        let (bt, bb) = (v[t], v[new_bottom]);
                        v[t] = bt.min(bb);
                        v[new_bottom] = bt.max(bb);
                    }
                }
            }
        }
        BitString::from_bits(&v.iter().map(|&b| b == 1).collect::<Vec<bool>>())
    }

    #[test]
    fn stuck_and_pair_faults_at_the_word_boundary_are_exact() {
        // n ∈ {63, 64}: the stuck-at injection is `1u64 << line` with the
        // top lines at bits 62/63 — the word-boundary class this audit
        // covers.  Every stuck-line fault and a top-line pair must match
        // the shift-free reference.
        for n in [63usize, 64] {
            let net = Network::from_pairs(n, &[(0, n - 1), (n - 2, n - 1)]);
            let inputs: Vec<BitString> = [
                0u64,
                u64::MAX,
                1u64 << (n - 1),
                u64::MAX ^ (1u64 << (n - 1)),
                0xAAAA_AAAA_AAAA_AAAA,
            ]
            .into_iter()
            .map(|w| BitString::from_word(w, n))
            .collect();
            for mf in StuckLine.iter(&net) {
                for input in &inputs {
                    assert_eq!(
                        multi_faulty_apply_bits(&net, &mf, input),
                        reference_multi_apply(&net, &mf, input),
                        "n={n} fault {mf} input {input}"
                    );
                }
            }
            // A pair with both lesions on the top line: stuck-1 at the
            // input, stuck-swap on the comparator reading it.
            let pair = MultiFault::pair(
                Lesion::Stuck(StuckAt {
                    line: n - 1,
                    cut: 0,
                    value: true,
                }),
                Lesion::Comparator(Fault {
                    comparator: 1,
                    kind: FaultKind::StuckSwap,
                }),
            );
            for input in &inputs {
                assert_eq!(
                    multi_faulty_apply_bits(&net, &pair, input),
                    reference_multi_apply(&net, &pair, input),
                    "n={n} input {input}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "n <= 64")]
    fn oversized_networks_are_rejected_before_any_shift() {
        let net = Network::from_pairs(65, &[(0, 64)]);
        let fault = MultiFault::single(Lesion::Stuck(StuckAt {
            line: 64,
            cut: 0,
            value: true,
        }));
        let _ = multi_faulty_apply_bits(&net, &fault, &BitString::zeros(64));
    }

    #[test]
    fn pairs_enumerate_all_nonconflicting_2_subsets_lazily() {
        let net = odd_even_merge_sort(4);
        let base: Vec<MultiFault> = SingleComparator.iter(&net).collect();
        let pairs: Vec<MultiFault> = FaultPairs(SingleComparator).iter(&net).collect();
        let mut expected = 0usize;
        for i in 0..base.len() {
            for j in i + 1..base.len() {
                if !base[i].lesions()[0].conflicts_with(&base[j].lesions()[0]) {
                    expected += 1;
                }
            }
        }
        assert_eq!(pairs.len(), expected);
        assert_eq!(pairs.len(), FaultPairs(SingleComparator).len(&net));
        for p in &pairs {
            assert!(p.is_pair());
            let [a, b] = p.lesions() else { unreachable!() };
            assert!(a.order_key() <= b.order_key(), "{p} out of timeline order");
            assert!(!a.conflicts_with(b));
        }
        // The runtime dispatcher streams the identical sequence.
        let dispatched: Vec<MultiFault> =
            StandardUniverse::SingleComparatorPairs.iter(&net).collect();
        assert_eq!(dispatched, pairs);
    }

    #[test]
    fn conflicting_lesions_are_rejected_and_skipped() {
        let a = Lesion::Stuck(StuckAt {
            line: 1,
            cut: 2,
            value: false,
        });
        let b = Lesion::Stuck(StuckAt {
            line: 1,
            cut: 2,
            value: true,
        });
        assert!(a.conflicts_with(&b));
        let c = Lesion::Comparator(Fault {
            comparator: 0,
            kind: FaultKind::StuckPass,
        });
        let d = Lesion::Comparator(Fault {
            comparator: 0,
            kind: FaultKind::Inverted,
        });
        assert!(c.conflicts_with(&d));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    #[should_panic(expected = "conflicting lesions")]
    fn conflicting_pair_construction_panics() {
        let a = Lesion::Stuck(StuckAt {
            line: 1,
            cut: 2,
            value: false,
        });
        let b = Lesion::Stuck(StuckAt {
            line: 1,
            cut: 2,
            value: true,
        });
        let _ = MultiFault::pair(a, b);
    }

    #[test]
    fn pair_timeline_applies_both_lesions() {
        // Stuck the input of line 0 at 1 and stuck-pass the first
        // comparator of a 2-line sorter: the forced 1 reaches the output
        // unexchanged.
        let net = Network::from_pairs(2, &[(0, 1)]);
        let pair = MultiFault::pair(
            Lesion::Stuck(StuckAt {
                line: 0,
                cut: 0,
                value: true,
            }),
            Lesion::Comparator(Fault {
                comparator: 0,
                kind: FaultKind::StuckPass,
            }),
        );
        let out = multi_faulty_apply_bits(&net, &pair, &BitString::from_word(0b00, 2));
        assert_eq!(out, BitString::from_word(0b01, 2));
        assert!(multi_detects(&net, &pair, &BitString::from_word(0b00, 2)));
    }

    #[test]
    fn pair_construction_is_canonical_in_either_argument_order() {
        // Equal timeline positions must still canonicalise: two stuck
        // segments at the same cut, and a comparator fault tied with a
        // stuck injection, compare equal (and hash equal) however the pair
        // was built.
        let a = Lesion::Stuck(StuckAt {
            line: 0,
            cut: 2,
            value: true,
        });
        let b = Lesion::Stuck(StuckAt {
            line: 3,
            cut: 2,
            value: false,
        });
        assert_eq!(MultiFault::pair(a, b), MultiFault::pair(b, a));
        let c = Lesion::Comparator(Fault {
            comparator: 2,
            kind: FaultKind::Inverted,
        });
        assert_eq!(MultiFault::pair(a, c), MultiFault::pair(c, a));
        let mut set = std::collections::HashSet::new();
        set.insert(MultiFault::pair(a, b));
        assert!(set.contains(&MultiFault::pair(b, a)));
    }

    #[test]
    fn display_names_are_compact_and_distinct() {
        let s = MultiFault::single(Lesion::Stuck(StuckAt {
            line: 2,
            cut: 5,
            value: true,
        }));
        assert_eq!(s.to_string(), "stuck-1@l3.cut5");
        let c = MultiFault::single(Lesion::Comparator(Fault {
            comparator: 3,
            kind: FaultKind::Inverted,
        }));
        assert_eq!(c.to_string(), "inv@c3");
        let p = MultiFault::pair(
            Lesion::Comparator(Fault {
                comparator: 3,
                kind: FaultKind::Inverted,
            }),
            Lesion::Stuck(StuckAt {
                line: 0,
                cut: 1,
                value: false,
            }),
        );
        assert_eq!(p.to_string(), "{stuck-0@l1.cut1, inv@c3}");
    }

    #[test]
    fn universe_names_and_parsing_round_trip() {
        for u in StandardUniverse::ALL {
            let spelled = match u {
                StandardUniverse::SingleComparator => "single",
                StandardUniverse::StuckLine => "stuck-line",
                StandardUniverse::SingleComparatorPairs => "pairs",
                StandardUniverse::StuckLinePairs => "stuck-pairs",
            };
            assert_eq!(StandardUniverse::parse(spelled), Some(u));
        }
        assert_eq!(StandardUniverse::parse("bogus"), None);
        assert_eq!(
            FaultPairs(StuckLine).name(),
            StandardUniverse::StuckLinePairs.name()
        );
    }
}
