//! Single-fault models for comparator networks.
//!
//! The models mirror the classical stuck-at/bridging abstractions of VLSI
//! test generation, translated to the comparator-network level:
//!
//! * [`FaultKind::StuckPass`] — the comparator never exchanges its inputs
//!   (a broken exchange path; equivalent to deleting the comparator);
//! * [`FaultKind::StuckSwap`] — the comparator always exchanges its inputs
//!   regardless of their order (a stuck control line);
//! * [`FaultKind::Inverted`] — the comparator routes the maximum to its
//!   minimum output and vice versa (a swapped output wiring);
//! * [`FaultKind::Misrouted`] — one endpoint of the comparator is connected
//!   to a neighbouring line (an off-by-one routing defect).

use serde::{Deserialize, Serialize};

use sortnet_network::Network;

/// The kind of a single-comparator fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The comparator never exchanges (acts as two plain wires).
    StuckPass,
    /// The comparator always exchanges.
    StuckSwap,
    /// The comparator exchanges exactly when it should not (max to the top).
    Inverted,
    /// The comparator's bottom endpoint is moved to the given line.
    Misrouted {
        /// Replacement line for the comparator's bottom endpoint.
        new_bottom: usize,
    },
}

/// A single fault: a kind applied to one comparator of a network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// Index of the affected comparator in the network's sequence.
    pub comparator: usize,
    /// What goes wrong with it.
    pub kind: FaultKind,
}

/// Enumerates the complete single-fault universe for a network: every
/// comparator combined with every applicable fault kind.
///
/// Misrouting faults move the bottom endpoint to each adjacent line that
/// yields a valid (distinct-endpoint) comparator.
#[must_use]
pub fn enumerate_faults(network: &Network) -> Vec<Fault> {
    let n = network.lines();
    let mut out = Vec::new();
    for (idx, c) in network.comparators().iter().enumerate() {
        out.push(Fault {
            comparator: idx,
            kind: FaultKind::StuckPass,
        });
        out.push(Fault {
            comparator: idx,
            kind: FaultKind::StuckSwap,
        });
        out.push(Fault {
            comparator: idx,
            kind: FaultKind::Inverted,
        });
        for delta in [-1isize, 1] {
            let new_bottom = c.bottom() as isize + delta;
            if new_bottom >= 0 && (new_bottom as usize) < n && new_bottom as usize != c.top() {
                out.push(Fault {
                    comparator: idx,
                    kind: FaultKind::Misrouted {
                        new_bottom: new_bottom as usize,
                    },
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortnet_network::builders::batcher::odd_even_merge_sort;

    #[test]
    fn fault_universe_size_is_linear_in_network_size() {
        let net = odd_even_merge_sort(8);
        let faults = enumerate_faults(&net);
        // 3 kinds per comparator plus 1–2 misroutings.
        assert!(faults.len() >= 4 * net.size());
        assert!(faults.len() <= 5 * net.size());
    }

    #[test]
    fn every_fault_points_at_a_valid_comparator() {
        let net = odd_even_merge_sort(6);
        for f in enumerate_faults(&net) {
            assert!(f.comparator < net.size());
            if let FaultKind::Misrouted { new_bottom } = f.kind {
                assert!(new_bottom < net.lines());
                assert_ne!(new_bottom, net.comparators()[f.comparator].top());
            }
        }
    }

    #[test]
    fn empty_network_has_no_faults() {
        assert!(enumerate_faults(&Network::empty(5)).is_empty());
    }
}
