//! Fault-coverage analysis: how well a sequence of test inputs detects a
//! fault universe of a network (experiment E10).
//!
//! Coverage is universe-generic: [`coverage_of_universe_with`] grades a
//! test sequence against any [`FaultUniverse`] (single-comparator faults,
//! stuck-at lines, fault pairs), on either the scalar oracle engine or the
//! bit-parallel engine at a chosen lane width.  The historical
//! single-comparator entry points ([`coverage_of_tests`],
//! [`coverage_of_tests_with`]) are thin wrappers over the
//! [`SingleComparator`] universe.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use sortnet_combinat::BitString;
use sortnet_network::budget::{BudgetMeter, Budgeted, SweepBudget};
use sortnet_network::error::{self, EngineError};
use sortnet_network::lanes::{Backend, LaneWidth, PackedFamily, DEFAULT_WIDTH};
use sortnet_network::Network;

use crate::bitsim::{
    first_detections_multi_metered, first_detections_multi_packed_on,
    redundant_faults_multi_metered, redundant_faults_multi_wide,
};
use crate::universe::{
    is_multi_fault_redundant, is_multi_fault_redundant_relative,
    multi_first_detection_index_packed, FaultUniverse, MultiFault, SingleComparator, TestVector,
};

/// Which simulation engine evaluates the fault universe.
///
/// All engines produce bit-for-bit equal reports wherever they run (the
/// proptest suite, the differential-universe suite and experiment E10
/// cross-check them; the bit-parallel report is independent of the lane
/// width); [`FaultSimEngine::Scalar`] is retained as the oracle the
/// bit-parallel paths are validated against.  All engines share one
/// redundancy-sweep bound: with `check_redundancy` both the scalar
/// per-fault sweep ([`is_multi_fault_redundant`]) and the bit-parallel
/// batch sweep ([`redundant_faults_multi_wide`]) guard through the
/// canonical `ensure_sweepable` (`n < 32`) with one pinned error text,
/// so the engines agree on exactly which inputs are sweepable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FaultSimEngine {
    /// One fault × one test per call
    /// ([`crate::simulate`] / [`crate::universe`]).
    Scalar,
    /// `W × 64` tests per pass with shared-prefix forking
    /// ([`crate::bitsim`]), at the default lane width
    /// ([`DEFAULT_WIDTH`]`× 64 = 256` vectors per fork).
    #[default]
    BitParallel,
    /// Bit-parallel with an explicit lane width — `LaneWidth::W1`
    /// reproduces the original single-word engine exactly.
    BitParallelWide(LaneWidth),
}

/// How undetected faults are classified by a coverage grade.
///
/// The historical `check_redundancy: bool` flag survives on every
/// `BitString`-typed entry point (and converts via [`From<bool>`]:
/// `true` is [`RedundancyMode::Exhaustive`], `false` is
/// [`RedundancyMode::Skip`]).  The packing-generic entry points take the
/// mode directly, because past the 64-line wall the exhaustive `2^n`
/// sweep is never admissible and the honest alternative is *relative*
/// classification against a named structured family.
///
/// Admissibility is a typed, mode-specific check
/// ([`RedundancyMode::ensure_admissible`]) applied up front by every
/// entry point — refusals are no longer sweep-size accidents deep inside
/// the redundancy phase:
///
/// | mode | classifies a missed fault as | admissible when |
/// |---|---|---|
/// | [`Exhaustive`](RedundancyMode::Exhaustive) | *proven* undetectable (`2^n` sweep) | `n < 32` (`ensure_sweepable`) |
/// | [`RelativeTo`](RedundancyMode::RelativeTo)`(family)` | undetected by every vector of `family` | family size fits a `u64` |
/// | [`Skip`](RedundancyMode::Skip) | missed (conservative) | always |
///
/// Relative classification is *sound but not exhaustive*: a fault the
/// family misses may still be detectable by some vector outside it, so
/// `undetectable_faults` under `RelativeTo` means "undetectable by the
/// named family", never "undetectable outright".  Every exhaustively
/// redundant fault is also relatively redundant (no vector at all
/// detects it), so the relative classification only ever moves faults
/// from `missed` to `redundant_faults`, and
/// [`CoverageReport::redundancy`] names which reading produced the
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RedundancyMode {
    /// Classify every missed fault by the exhaustive `2^n` sweep —
    /// refused (typed) when `n ≥ 32`.  The default, matching the legacy
    /// `check_redundancy: true` reading.
    #[default]
    Exhaustive,
    /// Classify every missed fault against a named [`PackedFamily`]:
    /// redundant *relative to the family* when no family vector detects
    /// it.  The only classification admissible past the wall.
    RelativeTo(PackedFamily),
    /// Leave missed faults unclassified (they count as `missed`).
    Skip,
}

impl RedundancyMode {
    /// The provenance string recorded in
    /// [`CoverageReport::redundancy`]: `"exhaustive"`, `"skipped"`, or
    /// `"relative:<family>"` (e.g. `"relative:sorted-strings"`).
    #[must_use]
    pub fn provenance(&self) -> String {
        match self {
            Self::Exhaustive => "exhaustive".to_string(),
            Self::RelativeTo(family) => format!("relative:{}", family.name()),
            Self::Skip => "skipped".to_string(),
        }
    }

    /// Typed admissibility check for grading an `lines`-line network
    /// under this mode — the table above.
    ///
    /// # Errors
    /// [`EngineError::SweepTooLarge`] for an exhaustive sweep at
    /// `n ≥ 32` (the canonical `ensure_sweepable` bound with its pinned
    /// text), [`EngineError::TooLarge`] for a relative family whose size
    /// overflows.
    pub fn ensure_admissible(&self, lines: usize) -> Result<(), EngineError> {
        match self {
            Self::Exhaustive => error::ensure_sweepable(lines),
            Self::RelativeTo(family) => family.try_len(lines).map(|_| ()),
            Self::Skip => Ok(()),
        }
    }
}

impl From<bool> for RedundancyMode {
    fn from(check_redundancy: bool) -> Self {
        if check_redundancy {
            Self::Exhaustive
        } else {
            Self::Skip
        }
    }
}

/// Result of running a test sequence against a fault universe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Total number of faults considered.
    pub total_faults: usize,
    /// Faults that no input whatsoever can detect (the faulty network still
    /// sorts); excluded from the coverage denominator.
    pub redundant_faults: usize,
    /// Detectable faults caught by at least one test in the sequence.
    pub detected: usize,
    /// Detectable faults missed by the whole sequence.
    pub missed: usize,
    /// Coverage ratio `detected / (detected + missed)`.
    ///
    /// Pinned edge-case semantics: the denominator counts the faults the
    /// sequence was *obliged* to catch, so `coverage` is `1.0` **only**
    /// when that obligation is empty — an empty universe, or one whose
    /// every fault was proven redundant (`check_redundancy`).  An empty
    /// test sequence over a universe with detectable (or merely
    /// not-shown-redundant) faults reads `0.0`, never `1.0`: undetected
    /// faults land in `missed` (the default) unless a redundancy sweep
    /// proves them undetectable.  [`CoverageReport::is_complete`] is the
    /// boolean form of the same criterion.
    pub coverage: f64,
    /// Mean (over detected faults) of the 1-based index of the first test
    /// that detects the fault — the "tests until detection" cost.
    pub mean_first_detection: f64,
    /// Worst-case first-detection index over detected faults (1-based).
    pub max_first_detection: usize,
    /// The faults counted in `missed`, in universe-enumeration order: the
    /// detectable (or, without `check_redundancy`, not-shown-redundant)
    /// faults the whole sequence failed to catch.
    pub missed_faults: Vec<MultiFault>,
    /// The provably undetectable faults counted in `redundant_faults`, in
    /// universe-enumeration order; empty unless `check_redundancy` ran.
    pub undetectable_faults: Vec<MultiFault>,
    /// Provenance of the redundancy classification —
    /// [`RedundancyMode::provenance`] of the mode the grade ran under
    /// (`"exhaustive"`, `"skipped"`, or `"relative:<family>"`), so a
    /// report never silently passes a relative classification off as an
    /// exhaustive one.
    pub redundancy: String,
}

impl CoverageReport {
    /// `true` when the sequence caught every fault it was obliged to:
    /// nothing is `missed`.  Vacuously true for an empty or fully-redundant
    /// universe (including with an empty test sequence — there was nothing
    /// detectable to miss); `false` whenever any detectable (or
    /// not-shown-redundant) fault went uncaught.
    ///
    /// This is the completeness criterion the minimal-test-set augmentation
    /// search (`sortnet-testsets::augment`, which consumes
    /// [`CoverageReport::missed_faults`] through its `SuggestAugmentation`
    /// extension trait — the dependency points that way, so the hook cannot
    /// live here) drives to.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.missed == 0
    }
}

/// The bit-parallel per-fault results at lane width `W`: first-detection
/// indices with early exit, plus one redundancy pass over exactly the
/// faults the whole sequence missed — the shared-prefix batch `2^n`
/// sweep under [`RedundancyMode::Exhaustive`], or a second
/// first-detection sweep against the materialised family under
/// [`RedundancyMode::RelativeTo`] (same engine, same width).
fn bitparallel_results<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    mode: RedundancyMode,
) -> (Vec<Option<usize>>, Vec<bool>) {
    let first = first_detections_multi_packed_on::<W, P>(network, faults, tests, Backend::active());
    let mut redundant = vec![false; faults.len()];
    if mode != RedundancyMode::Skip {
        let missed_idx: Vec<usize> = (0..faults.len()).filter(|&i| first[i].is_none()).collect();
        let missed: Vec<MultiFault> = missed_idx.iter().map(|&i| faults[i]).collect();
        match mode {
            RedundancyMode::Exhaustive => {
                for (&i, flag) in missed_idx
                    .iter()
                    .zip(redundant_faults_multi_wide::<W>(network, &missed))
                {
                    redundant[i] = flag;
                }
            }
            RedundancyMode::RelativeTo(family) => {
                let fam: Vec<P> = family.collect(network.lines());
                let verdicts = first_detections_multi_packed_on::<W, P>(
                    network,
                    &missed,
                    &fam,
                    Backend::active(),
                );
                for (&i, verdict) in missed_idx.iter().zip(verdicts) {
                    redundant[i] = verdict.is_none();
                }
            }
            RedundancyMode::Skip => unreachable!(),
        }
    }
    (first, redundant)
}

/// Runs every fault of the `universe` against the test sequence `tests`
/// and summarises detection, using the default
/// [`FaultSimEngine::BitParallel`] engine.
///
/// Set `check_redundancy` to `true` to classify undetected faults as
/// redundant (needs an exhaustive sweep, so it is only advisable for
/// `n ≲ 24`); with `false`, undetected faults are counted as missed.
#[deprecated(
    since = "0.1.0",
    note = "panics on refused sweeps; use `try_coverage_of_universe` and match the typed error"
)]
#[allow(deprecated)] // the wrappers delegate to each other until stage 3 reclaims them
#[must_use]
pub fn coverage_of_universe(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[BitString],
    check_redundancy: bool,
) -> CoverageReport {
    coverage_of_universe_with(
        network,
        universe,
        tests,
        check_redundancy,
        FaultSimEngine::default(),
    )
}

/// [`coverage_of_universe`] with an explicit engine choice — the scalar
/// path is the cross-check oracle for the bit-parallel one.
///
/// The universe is enumerated (lazily) exactly once; the report's fault
/// lists are in enumeration order for every engine, so reports from
/// different engines are comparable with `==`.
#[deprecated(
    since = "0.1.0",
    note = "panics on refused sweeps; use `try_coverage_of_universe_with` and match the typed error"
)]
#[must_use]
pub fn coverage_of_universe_with(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[BitString],
    check_redundancy: bool,
    engine: FaultSimEngine,
) -> CoverageReport {
    // Exact-size reservation: `len` is cheap for every universe (the pair
    // universes count conflict classes instead of enumerating), and the
    // quadratic universes are large enough for collect-and-double to show
    // up in the sweep benches.
    let mut faults: Vec<MultiFault> = Vec::with_capacity(universe.len(network));
    faults.extend(universe.iter(network));
    coverage_of_multifaults_with(network, &faults, tests, check_redundancy, engine)
}

/// [`coverage_of_universe_with`] over an explicit, already-enumerated fault
/// slice.
#[must_use]
pub fn coverage_of_multifaults_with(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    check_redundancy: bool,
    engine: FaultSimEngine,
) -> CoverageReport {
    coverage_of_multifaults_packed_with::<BitString>(
        network,
        faults,
        tests,
        check_redundancy,
        engine,
    )
}

/// The packing-generic coverage core: [`coverage_of_multifaults_with`]
/// over any [`TestVector`] representation.  `P = BitString` is the
/// monomorphised `n ≤ 64` path the named entry points delegate to;
/// `P = ChannelVec` grades networks past the 64-line wall (where the
/// exhaustive redundancy sweep is inadmissible and
/// [`RedundancyMode::RelativeTo`] a named packed family is the honest
/// classification).  The mode parameter accepts the legacy
/// `check_redundancy` bool via `impl Into<RedundancyMode>`.
///
/// # Panics
/// When the mode is inadmissible for this network
/// ([`RedundancyMode::ensure_admissible`] — e.g. an exhaustive sweep at
/// `n ≥ 32`), the call panics immediately at this boundary with the
/// pinned typed-error text: callers never pay a full first-detection
/// sweep only to be refused deep inside the redundancy phase.  The
/// typed siblings ([`try_coverage_of_universe_packed_with`]) return
/// the same refusal as an [`EngineError`].
#[must_use]
pub fn coverage_of_multifaults_packed_with<P: TestVector + Sync>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    mode: impl Into<RedundancyMode>,
    engine: FaultSimEngine,
) -> CoverageReport {
    let mode = mode.into();
    if let Err(e) = mode.ensure_admissible(network.lines()) {
        panic!("{e}");
    }
    let (first, redundant): (Vec<Option<usize>>, Vec<bool>) = match engine {
        FaultSimEngine::Scalar => {
            let relative: Option<Vec<P>> = match mode {
                RedundancyMode::RelativeTo(family) => Some(family.collect(network.lines())),
                _ => None,
            };
            faults
                .par_iter()
                .map(|fault: &MultiFault| {
                    let first = multi_first_detection_index_packed(network, fault, tests);
                    let redundant = first.is_none()
                        && match (&relative, mode) {
                            (Some(fam), _) => {
                                is_multi_fault_redundant_relative(network, fault, fam)
                            }
                            (None, RedundancyMode::Exhaustive) => {
                                is_multi_fault_redundant(network, fault)
                            }
                            (None, _) => false,
                        };
                    (first, redundant)
                })
                .collect::<Vec<(Option<usize>, bool)>>()
                .into_iter()
                .unzip()
        }
        FaultSimEngine::BitParallel => {
            bitparallel_results::<DEFAULT_WIDTH, P>(network, faults, tests, mode)
        }
        FaultSimEngine::BitParallelWide(width) => match width {
            LaneWidth::W1 => bitparallel_results::<1, P>(network, faults, tests, mode),
            LaneWidth::W2 => bitparallel_results::<2, P>(network, faults, tests, mode),
            LaneWidth::W4 => bitparallel_results::<4, P>(network, faults, tests, mode),
            LaneWidth::W8 => bitparallel_results::<8, P>(network, faults, tests, mode),
            LaneWidth::W16 => bitparallel_results::<16, P>(network, faults, tests, mode),
        },
    };
    summarise_verdicts(faults, &first, &redundant, mode)
}

/// [`coverage_of_universe_with`] over any [`TestVector`] packing: the
/// `n > 64` entry (take `ChannelVec` tests).  The universe is enumerated
/// once, exactly like the `BitString` path.
#[must_use]
pub fn coverage_of_universe_packed_with<P: TestVector + Sync>(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[P],
    mode: impl Into<RedundancyMode>,
    engine: FaultSimEngine,
) -> CoverageReport {
    let mut faults: Vec<MultiFault> = Vec::with_capacity(universe.len(network));
    faults.extend(universe.iter(network));
    coverage_of_multifaults_packed_with(network, &faults, tests, mode.into(), engine)
}

/// Folds per-fault verdicts into a [`CoverageReport`]: `first[i]` is the
/// fault's first-detection index, `redundant[i]` whether it was *proven*
/// undetectable.  A `None` detection that is not proven redundant counts
/// as missed — which is also how budgeted grades stay conservative:
/// undecided faults land in `missed`, never in `detected` or
/// `redundant_faults`.
///
/// Public so external batching layers (the oracle service) that derive
/// per-query verdicts from a shared [`DetectionMatrix`] pass fold them
/// through *this* function and stay bit-identical to the cold path —
/// reimplementing the fold is how summary statistics drift.
///
/// [`DetectionMatrix`]: crate::bitsim::DetectionMatrix
///
/// The `mode` the verdicts were derived under is recorded verbatim as
/// the report's [`redundancy`](CoverageReport::redundancy) provenance —
/// batching layers must pass the mode they actually classified with.
///
/// # Panics
/// Panics if `first` and `redundant` do not both have one entry per
/// fault.
#[must_use]
pub fn summarise_verdicts(
    faults: &[MultiFault],
    first: &[Option<usize>],
    redundant: &[bool],
    mode: impl Into<RedundancyMode>,
) -> CoverageReport {
    assert_eq!(first.len(), faults.len(), "one first-detection per fault");
    assert_eq!(
        redundant.len(),
        faults.len(),
        "one redundancy bit per fault"
    );
    // One pass folds the per-fault verdicts into every summary statistic —
    // the multi-pass zip/collect chain this replaces was a visible slice of
    // quadratic pair-universe sweeps.
    let total_faults = faults.len();
    let mut undetectable_faults: Vec<MultiFault> = Vec::new();
    let mut missed_faults: Vec<MultiFault> = Vec::new();
    let mut detected = 0usize;
    let mut first_sum = 0.0f64;
    let mut max_first_detection = 0usize;
    for ((f, r), fault) in first.iter().zip(redundant).zip(faults) {
        match f {
            Some(i) => {
                detected += 1;
                first_sum += (i + 1) as f64;
                max_first_detection = max_first_detection.max(i + 1);
            }
            None if *r => undetectable_faults.push(*fault),
            None => missed_faults.push(*fault),
        }
    }
    let redundant_faults = undetectable_faults.len();
    let missed = missed_faults.len();
    debug_assert_eq!(detected + missed + redundant_faults, total_faults);
    let detectable = detected + missed;
    let coverage = if detectable == 0 {
        1.0
    } else {
        detected as f64 / detectable as f64
    };
    let mean_first_detection = if detected == 0 {
        0.0
    } else {
        first_sum / detected as f64
    };
    CoverageReport {
        total_faults,
        redundant_faults,
        detected,
        missed,
        coverage,
        mean_first_detection,
        max_first_detection,
        missed_faults,
        undetectable_faults,
        redundancy: mode.into().provenance(),
    }
}

/// Validates a coverage grade up front and enumerates the universe.
///
/// Typed refusals: the network must fit the chosen packing, every test
/// must have the network's length, the universe must be non-empty for
/// this network (grading nothing is a caller bug —
/// [`EngineError::EmptyUniverse`]; note the *panicking* API instead
/// reports an empty universe as vacuously complete), its size
/// computation must not overflow, and the redundancy mode must be
/// admissible for this network
/// ([`RedundancyMode::ensure_admissible`] — for
/// [`RedundancyMode::Exhaustive`] the `2^n` sweep bound `n < 32`, the
/// engine-independent `ensure_sweepable`), even if it later turns out
/// no fault is missed.
/// Public for external batching layers (the oracle service): a batched
/// grade that shares one detection matrix across queries must admit or
/// refuse each query by *these* rules — the same ones the cold entry
/// points apply — or batched and cold answers diverge on the error
/// surface.
///
/// # Errors
/// As listed above.
pub fn check_coverage_inputs<P: TestVector>(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[P],
    mode: impl Into<RedundancyMode>,
) -> Result<Vec<MultiFault>, EngineError> {
    P::ensure_packable(network.lines())?;
    for test in tests {
        if test.len() != network.lines() {
            return Err(EngineError::InputLengthMismatch {
                expected: network.lines(),
                actual: test.len(),
            });
        }
    }
    let len = universe.try_len(network)?;
    if len == 0 {
        return Err(EngineError::EmptyUniverse);
    }
    // One canonical bound per mode for every engine: the scalar per-fault
    // sweep and the bit-parallel batch sweep agree on which inputs are
    // sweepable (and refuse with the same pinned text).
    mode.into().ensure_admissible(network.lines())?;
    let mut faults = Vec::with_capacity(len);
    faults.extend(universe.iter(network));
    Ok(faults)
}

/// [`coverage_of_universe_with`] with typed validation instead of
/// panics.  The contract is deliberately stricter than the panicking
/// path: empty universes and redundancy sweeps that *could* be refused
/// are rejected up front.
pub fn try_coverage_of_universe_with(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[BitString],
    check_redundancy: bool,
    engine: FaultSimEngine,
) -> Result<CoverageReport, EngineError> {
    try_coverage_of_universe_packed_with::<BitString>(
        network,
        universe,
        tests,
        check_redundancy,
        engine,
    )
}

/// [`try_coverage_of_universe_with`] over any [`TestVector`] packing.
/// `P`'s own packability guard replaces the blanket `n ≤ 64` refusal:
/// `ChannelVec` grades are admitted up to the
/// [channel-line cap](sortnet_network::error::max_channel_lines), though
/// [`RedundancyMode::Exhaustive`] keeps the exhaustive-sweep bound —
/// past the wall, classify with [`RedundancyMode::RelativeTo`] a named
/// packed family instead.
pub fn try_coverage_of_universe_packed_with<P: TestVector + Sync>(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[P],
    mode: impl Into<RedundancyMode>,
    engine: FaultSimEngine,
) -> Result<CoverageReport, EngineError> {
    let mode = mode.into();
    let faults = check_coverage_inputs(network, universe, tests, mode)?;
    Ok(coverage_of_multifaults_packed_with(
        network, &faults, tests, mode, engine,
    ))
}

/// [`try_coverage_of_universe_with`] on the default engine.
pub fn try_coverage_of_universe(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[BitString],
    check_redundancy: bool,
) -> Result<CoverageReport, EngineError> {
    try_coverage_of_universe_with(
        network,
        universe,
        tests,
        check_redundancy,
        FaultSimEngine::default(),
    )
}

/// [`bitparallel_results`] threading one shared [`BudgetMeter`] through
/// both sweep phases, so the budget bounds the whole grade.  Undecided
/// faults keep `first = None, redundant = false` and therefore fold
/// into `missed` — the conservative reading.  Under
/// [`RedundancyMode::RelativeTo`] the relative verdicts commit as a
/// whole phase: a `None` from the metered family sweep is ambiguous
/// between "no family vector detects it" and "budget ran out", so if
/// the meter tripped during (or before) the family sweep every relative
/// verdict is dropped and the affected faults stay conservatively
/// missed.
fn bitparallel_results_metered<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    mode: RedundancyMode,
    meter: &mut BudgetMeter,
) -> (Vec<Option<usize>>, Vec<bool>) {
    let backend = Backend::active();
    let first = first_detections_multi_metered::<W, P>(network, faults, tests, backend, meter);
    let mut redundant = vec![false; faults.len()];
    if mode != RedundancyMode::Skip {
        let missed_idx: Vec<usize> = (0..faults.len()).filter(|&i| first[i].is_none()).collect();
        let missed: Vec<MultiFault> = missed_idx.iter().map(|&i| faults[i]).collect();
        match mode {
            RedundancyMode::Exhaustive => {
                let verdicts =
                    redundant_faults_multi_metered::<W>(network, &missed, backend, meter);
                for (&i, verdict) in missed_idx.iter().zip(verdicts) {
                    redundant[i] = verdict == Some(true);
                }
            }
            RedundancyMode::RelativeTo(family) => {
                let fam: Vec<P> = family.collect(network.lines());
                let verdicts =
                    first_detections_multi_metered::<W, P>(network, &missed, &fam, backend, meter);
                if meter.tripped().is_none() {
                    for (&i, verdict) in missed_idx.iter().zip(verdicts) {
                        redundant[i] = verdict.is_none();
                    }
                }
            }
            RedundancyMode::Skip => unreachable!(),
        }
    }
    (first, redundant)
}

/// One worker's slice of a pooled budgeted scalar grade, joined back
/// into the caller's verdict arrays and meter by
/// [`scalar_results_pooled`].
struct ScalarChunkOutcome {
    /// Index of the chunk's first fault in the undivided fault list.
    start: usize,
    first: Vec<Option<usize>>,
    redundant: Vec<bool>,
    progress: sortnet_network::budget::SweepProgress,
    tripped: Option<sortnet_network::budget::BudgetReason>,
    worker: std::thread::ThreadId,
}

/// The scalar engine's budgeted grade, fanned out on the rayon-shim
/// pool: the fault list is split into one contiguous chunk per worker,
/// each chunk runs the sequential metered scan under its own
/// [`BudgetMeter`] holding a share of the caps
/// ([`SweepBudget::split_shares`] — deadline and cancel token shared),
/// and the per-chunk meters are merged into `meter` at the join
/// ([`BudgetMeter::absorb`]).  Within a chunk the whole-block-commit
/// invariant is untouched: a fault's verdict lands in the output only
/// when its block (full test scan, or `2^n` redundancy sweep) was
/// admitted, so undecided faults stay `None`/`false` and summarise as
/// conservative misses.
///
/// `workers` caps the fan-out (`None` = the pool's
/// [`rayon::current_num_threads`], i.e. `RAYON_NUM_THREADS` or the
/// machine width); it is injectable so tests can pin the worker count
/// without mutating the process environment.  The returned thread ids
/// (one per chunk) exist for those tests.
#[allow(clippy::too_many_arguments)]
fn scalar_results_pooled<P: TestVector + Sync>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    mode: impl Into<RedundancyMode>,
    budget: &SweepBudget,
    meter: &mut BudgetMeter,
    workers: Option<usize>,
) -> (Vec<Option<usize>>, Vec<bool>, Vec<std::thread::ThreadId>) {
    let mode = mode.into();
    // Relative classification grades missed faults against the named
    // family; materialised once, shared read-only across workers.  Its
    // per-fault sweep is one admitted block of `fam.len()` vectors, so
    // the whole-block-commit invariant carries over unchanged.
    let relative: Option<Vec<P>> = match mode {
        RedundancyMode::RelativeTo(family) => Some(family.collect(network.lines())),
        _ => None,
    };
    let workers = workers
        .unwrap_or_else(rayon::current_num_threads)
        .clamp(1, faults.len().max(1));
    let shares = budget.split_shares(workers);
    // Chunk bounds à la slice::chunks: the first `len % workers` chunks
    // take one extra fault.
    let base = faults.len() / workers;
    let extra = faults.len() % workers;
    let mut chunks: Vec<(usize, usize, SweepBudget)> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for (i, share) in shares.into_iter().enumerate() {
        let end = start + base + usize::from(i < extra);
        chunks.push((start, end, share));
        start = end;
    }
    let outcomes: Vec<ScalarChunkOutcome> = chunks
        .into_par_iter()
        .with_max_threads(workers)
        .map(|(start, end, share)| {
            let mut chunk_meter = BudgetMeter::new(&share);
            let mut first = vec![None; end - start];
            let mut redundant = vec![false; end - start];
            for (j, fault) in faults[start..end].iter().enumerate() {
                if !chunk_meter.admit_block(tests.len() as u64) {
                    break;
                }
                first[j] = multi_first_detection_index_packed(network, fault, tests);
                if first[j].is_none() {
                    match (&relative, mode) {
                        (Some(fam), _) => {
                            if !chunk_meter.admit_block(fam.len() as u64) {
                                break;
                            }
                            redundant[j] = is_multi_fault_redundant_relative(network, fault, fam);
                        }
                        (None, RedundancyMode::Exhaustive) => {
                            if !chunk_meter.admit_block(1u64 << network.lines()) {
                                break;
                            }
                            redundant[j] = is_multi_fault_redundant(network, fault);
                        }
                        (None, _) => {}
                    }
                }
            }
            ScalarChunkOutcome {
                start,
                first,
                redundant,
                progress: chunk_meter.progress(),
                tripped: chunk_meter.tripped(),
                worker: std::thread::current().id(),
            }
        })
        .collect();
    let mut first = vec![None; faults.len()];
    let mut redundant = vec![false; faults.len()];
    let mut worker_ids = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let end = outcome.start + outcome.first.len();
        first[outcome.start..end].clone_from_slice(&outcome.first);
        redundant[outcome.start..end].clone_from_slice(&outcome.redundant);
        meter.absorb(outcome.progress, outcome.tripped);
        worker_ids.push(outcome.worker);
    }
    (first, redundant, worker_ids)
}

/// [`coverage_of_universe_with`] under a [`SweepBudget`]: one meter
/// spans the first-detection sweep *and* the redundancy sweep, so the
/// budget bounds the whole grade rather than each phase separately.
///
/// On a trip the [`Budgeted::Partial`] report stays conservative and
/// internally consistent: faults whose verdict never committed count as
/// `missed` (never as `detected` or `redundant_faults`), so `detected`
/// is an exact lower bound, `missed` an exact upper bound, and
/// `coverage` a lower bound on the true ratio.  The bit-parallel
/// engines meter per test block and per fork; the scalar engine meters
/// per fault (each fault's full test scan is one block, its redundancy
/// sweep another) and fans out on the rayon-shim pool with the budget
/// split into per-worker shares ([`SweepBudget::split_shares`]) that
/// are merged back at the join — a budgeted scalar grade keeps both
/// the fan-out and cancellability.
pub fn coverage_of_universe_budgeted_with(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[BitString],
    check_redundancy: bool,
    engine: FaultSimEngine,
    budget: &SweepBudget,
) -> Result<Budgeted<CoverageReport>, EngineError> {
    coverage_of_universe_budgeted_packed_with::<BitString>(
        network,
        universe,
        tests,
        check_redundancy,
        engine,
        budget,
    )
}

/// [`coverage_of_universe_budgeted_with`] over any [`TestVector`]
/// packing, with the same shared-meter and conservative-partial
/// semantics.  Under [`RedundancyMode::RelativeTo`] the scalar engine
/// meters one block of family-size vectors per missed fault; the
/// bit-parallel engines commit the relative phase as a whole — either
/// way a tripped budget only ever moves faults into `missed`.
pub fn coverage_of_universe_budgeted_packed_with<P: TestVector + Sync>(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[P],
    mode: impl Into<RedundancyMode>,
    engine: FaultSimEngine,
    budget: &SweepBudget,
) -> Result<Budgeted<CoverageReport>, EngineError> {
    let mode = mode.into();
    let faults = check_coverage_inputs(network, universe, tests, mode)?;
    let mut meter = BudgetMeter::new(budget);
    let (first, redundant): (Vec<Option<usize>>, Vec<bool>) = match engine {
        FaultSimEngine::Scalar => {
            let (first, redundant, _workers) =
                scalar_results_pooled(network, &faults, tests, mode, budget, &mut meter, None);
            (first, redundant)
        }
        FaultSimEngine::BitParallel => bitparallel_results_metered::<DEFAULT_WIDTH, P>(
            network, &faults, tests, mode, &mut meter,
        ),
        FaultSimEngine::BitParallelWide(width) => match width {
            LaneWidth::W1 => {
                bitparallel_results_metered::<1, P>(network, &faults, tests, mode, &mut meter)
            }
            LaneWidth::W2 => {
                bitparallel_results_metered::<2, P>(network, &faults, tests, mode, &mut meter)
            }
            LaneWidth::W4 => {
                bitparallel_results_metered::<4, P>(network, &faults, tests, mode, &mut meter)
            }
            LaneWidth::W8 => {
                bitparallel_results_metered::<8, P>(network, &faults, tests, mode, &mut meter)
            }
            LaneWidth::W16 => {
                bitparallel_results_metered::<16, P>(network, &faults, tests, mode, &mut meter)
            }
        },
    };
    let report = summarise_verdicts(&faults, &first, &redundant, mode);
    Ok(meter.finish(report))
}

/// [`coverage_of_universe_budgeted_with`] on the default engine.
pub fn coverage_of_universe_budgeted(
    network: &Network,
    universe: &dyn FaultUniverse,
    tests: &[BitString],
    check_redundancy: bool,
    budget: &SweepBudget,
) -> Result<Budgeted<CoverageReport>, EngineError> {
    coverage_of_universe_budgeted_with(
        network,
        universe,
        tests,
        check_redundancy,
        FaultSimEngine::default(),
        budget,
    )
}

/// Runs every single-comparator fault of `network` against the test
/// sequence `tests` and summarises detection, using the default
/// [`FaultSimEngine::BitParallel`] engine — [`coverage_of_universe`] over
/// [`SingleComparator`].
#[deprecated(
    since = "0.1.0",
    note = "panics on refused sweeps; use `try_coverage_of_universe` over `SingleComparator`"
)]
#[allow(deprecated)] // the wrappers delegate to each other until stage 3 reclaims them
#[must_use]
pub fn coverage_of_tests(
    network: &Network,
    tests: &[BitString],
    check_redundancy: bool,
) -> CoverageReport {
    coverage_of_tests_with(network, tests, check_redundancy, FaultSimEngine::default())
}

/// [`coverage_of_tests`] with an explicit engine choice — the scalar path
/// is the cross-check oracle for the bit-parallel one.
#[deprecated(
    since = "0.1.0",
    note = "panics on refused sweeps; use `try_coverage_of_universe_with` over `SingleComparator`"
)]
#[allow(deprecated)] // the wrappers delegate to each other until stage 3 reclaims them
#[must_use]
pub fn coverage_of_tests_with(
    network: &Network,
    tests: &[BitString],
    check_redundancy: bool,
    engine: FaultSimEngine,
) -> CoverageReport {
    coverage_of_universe_with(network, &SingleComparator, tests, check_redundancy, engine)
}

#[cfg(test)]
#[allow(deprecated)] // the tests keep the legacy wrappers covered until stage 3
mod tests {
    use super::*;
    use crate::universe::{StandardUniverse, StuckLine};
    use sortnet_combinat::Permutation;
    use sortnet_network::builders::batcher::odd_even_merge_sort;
    use sortnet_network::random::NetworkSampler;
    use sortnet_testsets::sorting;

    #[test]
    fn minimal_testset_achieves_full_coverage_of_detectable_faults() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        let report = coverage_of_tests(&net, &tests, true);
        assert_eq!(report.missed, 0, "{report:?}");
        assert!(report.missed_faults.is_empty());
        assert!((report.coverage - 1.0).abs() < f64::EPSILON);
        assert!(report.detected > 0);
    }

    #[test]
    fn permutation_testset_cover_also_achieves_full_coverage() {
        // The covers of the C(n, n/2) - 1 test permutations contain every
        // unsorted string, so they too detect every detectable fault.
        let net = odd_even_merge_sort(6);
        let perms = sorting::permutation_testset(6);
        let tests: Vec<_> = perms.iter().flat_map(Permutation::cover).collect();
        let report = coverage_of_tests(&net, &tests, true);
        assert_eq!(report.missed, 0);
    }

    #[test]
    fn a_handful_of_random_inputs_miss_some_faults() {
        let net = odd_even_merge_sort(8);
        let mut sampler = NetworkSampler::new(5);
        let tests: Vec<_> = (0..3).map(|_| sampler.random_input(8)).collect();
        let report = coverage_of_tests(&net, &tests, false);
        assert!(report.detected + report.missed == report.total_faults);
        assert!(
            report.missed > 0,
            "three random inputs should not catch everything"
        );
        assert_eq!(report.missed_faults.len(), report.missed);
        assert!(report.undetectable_faults.is_empty());
    }

    #[test]
    fn empty_test_sequence_detects_nothing() {
        let net = odd_even_merge_sort(5);
        let report = coverage_of_tests(&net, &[], false);
        assert_eq!(report.detected, 0);
        assert_eq!(report.missed, report.total_faults);
        assert_eq!(report.mean_first_detection, 0.0);
    }

    #[test]
    fn empty_test_sequence_over_a_detectable_universe_never_reads_complete() {
        // The pinned edge-case semantics: an empty sequence must read 0.0
        // coverage whenever anything was detectable — with or without the
        // redundancy sweep classifying the misses.
        let net = odd_even_merge_sort(5);
        for check_redundancy in [false, true] {
            for engine in [FaultSimEngine::Scalar, FaultSimEngine::BitParallel] {
                let report =
                    coverage_of_universe_with(&net, &StuckLine, &[], check_redundancy, engine);
                assert_eq!(report.detected, 0);
                assert!(report.missed > 0, "stuck-line has detectable faults");
                assert_eq!(report.coverage, 0.0, "redundancy={check_redundancy}");
                assert!(!report.is_complete());
            }
        }
    }

    #[test]
    fn empty_universe_is_vacuously_complete() {
        // A network with no comparators has no single-comparator faults:
        // total_faults = 0, and completeness holds vacuously — even for an
        // empty test sequence, because nothing was detectable to miss.
        let net = sortnet_network::Network::empty(3);
        for tests in [Vec::new(), sorting::binary_testset(3)] {
            let report = coverage_of_tests(&net, &tests, true);
            assert_eq!(report.total_faults, 0);
            assert_eq!(report.coverage, 1.0);
            assert!(report.is_complete());
        }
    }

    #[test]
    fn fully_redundant_universe_is_complete_even_with_no_tests() {
        // On a 1-line network every output is sorted, so both stuck-at
        // faults of the single input segment are redundant: the obligation
        // set is empty and coverage is 1.0 by vacuity — but only because
        // the redundancy sweep *proved* it, not because the sequence was
        // empty (the companion test above pins the detectable case to 0.0).
        let net = sortnet_network::Network::empty(1);
        let report = coverage_of_universe(&net, &StuckLine, &[], true);
        assert_eq!(report.total_faults, 2);
        assert_eq!(report.redundant_faults, 2);
        assert_eq!(report.missed, 0);
        assert_eq!(report.coverage, 1.0);
        assert!(report.is_complete());
        // Without the sweep the same faults count as missed: conservative,
        // and still not read as full coverage.
        let unchecked = coverage_of_universe(&net, &StuckLine, &[], false);
        assert_eq!(unchecked.coverage, 0.0);
        assert!(!unchecked.is_complete());
    }

    #[test]
    fn scalar_and_bitparallel_engines_produce_identical_reports() {
        let mut sampler = NetworkSampler::new(1234);
        for _ in 0..5 {
            let net = sampler.network(7, 14);
            let tests: Vec<_> = (0..20).map(|_| sampler.random_input(7)).collect();
            for check_redundancy in [false, true] {
                let scalar =
                    coverage_of_tests_with(&net, &tests, check_redundancy, FaultSimEngine::Scalar);
                let bitpar = coverage_of_tests_with(
                    &net,
                    &tests,
                    check_redundancy,
                    FaultSimEngine::BitParallel,
                );
                assert_eq!(scalar, bitpar, "net {net} redundancy={check_redundancy}");
            }
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        let report = coverage_of_tests(&net, &tests, true);
        assert_eq!(
            report.detected + report.missed + report.redundant_faults,
            report.total_faults
        );
        assert_eq!(report.missed_faults.len(), report.missed);
        assert_eq!(report.undetectable_faults.len(), report.redundant_faults);
        assert!(report.max_first_detection as f64 >= report.mean_first_detection);
        assert!(report.max_first_detection <= tests.len());
    }

    #[test]
    fn universe_coverage_agrees_across_engines_on_stuck_lines() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        let bitpar = coverage_of_universe(&net, &StuckLine, &tests, true);
        let scalar =
            coverage_of_universe_with(&net, &StuckLine, &tests, true, FaultSimEngine::Scalar);
        assert_eq!(bitpar, scalar);
        assert_eq!(bitpar.total_faults, StuckLine.len(&net));
        // The stuck-line universe on a correct sorter has undetectable
        // faults (e.g. every stuck input segment) — unlike the
        // single-comparator universe, redundancy is the common case here.
        assert!(bitpar.redundant_faults >= 2 * net.lines());
    }

    #[test]
    fn standard_universes_all_produce_consistent_reports() {
        let net = odd_even_merge_sort(4);
        let tests = sorting::binary_testset(4);
        for universe in StandardUniverse::ALL {
            let report = coverage_of_universe(&net, &universe, &tests, true);
            assert_eq!(
                report.detected + report.missed + report.redundant_faults,
                report.total_faults,
                "universe {}",
                universe.name()
            );
            assert_eq!(report.total_faults, universe.len(&net));
        }
    }

    #[test]
    fn try_coverage_validates_up_front_and_agrees_otherwise() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        // Agreement with the panicking path on a valid grade.
        assert_eq!(
            try_coverage_of_universe(&net, &StuckLine, &tests, true).unwrap(),
            coverage_of_universe(&net, &StuckLine, &tests, true)
        );
        // An empty universe is a typed refusal (the panicking path reads
        // it as vacuously complete instead).
        let empty = sortnet_network::Network::empty(3);
        assert_eq!(
            try_coverage_of_universe(&empty, &SingleComparator, &[], false).unwrap_err(),
            EngineError::EmptyUniverse
        );
        // Mismatched test vectors are refused before any sweeping.
        let short = vec![BitString::from_word(0, 5)];
        assert_eq!(
            try_coverage_of_universe(&net, &StuckLine, &short, false).unwrap_err(),
            EngineError::InputLengthMismatch {
                expected: 6,
                actual: 5
            }
        );
        // Redundancy sweeps are checked for admissibility up front, and
        // every engine shares the one canonical `ensure_sweepable` bound
        // with a single pinned error text.
        let wide = sortnet_network::Network::empty(33);
        for engine in [FaultSimEngine::Scalar, FaultSimEngine::BitParallel] {
            assert_eq!(
                try_coverage_of_universe_with(&wide, &StuckLine, &[], true, engine).unwrap_err(),
                EngineError::SweepTooLarge { lines: 33 },
                "{engine:?}"
            );
        }
        // n = 24 (the old scalar-only refusal point) is now admissible on
        // every engine — the unified guard sits at n < 32.
        let tests24 = vec![BitString::from_word(0, 24)];
        let net24 = sortnet_network::Network::from_pairs(24, &[(0, 1)]);
        assert!(try_coverage_of_universe_with(
            &net24,
            &SingleComparator,
            &tests24,
            false,
            FaultSimEngine::Scalar
        )
        .is_ok());
    }

    #[test]
    fn redundancy_mode_converts_from_the_legacy_bool_and_names_itself() {
        assert_eq!(RedundancyMode::from(true), RedundancyMode::Exhaustive);
        assert_eq!(RedundancyMode::from(false), RedundancyMode::Skip);
        assert_eq!(RedundancyMode::Exhaustive.provenance(), "exhaustive");
        assert_eq!(RedundancyMode::Skip.provenance(), "skipped");
        assert_eq!(
            RedundancyMode::RelativeTo(PackedFamily::SortedStrings).provenance(),
            "relative:sorted-strings"
        );
        // Admissibility: exhaustive keeps the canonical sweep bound,
        // relative is admitted past it.
        assert_eq!(
            RedundancyMode::Exhaustive
                .ensure_admissible(33)
                .unwrap_err(),
            EngineError::SweepTooLarge { lines: 33 }
        );
        assert!(RedundancyMode::RelativeTo(PackedFamily::SortedStrings)
            .ensure_admissible(96)
            .is_ok());
        assert!(RedundancyMode::Skip.ensure_admissible(4096).is_ok());
    }

    #[test]
    fn reports_carry_their_redundancy_provenance() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        assert_eq!(
            coverage_of_tests(&net, &tests, true).redundancy,
            "exhaustive"
        );
        assert_eq!(coverage_of_tests(&net, &tests, false).redundancy, "skipped");
        let relative = coverage_of_universe_packed_with(
            &net,
            &StuckLine,
            &tests,
            RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
            FaultSimEngine::BitParallel,
        );
        assert_eq!(relative.redundancy, "relative:sorted-strings");
    }

    #[test]
    fn relative_redundancy_is_sound_against_the_exhaustive_sweep() {
        // Every exhaustively redundant fault is undetected by *any*
        // vector, so relative classification can only ever move those
        // same faults (plus possibly more) out of `missed` — and with
        // the full binary family it is *exactly* the exhaustive verdict.
        let net = odd_even_merge_sort(5);
        let tests = vec![BitString::from_word(1, 5)];
        for engine in [FaultSimEngine::Scalar, FaultSimEngine::BitParallel] {
            let exhaustive = coverage_of_universe_with(&net, &StuckLine, &tests, true, engine);
            let relative = coverage_of_universe_packed_with(
                &net,
                &StuckLine,
                &tests,
                RedundancyMode::RelativeTo(PackedFamily::SortedStrings),
                engine,
            );
            for fault in &exhaustive.undetectable_faults {
                assert!(
                    relative.undetectable_faults.contains(fault),
                    "{engine:?}: exhaustively redundant {fault:?} must be relatively redundant"
                );
            }
            assert!(relative.redundant_faults >= exhaustive.redundant_faults);
            assert_eq!(relative.detected, exhaustive.detected, "{engine:?}");
        }
    }

    #[test]
    fn engines_agree_on_relative_redundancy() {
        let mut sampler = NetworkSampler::new(77);
        for _ in 0..3 {
            let net = sampler.network(7, 12);
            let tests: Vec<_> = (0..4).map(|_| sampler.random_input(7)).collect();
            for family in [
                PackedFamily::SortedStrings,
                PackedFamily::WeightAtMost(2),
                PackedFamily::SingleRuns,
                PackedFamily::NecessityWitnesses,
            ] {
                let mode = RedundancyMode::RelativeTo(family);
                let scalar = coverage_of_universe_packed_with(
                    &net,
                    &StuckLine,
                    &tests,
                    mode,
                    FaultSimEngine::Scalar,
                );
                for engine in [
                    FaultSimEngine::BitParallel,
                    FaultSimEngine::BitParallelWide(LaneWidth::W1),
                ] {
                    assert_eq!(
                        coverage_of_universe_packed_with(&net, &StuckLine, &tests, mode, engine),
                        scalar,
                        "net {net} family {family} {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn relative_redundancy_grades_past_the_64_line_wall() {
        // The headline capability: redundancy classification at n = 96,
        // where the exhaustive sweep is refused — graded relative to the
        // sorted-strings family instead, with provenance in the report.
        use sortnet_combinat::ChannelVec;
        let n = 96usize;
        let net = Network::from_pairs(n, &[(0, 95), (31, 64), (0, 1)]);
        let tests = vec![ChannelVec::zeros(n)];
        let mode = RedundancyMode::RelativeTo(PackedFamily::SortedStrings);
        let scalar = coverage_of_universe_packed_with(
            &net,
            &StuckLine,
            &tests,
            mode,
            FaultSimEngine::Scalar,
        );
        assert_eq!(scalar.redundancy, "relative:sorted-strings");
        assert_eq!(
            scalar.detected + scalar.missed + scalar.redundant_faults,
            scalar.total_faults
        );
        // The all-zeros test misses plenty; the family must classify some
        // of the misses (e.g. stuck-at-0 on the min output of (0, 95) is
        // invisible to every sorted string) while leaving genuinely
        // family-detectable misses in `missed`.
        assert!(scalar.redundant_faults > 0, "{scalar:?}");
        assert!(scalar.missed > 0, "{scalar:?}");
        for engine in [
            FaultSimEngine::BitParallel,
            FaultSimEngine::BitParallelWide(LaneWidth::W1),
            FaultSimEngine::BitParallelWide(LaneWidth::W4),
        ] {
            assert_eq!(
                coverage_of_universe_packed_with(&net, &StuckLine, &tests, mode, engine),
                scalar,
                "{engine:?}"
            );
        }
        // Typed and budgeted entries agree.
        assert_eq!(
            try_coverage_of_universe_packed_with(
                &net,
                &StuckLine,
                &tests,
                mode,
                FaultSimEngine::BitParallel
            )
            .unwrap(),
            scalar
        );
        let budgeted = coverage_of_universe_budgeted_packed_with(
            &net,
            &StuckLine,
            &tests,
            mode,
            FaultSimEngine::BitParallel,
            &SweepBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(budgeted, Budgeted::Complete(scalar));
    }

    #[test]
    fn tripped_budget_never_commits_relative_redundancy_verdicts() {
        use sortnet_network::budget::CancelToken;
        let net = odd_even_merge_sort(7);
        let mode = RedundancyMode::RelativeTo(PackedFamily::SortedStrings);
        let token = CancelToken::new();
        token.cancel();
        for engine in [FaultSimEngine::Scalar, FaultSimEngine::BitParallel] {
            let cancelled = coverage_of_universe_budgeted_packed_with::<BitString>(
                &net,
                &StuckLine,
                &[],
                mode,
                engine,
                &SweepBudget::unlimited().with_cancel(token.clone()),
            )
            .unwrap();
            assert!(!cancelled.is_complete(), "{engine:?}");
            let report = cancelled.value();
            assert_eq!(report.redundant_faults, 0, "{engine:?}");
            assert_eq!(report.missed, report.total_faults, "{engine:?}");
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive 2^96 sweep refused")]
    fn packed_redundancy_grade_is_refused_up_front() {
        // Before the up-front guard, this call paid the whole n = 96
        // first-detection sweep and only then hit `SweepTooLarge` deep in
        // the redundancy phase; now it panics at the boundary with the
        // same pinned text.
        use sortnet_combinat::ChannelVec;
        let net = Network::from_pairs(96, &[(0, 95)]);
        let tests = vec![ChannelVec::zeros(96)];
        let _ = coverage_of_universe_packed_with(
            &net,
            &StuckLine,
            &tests,
            true,
            FaultSimEngine::BitParallel,
        );
    }

    #[test]
    fn scalar_and_bitparallel_agree_on_redundancy_at_the_old_scalar_bound() {
        // n = 24 sat in the scalar-refused / bit-parallel-accepted gap
        // before the guards were unified; pin that the scalar engine now
        // accepts it (guard-wise) by grading a trivially small universe
        // with redundancy on a 24-line network under a budget that keeps
        // the exhaustive sweep affordable.
        let net = sortnet_network::Network::from_pairs(24, &[(0, 1)]);
        let tests = vec![BitString::from_word(1 << 1, 24)];
        // One block: the first fault's test scan is admitted, the 2^24
        // redundancy sweep is budget-refused — the guard acceptance is
        // what's under test, not the exhaustive sweep itself.
        let budget = SweepBudget::unlimited().with_max_blocks(1);
        let scalar = coverage_of_universe_budgeted_with(
            &net,
            &SingleComparator,
            &tests,
            true,
            FaultSimEngine::Scalar,
            &budget,
        )
        .unwrap();
        // The grade ran (budget bounds the exhaustive part); the point is
        // the guard no longer refuses n = 24 on the scalar engine.
        let report = scalar.into_value();
        assert_eq!(report.total_faults, SingleComparator.len(&net));
    }

    #[test]
    fn unlimited_budget_reproduces_the_unbudgeted_report_on_every_engine() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        for engine in [
            FaultSimEngine::Scalar,
            FaultSimEngine::BitParallel,
            FaultSimEngine::BitParallelWide(LaneWidth::W1),
        ] {
            let budgeted = coverage_of_universe_budgeted_with(
                &net,
                &StuckLine,
                &tests,
                true,
                engine,
                &SweepBudget::unlimited(),
            )
            .unwrap();
            assert!(budgeted.is_complete(), "{engine:?}");
            assert_eq!(
                budgeted.into_value(),
                coverage_of_universe_with(&net, &StuckLine, &tests, true, engine),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn tripped_budget_degrades_to_a_conservative_partial_report() {
        use sortnet_network::budget::CancelToken;
        let net = odd_even_merge_sort(7);
        let tests = sorting::binary_testset(7);
        let full = coverage_of_universe(&net, &StuckLine, &tests, false);
        // A pre-cancelled token: nothing commits, everything reads missed.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = coverage_of_universe_budgeted(
            &net,
            &StuckLine,
            &tests,
            false,
            &SweepBudget::unlimited().with_cancel(token),
        )
        .unwrap();
        assert!(!cancelled.is_complete());
        let report = cancelled.value();
        assert_eq!(report.detected, 0);
        assert_eq!(report.missed, report.total_faults);
        assert!(!report.is_complete());
        // A small fork budget on the scalar-metered engine: whatever was
        // decided is exact, the rest is conservatively missed.
        let starved = coverage_of_universe_budgeted_with(
            &net,
            &StuckLine,
            &tests,
            false,
            FaultSimEngine::Scalar,
            &SweepBudget::unlimited().with_max_blocks(3),
        )
        .unwrap();
        assert!(!starved.is_complete());
        let partial = starved.value();
        assert_eq!(
            partial.detected + partial.missed + partial.redundant_faults,
            partial.total_faults
        );
        assert!(partial.detected <= full.detected);
        assert!(partial.missed >= full.missed);
        assert!(partial.coverage <= full.coverage + f64::EPSILON);
    }

    #[test]
    fn budgeted_scalar_grade_fans_out_on_the_pool_and_commits_whole_blocks() {
        use sortnet_network::budget::BudgetReason;
        // The budgeted scalar path used to drop to a sequential loop; pin
        // that it now runs on the rayon-shim pool.  The worker count is
        // injected (the `RAYON_NUM_THREADS=4` environment knob maps onto
        // the same cap via `rayon::current_num_threads`, but mutating the
        // environment from a test is unsound in Rust 2024, and this
        // container may expose a single CPU).
        let net = odd_even_merge_sort(7);
        let tests = sorting::binary_testset(7);
        let faults: Vec<MultiFault> = StuckLine.iter(&net).collect();
        assert!(faults.len() >= 4);

        // Unlimited budget: ≥ 2 distinct workers, and the joined verdicts
        // are bit-identical to the unbudgeted scalar grade.
        let budget = SweepBudget::unlimited();
        let mut meter = BudgetMeter::new(&budget);
        let (first, redundant, workers) =
            scalar_results_pooled(&net, &faults, &tests, false, &budget, &mut meter, Some(4));
        let distinct: std::collections::HashSet<_> = workers.into_iter().collect();
        assert!(
            distinct.len() >= 2,
            "budgeted scalar grade ran on {} worker(s) under a 4-thread pool",
            distinct.len()
        );
        assert_eq!(meter.tripped(), None);
        assert_eq!(
            summarise_verdicts(&faults, &first, &redundant, false),
            coverage_of_multifaults_packed_with(
                &net,
                &faults,
                &tests,
                false,
                FaultSimEngine::Scalar
            )
        );

        // Capped budget: the whole-block-commit invariant holds across the
        // join — every committed block is one whole fault × all-tests scan
        // (so vectors = blocks × |tests| exactly), the merged progress
        // never exceeds the undivided cap, and only committed faults carry
        // verdicts.
        let cap = 5u64;
        let budget = SweepBudget::unlimited().with_max_blocks(cap);
        let mut meter = BudgetMeter::new(&budget);
        let (first, _, _) =
            scalar_results_pooled(&net, &faults, &tests, false, &budget, &mut meter, Some(4));
        assert_eq!(meter.tripped(), Some(BudgetReason::Blocks));
        let progress = meter.progress();
        assert!(progress.blocks <= cap, "{progress:?}");
        assert_eq!(progress.vectors, progress.blocks * tests.len() as u64);
        let decided = first.iter().filter(|f| f.is_some()).count() as u64;
        assert!(
            decided <= progress.blocks,
            "{decided} > {}",
            progress.blocks
        );
    }

    #[test]
    fn packed_coverage_crosses_the_64_line_wall_consistently() {
        // n = 96 stuck-line coverage: scalar channel oracle and every
        // bit-parallel width must produce the identical report, and the
        // typed entry must agree (redundancy checking stays off — the
        // exhaustive 2^96 sweep is inadmissible, as at any n ≥ 32).
        use sortnet_combinat::ChannelVec;
        let n = 96usize;
        let net = Network::from_pairs(n, &[(0, 95), (0, 64), (63, 65), (31, 64), (0, 1)]);
        let tests: Vec<ChannelVec> = vec![
            ChannelVec::from_fn(n, |i| i == 64),
            ChannelVec::from_fn(n, |i| i != 63),
            ChannelVec::from_fn(n, |i| i % 3 == 1),
        ];
        let scalar = coverage_of_universe_packed_with(
            &net,
            &StuckLine,
            &tests,
            false,
            FaultSimEngine::Scalar,
        );
        assert_eq!(scalar.total_faults, StuckLine.len(&net));
        assert!(scalar.detected > 0, "{scalar:?}");
        for engine in [
            FaultSimEngine::BitParallel,
            FaultSimEngine::BitParallelWide(LaneWidth::W1),
            FaultSimEngine::BitParallelWide(LaneWidth::W4),
        ] {
            assert_eq!(
                coverage_of_universe_packed_with(&net, &StuckLine, &tests, false, engine),
                scalar,
                "{engine:?}"
            );
        }
        assert_eq!(
            try_coverage_of_universe_packed_with(
                &net,
                &StuckLine,
                &tests,
                false,
                FaultSimEngine::BitParallel
            )
            .unwrap(),
            scalar
        );
        // The budgeted packed grade completes under an unlimited budget.
        let budgeted = coverage_of_universe_budgeted_packed_with(
            &net,
            &StuckLine,
            &tests,
            false,
            FaultSimEngine::BitParallelWide(LaneWidth::W1),
            &SweepBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(budgeted, Budgeted::Complete(scalar));
    }
}
