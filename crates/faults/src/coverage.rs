//! Fault-coverage analysis: how well a sequence of test inputs detects the
//! single-fault universe of a network (experiment E10).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use sortnet_combinat::BitString;
use sortnet_network::lanes::{LaneWidth, DEFAULT_WIDTH};
use sortnet_network::Network;

use crate::bitsim::{first_detections_wide, is_fault_redundant_wide};
use crate::model::{enumerate_faults, Fault};
use crate::simulate::{first_detection_index, is_fault_redundant};

/// Which simulation engine evaluates the fault universe.
///
/// All engines produce bit-for-bit equal reports wherever they run (the
/// proptest suite and experiment E10 cross-check them; the bit-parallel
/// report is independent of the lane width);
/// [`FaultSimEngine::Scalar`] is retained as the oracle the bit-parallel
/// paths are validated against.  One bounds difference: with
/// `check_redundancy` the scalar engine's per-fault sweep refuses `n ≥ 24`
/// ([`is_fault_redundant`]) while the bit-parallel engine accepts up to
/// `n < 32` ([`is_fault_redundant_wide`]), so oracle comparisons
/// with redundancy checking are limited to `n < 24`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FaultSimEngine {
    /// One fault × one test per call ([`crate::simulate`]).
    Scalar,
    /// `W × 64` tests per pass with shared-prefix forking
    /// ([`crate::bitsim`]), at the default lane width
    /// ([`DEFAULT_WIDTH`]`× 64 = 256` vectors per fork).
    #[default]
    BitParallel,
    /// Bit-parallel with an explicit lane width — `LaneWidth::W1`
    /// reproduces the original single-word engine exactly.
    BitParallelWide(LaneWidth),
}

/// Result of running a test sequence against the single-fault universe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Total number of faults considered.
    pub total_faults: usize,
    /// Faults that no input whatsoever can detect (the faulty network still
    /// sorts); excluded from the coverage denominator.
    pub redundant_faults: usize,
    /// Detectable faults caught by at least one test in the sequence.
    pub detected: usize,
    /// Detectable faults missed by the whole sequence.
    pub missed: usize,
    /// Coverage ratio `detected / (detected + missed)`; 1.0 when there are
    /// no detectable faults.
    pub coverage: f64,
    /// Mean (over detected faults) of the 1-based index of the first test
    /// that detects the fault — the "tests until detection" cost.
    pub mean_first_detection: f64,
    /// Worst-case first-detection index over detected faults (1-based).
    pub max_first_detection: usize,
}

/// The bit-parallel per-fault results at lane width `W`: first-detection
/// indices with early exit, plus the `2^n` redundancy sweep for faults the
/// whole sequence misses.
fn bitparallel_results<const W: usize>(
    network: &Network,
    faults: &[Fault],
    tests: &[BitString],
    check_redundancy: bool,
) -> Vec<(Option<usize>, bool)> {
    first_detections_wide::<W>(network, faults, tests)
        .into_iter()
        .zip(faults)
        .map(|(first, fault)| {
            let redundant =
                first.is_none() && check_redundancy && is_fault_redundant_wide::<W>(network, fault);
            (first, redundant)
        })
        .collect()
}

/// Runs every single fault of `network` against the test sequence `tests`
/// and summarises detection, using the default
/// [`FaultSimEngine::BitParallel`] engine.
///
/// Set `check_redundancy` to `true` to classify undetected faults as
/// redundant (needs an exhaustive sweep per missed fault, so it is only
/// advisable for `n ≲ 24`); with `false`, undetected faults are counted as
/// missed.
#[must_use]
pub fn coverage_of_tests(
    network: &Network,
    tests: &[BitString],
    check_redundancy: bool,
) -> CoverageReport {
    coverage_of_tests_with(network, tests, check_redundancy, FaultSimEngine::default())
}

/// [`coverage_of_tests`] with an explicit engine choice — the scalar path
/// is the cross-check oracle for the bit-parallel one.
#[must_use]
pub fn coverage_of_tests_with(
    network: &Network,
    tests: &[BitString],
    check_redundancy: bool,
    engine: FaultSimEngine,
) -> CoverageReport {
    let faults = enumerate_faults(network);
    let results: Vec<(Option<usize>, bool)> = match engine {
        FaultSimEngine::Scalar => faults
            .par_iter()
            .map(|fault: &Fault| {
                let first = first_detection_index(network, fault, tests);
                let redundant = if first.is_none() && check_redundancy {
                    is_fault_redundant(network, fault)
                } else {
                    false
                };
                (first, redundant)
            })
            .collect(),
        FaultSimEngine::BitParallel => {
            bitparallel_results::<DEFAULT_WIDTH>(network, &faults, tests, check_redundancy)
        }
        FaultSimEngine::BitParallelWide(width) => match width {
            LaneWidth::W1 => bitparallel_results::<1>(network, &faults, tests, check_redundancy),
            LaneWidth::W2 => bitparallel_results::<2>(network, &faults, tests, check_redundancy),
            LaneWidth::W4 => bitparallel_results::<4>(network, &faults, tests, check_redundancy),
            LaneWidth::W8 => bitparallel_results::<8>(network, &faults, tests, check_redundancy),
        },
    };

    let total_faults = faults.len();
    let redundant_faults = results.iter().filter(|(_, r)| *r).count();
    let detected_indices: Vec<usize> = results.iter().filter_map(|(f, _)| *f).collect();
    let detected = detected_indices.len();
    let missed = total_faults - detected - redundant_faults;
    let detectable = detected + missed;
    let coverage = if detectable == 0 {
        1.0
    } else {
        detected as f64 / detectable as f64
    };
    let mean_first_detection = if detected == 0 {
        0.0
    } else {
        detected_indices.iter().map(|i| (i + 1) as f64).sum::<f64>() / detected as f64
    };
    let max_first_detection = detected_indices.iter().map(|i| i + 1).max().unwrap_or(0);
    CoverageReport {
        total_faults,
        redundant_faults,
        detected,
        missed,
        coverage,
        mean_first_detection,
        max_first_detection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortnet_combinat::Permutation;
    use sortnet_network::builders::batcher::odd_even_merge_sort;
    use sortnet_network::random::NetworkSampler;
    use sortnet_testsets::sorting;

    #[test]
    fn minimal_testset_achieves_full_coverage_of_detectable_faults() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        let report = coverage_of_tests(&net, &tests, true);
        assert_eq!(report.missed, 0, "{report:?}");
        assert!((report.coverage - 1.0).abs() < f64::EPSILON);
        assert!(report.detected > 0);
    }

    #[test]
    fn permutation_testset_cover_also_achieves_full_coverage() {
        // The covers of the C(n, n/2) - 1 test permutations contain every
        // unsorted string, so they too detect every detectable fault.
        let net = odd_even_merge_sort(6);
        let perms = sorting::permutation_testset(6);
        let tests: Vec<_> = perms.iter().flat_map(Permutation::cover).collect();
        let report = coverage_of_tests(&net, &tests, true);
        assert_eq!(report.missed, 0);
    }

    #[test]
    fn a_handful_of_random_inputs_miss_some_faults() {
        let net = odd_even_merge_sort(8);
        let mut sampler = NetworkSampler::new(5);
        let tests: Vec<_> = (0..3).map(|_| sampler.random_input(8)).collect();
        let report = coverage_of_tests(&net, &tests, false);
        assert!(report.detected + report.missed == report.total_faults);
        assert!(
            report.missed > 0,
            "three random inputs should not catch everything"
        );
    }

    #[test]
    fn empty_test_sequence_detects_nothing() {
        let net = odd_even_merge_sort(5);
        let report = coverage_of_tests(&net, &[], false);
        assert_eq!(report.detected, 0);
        assert_eq!(report.missed, report.total_faults);
        assert_eq!(report.mean_first_detection, 0.0);
    }

    #[test]
    fn scalar_and_bitparallel_engines_produce_identical_reports() {
        let mut sampler = NetworkSampler::new(1234);
        for _ in 0..5 {
            let net = sampler.network(7, 14);
            let tests: Vec<_> = (0..20).map(|_| sampler.random_input(7)).collect();
            for check_redundancy in [false, true] {
                let scalar =
                    coverage_of_tests_with(&net, &tests, check_redundancy, FaultSimEngine::Scalar);
                let bitpar = coverage_of_tests_with(
                    &net,
                    &tests,
                    check_redundancy,
                    FaultSimEngine::BitParallel,
                );
                assert_eq!(scalar, bitpar, "net {net} redundancy={check_redundancy}");
            }
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let net = odd_even_merge_sort(6);
        let tests = sorting::binary_testset(6);
        let report = coverage_of_tests(&net, &tests, true);
        assert_eq!(
            report.detected + report.missed + report.redundant_faults,
            report.total_faults
        );
        assert!(report.max_first_detection as f64 >= report.mean_first_detection);
        assert!(report.max_first_detection <= tests.len());
    }
}
