//! Bit-parallel fault simulation: `W × 64` test vectors per pass per fault,
//! with shared-prefix forking.
//!
//! # Lane encoding
//!
//! Tests are packed into [`WideBlock<W>`]s, the width-generic transposed
//! (bit-sliced) representation from [`sortnet_network::lanes`]: lane `i` is
//! a `[u64; W]` holding, for each of up to `W × 64` test vectors, the
//! current value of network line `i`; bit `j` of word `w` of every lane
//! belongs to test vector `w·64 + j` of the block.  A fault-free comparator
//! on lines `(i, j)` is then `2W` bitwise ops (`AND` to the min line, `OR`
//! to the max line), and each of the four [`FaultKind`]s has an equally
//! cheap lane form:
//!
//! | fault | lane semantics |
//! |---|---|
//! | [`FaultKind::StuckPass`] | skip the comparator (lanes unchanged) |
//! | [`FaultKind::StuckSwap`] | exchange the two lanes unconditionally |
//! | [`FaultKind::Inverted`] | `OR` to the min line, `AND` to the max line |
//! | [`FaultKind::Misrouted`] | comparator between `top` and `new_bottom` |
//!
//! A test vector *detects* a fault when the faulty network leaves it
//! unsorted, so one `unsorted_masks()` per fault per block yields `W × 64`
//! detection verdicts at once.
//!
//! # Shared-prefix forking, in two levels
//!
//! Every fault of every [`FaultUniverse`](crate::universe::FaultUniverse)
//! has a *fork site*: the cut position before which it is identical to the
//! fault-free network ([`MultiFault::fork_site`]).  The engine sweeps each
//! block through the faults in nondecreasing fork-site order, evaluating
//! the fault-free prefix incrementally, **once per block**: when the
//! running prefix state reaches a fault's site, the fault forks the state
//! (a `memcpy` of `n·W` words into a reusable scratch block), applies its
//! lesion timeline, and runs only the remaining suffix.  For `F` faults,
//! `T` tests and `C` comparators this turns the scalar `O(F·T·C)`
//! comparator evaluations into `O(T·C + F·T·(C − c̄))/(64·W)` lane-word
//! operations, where `c̄` is the mean fork site — the lane win and the
//! suffix win compose multiplicatively, and widening `W` amortises each
//! fork over `W × 64` vectors instead of 64.  The same forking drives the
//! batch redundancy sweep ([`redundant_faults_multi_wide`]), which streams
//! the exhaustive `2^n` family once for the whole fault set instead of
//! re-running the fault-free prefix per fault.
//!
//! For **two-lesion faults** (the quadratic
//! [`FaultPairs`](crate::universe::FaultPairs) universes, where many pairs
//! share their *first* lesion) the fork nests: the sweep
//! plan groups faults by first lesion, the block forks **once per group**
//! from the fault-free prefix, applies the shared first lesion, and keeps
//! that state as a *checkpoint*; each partner then forks from the
//! checkpoint at its own second-lesion site and runs only the remaining
//! suffix.  The checkpoint advances fault-free between partners, so the
//! `first lesion → second lesion` span is evaluated once per group
//! instead of once per pair — roughly halving the quadratic sweep's
//! suffix work.  Correctness rests on the same invariant at both levels
//! (see the [`sortnet_network::lanes`] docs): a shared state
//! advanced through comparators `0..p` may only serve forks whose site is
//! `≥ p`, so fork sites must be visited in nondecreasing order — the plan
//! sorts groups by first-lesion timeline key (whose leading component is
//! the fork site) and partners within a group by second-lesion site.
//!
//! # Lane backends
//!
//! All sweeps execute their word kernels on a pluggable lane-ops
//! [`Backend`] (scalar / portable-chunked / AVX2, runtime-detected; see
//! [`sortnet_network::lanes::backend`]).  Each entry point has a `*_on`
//! form pinning the backend explicitly; the `*_wide` forms use
//! [`Backend::active`].  Every backend produces bit-identical results —
//! the differential suite sweeps backend × universe × width.
//!
//! # Entry points
//!
//! Every entry point is width-generic (`*_wide::<W>`), with a convenience
//! wrapper fixed at [`DEFAULT_WIDTH`]; the `W = 1` instantiation reproduces
//! the original single-word engine bit for bit (the proptest suite holds
//! all widths to exact agreement with the scalar simulator):
//!
//! * [`faulty_run_block`] / [`multi_faulty_run_block`] — one fault over one
//!   block (the oracle hooks the property tests cross-check against the
//!   scalar simulator);
//! * [`detection_matrix`] / [`detection_matrix_multi_wide`] — the full
//!   faults × tests coverage bitmap (layout independent of `W`);
//! * [`first_detections`] / [`first_detections_multi_wide`] — early-exit
//!   variant driving [`coverage_of_tests`](crate::coverage::coverage_of_tests);
//! * [`is_fault_redundant_bitparallel`] / [`is_fault_redundant_wide`] —
//!   the *per-fault* blocked `2^n` redundancy sweep (kept as the reference
//!   the batch path is regression-pinned against);
//! * [`redundant_faults_multi_wide`] — the shared-prefix **batch**
//!   redundancy sweep: one streamed `2^n` pass classifies a whole fault
//!   set, forking each undecided fault per block.
//!
//! Every faults × tests sweep (materialised, streamed and budgeted) also
//! has a `*_packed` form generic over the
//! [`crate::universe::TestVector`] packing of its test
//! vectors: `P = BitString` **is** the monomorphised `n ≤ 64` fast path
//! (the named entry points above delegate to it, so nothing changes for
//! existing callers or codegen), while `P = ChannelVec`
//! (`sortnet_combinat::ChannelVec`) runs the identical sweep past the
//! 64-line wall.  The lane dimension of [`WideBlock`] is line-indexed —
//! `n > 64` costs more lanes, not different kernels — so only the
//! pack/extract boundary and the packability guard depend on `P` (see the
//! *ChannelWords* section of [`sortnet_network::lanes`]).

use sortnet_combinat::BitString;
use sortnet_network::bitparallel;
use sortnet_network::budget::{BudgetMeter, Budgeted, SweepBudget};
use sortnet_network::error::{self, EngineError};
use sortnet_network::lanes::{self, Backend, BlockSource, WideBlock, DEFAULT_WIDTH};
use sortnet_network::Network;

use crate::model::{Fault, FaultKind};
use crate::universe::{Lesion, MultiFault, TestVector};

/// Applies the faulty version of comparator `fault.comparator` to a block:
/// the lane-level counterpart of one faulty step of
/// [`faulty_apply_bits`](crate::simulate::faulty_apply_bits).
#[inline]
fn apply_faulty_comparator<const W: usize>(
    network: &Network,
    backend: Backend,
    fault: &Fault,
    block: &mut WideBlock<W>,
) {
    let c = network.comparators()[fault.comparator];
    match fault.kind {
        FaultKind::StuckPass => {}
        FaultKind::StuckSwap => block.swap_lanes(c.min_line(), c.max_line()),
        FaultKind::Inverted => block.apply_comparator_with(backend, c.max_line(), c.min_line()),
        // A misroute onto the comparator's own top line degenerates to a
        // no-op in the scalar simulator's word arithmetic; mirror that
        // instead of tripping `apply_comparator`'s distinct-lines assert.
        // (`enumerate_faults` never emits this shape, but the fault type
        // admits it.)
        FaultKind::Misrouted { new_bottom } => {
            if new_bottom != c.top() {
                block.apply_comparator_with(backend, c.top(), new_bottom);
            }
        }
    }
}

/// Runs the faulty network over one block of up to `W × 64` test vectors,
/// in place.
///
/// Equivalent to `W × 64` scalar
/// [`faulty_apply_bits`](crate::simulate::faulty_apply_bits) calls; the
/// proptest suite (`tests/proptest_bitsim.rs`) holds the two to exact
/// agreement on all four [`FaultKind`]s.
///
/// # Panics
/// Panics if the fault's comparator index is out of range.
pub fn faulty_run_block<const W: usize>(
    network: &Network,
    fault: &Fault,
    block: &mut WideBlock<W>,
) {
    assert!(
        fault.comparator < network.size(),
        "fault index out of range"
    );
    let backend = Backend::active();
    block.run_range_with(backend, network, 0, fault.comparator);
    apply_faulty_comparator(network, backend, fault, block);
    block.run_range_with(backend, network, fault.comparator + 1, network.size());
}

/// Applies one lesion to a block whose comparators `0..pos` have already
/// run, returning the new cut position: the lane-level counterpart of one
/// step of the scalar lesion timeline in [`crate::universe`].
#[inline]
fn apply_lesion_from<const W: usize>(
    network: &Network,
    backend: Backend,
    lesion: &Lesion,
    block: &mut WideBlock<W>,
    pos: usize,
) -> usize {
    match lesion {
        Lesion::Comparator(fault) => {
            block.run_range_with(backend, network, pos, fault.comparator);
            apply_faulty_comparator(network, backend, fault, block);
            fault.comparator + 1
        }
        Lesion::Stuck(s) => {
            block.run_range_with(backend, network, pos, s.cut);
            block.fill_lane(s.line, s.value);
            s.cut
        }
    }
}

/// Runs a fault's lesion timeline over a block whose comparators `0..pos`
/// have already been applied fault-free — the suffix half of a
/// shared-prefix fork.
///
/// # Panics
/// Panics (in debug builds) if `pos` exceeds the fault's fork site.
fn run_multi_from<const W: usize>(
    network: &Network,
    backend: Backend,
    fault: &MultiFault,
    block: &mut WideBlock<W>,
    mut pos: usize,
) {
    debug_assert!(pos <= fault.fork_site(), "fork past the fault's site");
    for lesion in fault.lesions() {
        pos = apply_lesion_from(network, backend, lesion, block, pos);
    }
    block.run_range_with(backend, network, pos, network.size());
}

/// Runs the multi-fault network over one block of up to `W × 64` test
/// vectors, in place — the lane-level counterpart of
/// [`multi_faulty_apply_bits`](crate::universe::multi_faulty_apply_bits),
/// for faults of **any** universe.
///
/// # Panics
/// Panics if a lesion of the fault does not fit the network.
pub fn multi_faulty_run_block<const W: usize>(
    network: &Network,
    fault: &MultiFault,
    block: &mut WideBlock<W>,
) {
    fault.assert_in_range(network);
    run_multi_from(network, Backend::active(), fault, block, 0);
}

/// A faults × tests detection bitmap: bit `t` of row `f` is set when test
/// `t` detects fault `f`.
///
/// Rows are packed 64 tests per word — a layout independent of the lane
/// width the matrix was computed with, so every `W` produces the identical
/// matrix — and summary statistics reduce to word-level
/// `count_ones`/`trailing_zeros` scans instead of per-test `Option<usize>`
/// bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionMatrix {
    faults: Vec<MultiFault>,
    test_count: usize,
    words_per_fault: usize,
    bits: Vec<u64>,
}

impl DetectionMatrix {
    /// The fault universe the matrix was computed for, in row order.
    #[must_use]
    pub fn faults(&self) -> &[MultiFault] {
        &self.faults
    }

    /// Number of rows (faults).
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Number of columns (tests).
    #[must_use]
    pub fn test_count(&self) -> usize {
        self.test_count
    }

    /// `true` when test `test` detects fault `fault`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[must_use]
    pub fn is_detected_by(&self, fault: usize, test: usize) -> bool {
        assert!(fault < self.fault_count(), "fault index out of range");
        assert!(test < self.test_count, "test index out of range");
        let word = self.bits[fault * self.words_per_fault + test / 64];
        (word >> (test % 64)) & 1 == 1
    }

    /// `true` when at least one test detects fault `fault`.
    #[must_use]
    pub fn detected(&self, fault: usize) -> bool {
        self.row(fault).iter().any(|&w| w != 0)
    }

    /// 0-based index of the first test detecting fault `fault`, or `None` —
    /// a word-level `trailing_zeros` scan over the row.
    #[must_use]
    pub fn first_detection(&self, fault: usize) -> Option<usize> {
        self.row(fault)
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, w)| i * 64 + w.trailing_zeros() as usize)
    }

    /// Number of tests that detect fault `fault` (a popcount over the row).
    #[must_use]
    pub fn detection_count(&self, fault: usize) -> usize {
        self.row(fault)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The raw detection bitmap of fault `fault`: tests packed 64 per
    /// word, test `t` at bit `t % 64` of word `t / 64` — the export the
    /// set-cover/augmentation machinery in `sortnet-testsets` transposes
    /// into per-candidate fault masks.
    ///
    /// # Panics
    /// Panics if the fault index is out of range.
    #[must_use]
    pub fn row_words(&self, fault: usize) -> &[u64] {
        self.row(fault)
    }

    fn row(&self, fault: usize) -> &[u64] {
        assert!(fault < self.fault_count(), "fault index out of range");
        &self.bits[fault * self.words_per_fault..(fault + 1) * self.words_per_fault]
    }
}

/// Precomputed traversal order for [`sweep_block_multi`]: fault indices
/// sorted by the first lesion's timeline key and — within equal first
/// lesions — by second-lesion fork site, then cut into contiguous
/// *groups* of faults sharing their first lesion.
///
/// The double sort realises the fork invariant at both levels (see the
/// module docs): group fork sites are nondecreasing across the sweep
/// (the timeline key's leading component is the fork site), and
/// second-lesion sites are nondecreasing within each group.  The
/// enumeration order of the fault slice itself stays the row/result
/// order — a plan only changes the *visit* order.
struct SweepPlan {
    /// Fault indices in visit order; groups are contiguous runs.
    members: Vec<usize>,
    /// Exclusive end offset of each group in `members`.
    group_ends: Vec<usize>,
}

/// Sort key of one planned fault: `(first-lesion timeline key,
/// second-lesion fork site, enumeration index)`.
type PlanKey = ((usize, u8, usize, usize), usize, usize);

impl SweepPlan {
    fn new(network: &Network, faults: &[MultiFault]) -> Self {
        // Keys are materialised once and sorted as plain primitive tuples:
        // `sort_by_key` recomputes its key per *comparison*, which made
        // plan construction a measurable slice of quadratic pair sweeps
        // (~57 µs of a ~400 µs pairs(stuck-line) n = 8 coverage run).
        let mut keyed: Vec<PlanKey> = Vec::with_capacity(faults.len());
        for (i, fault) in faults.iter().enumerate() {
            fault.assert_in_range(network);
            let lesions = fault.lesions();
            let second_site = lesions.get(1).map_or(0, Lesion::fork_site);
            keyed.push((lesions[0].order_key(), second_site, i));
        }
        keyed.sort_unstable();
        let mut members = Vec::with_capacity(keyed.len());
        let mut group_ends = Vec::new();
        // The timeline key encodes the whole lesion, so equal keys ⟺ equal
        // first lesions: grouping needs no lesion comparisons.
        let mut prev_key = None;
        for &(key, _, idx) in &keyed {
            if prev_key != Some(key) {
                if !members.is_empty() {
                    group_ends.push(members.len());
                }
                prev_key = Some(key);
            }
            members.push(idx);
        }
        if !members.is_empty() {
            group_ends.push(members.len());
        }
        Self {
            members,
            group_ends,
        }
    }

    /// The groups, in visit order: each is a slice of fault indices
    /// sharing one first lesion.
    fn groups(&self) -> impl Iterator<Item = &[usize]> {
        self.group_ends.iter().scan(0usize, |start, &end| {
            let group = &self.members[*start..end];
            *start = end;
            Some(group)
        })
    }
}

/// Sweeps one block of tests over every fault via **two-level**
/// shared-prefix forking and hands each `(fault index, detected-masks)`
/// pair to `record`.
///
/// Level 1: the fault-free prefix advances incrementally across groups
/// (nondecreasing first-lesion sites); each multi-member group forks it
/// once, applies the shared first lesion, and keeps the result as a
/// checkpoint.  Level 2: the checkpoint advances fault-free within the
/// group (nondecreasing second-lesion sites); each partner forks it,
/// applies its second lesion, and runs only the remaining suffix.
/// Singleton groups fork straight off the prefix — identical to the
/// single-level engine, with no checkpoint copy.
///
/// `plan` is the [`SweepPlan`] of `faults`; `skip` filters faults out of
/// the sweep (used for early exit once a fault has been detected in an
/// earlier block) — a fully-skipped group costs nothing beyond the
/// shared prefix advance.
///
/// Every fork (level-1 checkpoint copies and level-2 partner copies
/// alike) asks `meter` for admission first.  Returns `false` when the
/// meter refuses mid-block — the caller must then discard everything
/// `record` received for this block (the no-partial-rows guarantee);
/// unbudgeted callers pass [`BudgetMeter::unlimited`] and always get
/// `true` back.
#[allow(clippy::too_many_arguments)]
fn sweep_block_multi<const W: usize>(
    network: &Network,
    backend: Backend,
    plan: &SweepPlan,
    faults: &[MultiFault],
    block: &WideBlock<W>,
    skip: impl Fn(usize) -> bool,
    mut record: impl FnMut(usize, [u64; W]),
    meter: &mut BudgetMeter,
) -> bool {
    let mut prefix = block.clone();
    let mut checkpoint = block.clone();
    let mut fork = block.clone();
    // The live mask depends only on the block's count — hoist it and
    // intersect the raw fused run-and-scan masks per fault.
    let live = block.live_masks();
    let size = network.size();
    let mut pos = 0usize;
    for group in plan.groups() {
        let first = faults[group[0]].lesions()[0];
        let site = first.fork_site();
        debug_assert!(site >= pos, "group sites must be nondecreasing");
        if site > pos {
            prefix.run_range_with(backend, network, pos, site);
            pos = site;
        }
        if let [fault_idx] = *group {
            // Singleton group: single-level fork off the fault-free prefix.
            if skip(fault_idx) {
                continue;
            }
            if !meter.admit_fork() {
                return false;
            }
            fork.copy_from(&prefix);
            let mut p = pos;
            for lesion in faults[fault_idx].lesions() {
                p = apply_lesion_from(network, backend, lesion, &mut fork, p);
            }
            let mut masks = fork.run_range_scan_with(backend, network, p, size);
            for w in 0..W {
                masks[w] &= live[w];
            }
            record(fault_idx, masks);
            continue;
        }
        if group.iter().all(|&i| skip(i)) {
            continue;
        }
        // Level-1 fork: apply the group's shared first lesion once.
        if !meter.admit_fork() {
            return false;
        }
        checkpoint.copy_from(&prefix);
        let mut cpos = apply_lesion_from(network, backend, &first, &mut checkpoint, pos);
        for &fault_idx in group {
            if skip(fault_idx) {
                continue;
            }
            if !meter.admit_fork() {
                return false;
            }
            let end = match faults[fault_idx].lesions() {
                // A single-lesion fault sharing the group's lesion: the
                // checkpoint (first lesion + fault-free continuation to
                // `cpos`) is already its evaluation up to `cpos`.
                [_] => {
                    fork.copy_from(&checkpoint);
                    cpos
                }
                // Level-2 fork: advance the checkpoint fault-free to the
                // partner's site, snapshot, apply the second lesion.
                [_, second] => {
                    let second_site = second.fork_site();
                    debug_assert!(second_site >= cpos, "partner sites must be nondecreasing");
                    if second_site > cpos {
                        checkpoint.run_range_with(backend, network, cpos, second_site);
                        cpos = second_site;
                    }
                    fork.copy_from(&checkpoint);
                    apply_lesion_from(network, backend, second, &mut fork, cpos)
                }
                _ => unreachable!("a MultiFault holds 1 or 2 lesions"),
            };
            // Fused suffix run + sortedness scan: one dispatch per fork.
            let mut masks = fork.run_range_scan_with(backend, network, end, size);
            for w in 0..W {
                masks[w] &= live[w];
            }
            record(fault_idx, masks);
        }
    }
    true
}

/// Computes the full faults × tests [`DetectionMatrix`] for a slice of
/// [`MultiFault`]s (drawn from any universe) at lane width `W`.
///
/// Evaluates every fault against every test (`W × 64` tests per pass,
/// shared fault-free prefix per block).  The resulting matrix is identical
/// for every `W`.  Use [`first_detections_multi_wide`] instead when only
/// first-detection indices are needed — it stops simulating each fault at
/// its first detecting block.
///
/// # Panics
/// Panics if a fault does not fit the network or a test's length
/// mismatches the network.
#[must_use]
pub fn detection_matrix_multi_wide<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
) -> DetectionMatrix {
    detection_matrix_multi_on::<W>(network, faults, tests, Backend::active())
}

/// [`detection_matrix_multi_wide`] pinned to an explicit lane-ops
/// [`Backend`] — the matrix is identical for every backend and width.
///
/// # Panics
/// Panics if a fault does not fit the network or a test's length
/// mismatches the network.
#[must_use]
pub fn detection_matrix_multi_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    backend: Backend,
) -> DetectionMatrix {
    detection_matrix_multi_packed_on::<W, BitString>(network, faults, tests, backend)
}

/// [`detection_matrix_multi_packed_on`] on [`Backend::active`].
#[must_use]
pub fn detection_matrix_multi_packed<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
) -> DetectionMatrix {
    detection_matrix_multi_packed_on::<W, P>(network, faults, tests, Backend::active())
}

/// The packing-generic matrix core: [`detection_matrix_multi_on`] over any
/// [`TestVector`] representation.  With `P = BitString` this *is* the
/// `n ≤ 64` fast path (the named entry points monomorphise to it); with
/// `P = ChannelVec`(`sortnet_combinat::ChannelVec`) the same sweep crosses
/// the 64-line wall — the lane dimension of [`WideBlock`] is line-indexed,
/// so no kernel changes, only the pack/extract boundary differs.
///
/// # Panics
/// Panics if a fault does not fit the network or a test's length
/// mismatches the network.
#[must_use]
pub fn detection_matrix_multi_packed_on<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
) -> DetectionMatrix {
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let words_per_fault = tests.len().div_ceil(64).max(1);
    let mut bits = vec![0u64; faults.len() * words_per_fault];
    let capacity = WideBlock::<W>::capacity() as usize;
    for (block_idx, chunk) in tests.chunks(capacity).enumerate() {
        let block = WideBlock::<W>::from_strings(n, chunk);
        let words_here = chunk.len().div_ceil(64);
        sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |_| false,
            |fault_idx, masks: [u64; W]| {
                let base = fault_idx * words_per_fault + block_idx * W;
                bits[base..base + words_here].copy_from_slice(&masks[..words_here]);
            },
            &mut BudgetMeter::unlimited(),
        );
    }
    DetectionMatrix {
        faults: faults.to_vec(),
        test_count: tests.len(),
        words_per_fault,
        bits,
    }
}

/// ORs the live bits of a per-word detection mask into a growing row
/// bitmap at bit position `offset` (the number of tests already recorded).
/// `count` is the number of live vectors in the mask; bits past it are
/// zero (the sweep intersects with the block's live mask), so spills past
/// the row's end never carry set bits.
fn append_mask_bits<const W: usize>(
    row: &mut Vec<u64>,
    offset: usize,
    masks: &[u64; W],
    count: usize,
) {
    let need = (offset + count).div_ceil(64);
    if row.len() < need {
        row.resize(need, 0);
    }
    for (w, &mask) in masks.iter().take(count.div_ceil(64)).enumerate() {
        let p = offset + w * 64;
        let (word, shift) = (p / 64, p % 64);
        row[word] |= mask << shift;
        if shift != 0 {
            let spill = mask >> (64 - shift);
            if spill != 0 {
                row[word + 1] |= spill;
            }
        }
    }
}

/// [`detection_matrix_multi_wide`] over a **streamed** candidate family:
/// one wide-lane pass pulls blocks from `source`, forks every fault per
/// block (same two-level shared-prefix sweep), and returns the
/// faults × candidates matrix **plus the candidates themselves** in stream
/// order — so callers (the augmentation search) can map matrix columns back
/// to concrete vectors without materialising the family twice.
///
/// Chained sources ([`ChainSource`](sortnet_network::lanes::ChainSource))
/// may produce partial blocks mid-stream; columns are indexed by cumulative
/// vector count, so the matrix is identical to materialising the family and
/// calling [`detection_matrix_multi_wide`].
///
/// # Panics
/// Panics if a fault does not fit the network or the source's line count
/// mismatches the network.
#[must_use]
pub fn detection_matrix_from_source<const W: usize, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
) -> (DetectionMatrix, Vec<BitString>) {
    detection_matrix_from_source_on(network, faults, source, Backend::active())
}

/// [`detection_matrix_from_source`] pinned to an explicit lane-ops
/// [`Backend`].
///
/// # Panics
/// Panics if a fault does not fit the network or the source's line count
/// mismatches the network.
#[must_use]
pub fn detection_matrix_from_source_on<const W: usize, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
    backend: Backend,
) -> (DetectionMatrix, Vec<BitString>) {
    detection_matrix_from_source_packed_on::<W, BitString, S>(network, faults, source, backend)
}

/// [`detection_matrix_from_source_packed_on`] on [`Backend::active`].
#[must_use]
pub fn detection_matrix_from_source_packed<const W: usize, P: TestVector, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
) -> (DetectionMatrix, Vec<P>) {
    detection_matrix_from_source_packed_on(network, faults, source, Backend::active())
}

/// The packing-generic streamed-matrix core: [`detection_matrix_from_source_on`]
/// over any [`TestVector`] representation, so the candidate echo crosses
/// the 64-line wall (`P = ChannelVec`) without a second extraction pass.
///
/// # Panics
/// Panics if a fault does not fit the network or the source's line count
/// mismatches the network.
#[must_use]
pub fn detection_matrix_from_source_packed_on<const W: usize, P: TestVector, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    mut source: S,
    backend: Backend,
) -> (DetectionMatrix, Vec<P>) {
    let n = network.lines();
    assert_eq!(source.lines(), n, "source line count mismatch");
    let plan = SweepPlan::new(network, faults);
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); faults.len()];
    let mut candidates: Vec<P> = Vec::new();
    let mut block = WideBlock::<W>::zeroed(n);
    while source.next_block(&mut block) {
        let count = block.count() as usize;
        let offset = candidates.len();
        candidates.extend((0..block.count()).map(|j| block.extract_packed::<P>(j)));
        sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |_| false,
            |fault_idx, masks: [u64; W]| {
                append_mask_bits(&mut rows[fault_idx], offset, &masks, count);
            },
            &mut BudgetMeter::unlimited(),
        );
    }
    let test_count = candidates.len();
    let words_per_fault = test_count.div_ceil(64).max(1);
    let mut bits = vec![0u64; faults.len() * words_per_fault];
    for (f, row) in rows.iter().enumerate() {
        bits[f * words_per_fault..f * words_per_fault + row.len()].copy_from_slice(row);
    }
    (
        DetectionMatrix {
            faults: faults.to_vec(),
            test_count,
            words_per_fault,
            bits,
        },
        candidates,
    )
}

/// Single-comparator convenience for [`detection_matrix_multi_wide`]: the
/// pre-universe API, bit-identical to it on the corresponding
/// [`MultiFault`] slice.
///
/// # Panics
/// Panics if a fault's comparator index is out of range or a test's length
/// mismatches the network.
#[must_use]
pub fn detection_matrix_wide<const W: usize>(
    network: &Network,
    faults: &[Fault],
    tests: &[BitString],
) -> DetectionMatrix {
    let multi: Vec<MultiFault> = faults.iter().copied().map(MultiFault::from).collect();
    detection_matrix_multi_wide::<W>(network, &multi, tests)
}

/// [`detection_matrix_wide`] at the default lane width.
#[must_use]
pub fn detection_matrix(
    network: &Network,
    faults: &[Fault],
    tests: &[BitString],
) -> DetectionMatrix {
    detection_matrix_wide::<DEFAULT_WIDTH>(network, faults, tests)
}

/// For each fault of a [`MultiFault`] slice (drawn from any universe), the
/// 0-based index of the first test in `tests` that detects it (`None` when
/// no test does), computed at lane width `W`.
///
/// Semantically identical to calling
/// [`multi_first_detection_index`](crate::universe::multi_first_detection_index)
/// per fault, but `W × 64` tests wide with shared-prefix forking, and each
/// fault drops out of the sweep after its first detecting block.
///
/// # Panics
/// Panics if a fault does not fit the network or a test's length
/// mismatches the network.
#[must_use]
pub fn first_detections_multi_wide<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
) -> Vec<Option<usize>> {
    first_detections_multi_on::<W>(network, faults, tests, Backend::active())
}

/// [`first_detections_multi_wide`] pinned to an explicit lane-ops
/// [`Backend`].
///
/// # Panics
/// Panics if a fault does not fit the network or a test's length
/// mismatches the network.
#[must_use]
pub fn first_detections_multi_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    backend: Backend,
) -> Vec<Option<usize>> {
    first_detections_multi_packed_on::<W, BitString>(network, faults, tests, backend)
}

/// The packing-generic first-detection core: [`first_detections_multi_on`]
/// over any [`TestVector`] representation (the `n > 64` entry takes
/// `ChannelVec` tests).
///
/// # Panics
/// Panics if a fault does not fit the network or a test's length
/// mismatches the network.
#[must_use]
pub fn first_detections_multi_packed_on<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
) -> Vec<Option<usize>> {
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let mut first: Vec<Option<usize>> = vec![None; faults.len()];
    let mut undetected = faults.len();
    let capacity = WideBlock::<W>::capacity() as usize;
    // The borrow of `first` inside both sweep closures is disjoint in time
    // (skip reads before record writes per fault), but the compiler cannot
    // see that — collect each block's verdicts first, in a buffer reused
    // across blocks.
    let mut hits: Vec<(usize, u32)> = Vec::with_capacity(faults.len());
    for (block_idx, chunk) in tests.chunks(capacity).enumerate() {
        if undetected == 0 {
            break;
        }
        let block = WideBlock::<W>::from_strings(n, chunk);
        hits.clear();
        sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |fault_idx| first[fault_idx].is_some(),
            |fault_idx, masks| {
                if let Some(j) = lanes::mask_first(&masks) {
                    hits.push((fault_idx, j));
                }
            },
            &mut BudgetMeter::unlimited(),
        );
        for &(fault_idx, j) in &hits {
            first[fault_idx] = Some(block_idx * capacity + j as usize);
            undetected -= 1;
        }
    }
    first
}

/// Single-comparator convenience for [`first_detections_multi_wide`]: the
/// pre-universe API, identical to it on the corresponding [`MultiFault`]
/// slice.
///
/// # Panics
/// Panics if a fault's comparator index is out of range or a test's length
/// mismatches the network.
#[must_use]
pub fn first_detections_wide<const W: usize>(
    network: &Network,
    faults: &[Fault],
    tests: &[BitString],
) -> Vec<Option<usize>> {
    let multi: Vec<MultiFault> = faults.iter().copied().map(MultiFault::from).collect();
    first_detections_multi_wide::<W>(network, &multi, tests)
}

/// [`first_detections_wide`] at the default lane width.
#[must_use]
pub fn first_detections(
    network: &Network,
    faults: &[Fault],
    tests: &[BitString],
) -> Vec<Option<usize>> {
    first_detections_wide::<DEFAULT_WIDTH>(network, faults, tests)
}

/// Bit-parallel redundancy check at lane width `W`: `true` iff the faulty
/// network still sorts all `2^n` binary inputs, swept `W × 64` vectors per
/// block with counting-pattern generation
/// ([`WideBlock::from_range`]).
///
/// Agrees with the scalar
/// [`is_fault_redundant`](crate::simulate::is_fault_redundant) (the
/// proptest suite checks this) while accepting the larger `n < 32` bound of
/// the other exhaustive bit-parallel sweeps.
///
/// # Panics
/// Panics if the fault's comparator index is out of range or `n ≥ 32`.
#[must_use]
pub fn is_fault_redundant_wide<const W: usize>(network: &Network, fault: &Fault) -> bool {
    let n = network.lines();
    assert!(
        fault.comparator < network.size(),
        "fault index out of range"
    );
    let backend = Backend::active();
    (0..bitparallel::sweep_block_count_wide::<W>(n)).all(|b| {
        let (start, count) = bitparallel::sweep_block_range_wide::<W>(n, b);
        let mut block = WideBlock::<W>::from_range(n, start, count);
        faulty_run_block(network, fault, &mut block);
        !lanes::mask_any(&block.unsorted_masks_with(backend))
    })
}

/// [`is_fault_redundant_wide`] at the default lane width.
#[must_use]
pub fn is_fault_redundant_bitparallel(network: &Network, fault: &Fault) -> bool {
    is_fault_redundant_wide::<DEFAULT_WIDTH>(network, fault)
}

/// Shared-prefix **batch** redundancy sweep at lane width `W`: classifies a
/// whole fault set in one streamed `2^n` pass.
///
/// `flags[i]` is `true` iff the faulty network of `faults[i]` still sorts
/// all `2^n` binary inputs.  Unlike the per-fault
/// [`is_fault_redundant_wide`] path (which re-runs the fault-free prefix
/// for every fault in every block), each block's fault-free prefix is
/// evaluated incrementally once and every still-undecided fault forks from
/// it at its site; faults shown detectable drop out of later blocks, and
/// the sweep stops early once every fault is decided.  Agrees with the
/// per-fault path and the scalar
/// [`is_multi_fault_redundant`](crate::universe::is_multi_fault_redundant)
/// (regression-pinned by the differential suite).
///
/// # Panics
/// Panics if a fault does not fit the network or `n ≥ 32` (an empty fault
/// slice never sweeps, so it is accepted for every `n`).
#[must_use]
pub fn redundant_faults_multi_wide<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
) -> Vec<bool> {
    redundant_faults_multi_on::<W>(network, faults, Backend::active())
}

/// [`redundant_faults_multi_wide`] pinned to an explicit lane-ops
/// [`Backend`].
///
/// # Panics
/// Panics if a fault does not fit the network or `n ≥ 32` (an empty fault
/// slice never sweeps, so it is accepted for every `n`).
#[must_use]
pub fn redundant_faults_multi_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    backend: Backend,
) -> Vec<bool> {
    if faults.is_empty() {
        return Vec::new();
    }
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let mut redundant = vec![true; faults.len()];
    let mut undecided = faults.len();
    let mut hits: Vec<usize> = Vec::with_capacity(faults.len());
    for b in 0..bitparallel::sweep_block_count_wide::<W>(n) {
        if undecided == 0 {
            break;
        }
        let (start, count) = bitparallel::sweep_block_range_wide::<W>(n, b);
        let block = WideBlock::<W>::from_range(n, start, count);
        hits.clear();
        sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |fault_idx| !redundant[fault_idx],
            |fault_idx, masks| {
                if lanes::mask_any(&masks) {
                    hits.push(fault_idx);
                }
            },
            &mut BudgetMeter::unlimited(),
        );
        for &fault_idx in &hits {
            redundant[fault_idx] = false;
            undecided -= 1;
        }
    }
    redundant
}

/// [`redundant_faults_multi_wide`] at the default lane width.
#[must_use]
pub fn redundant_faults_multi(network: &Network, faults: &[MultiFault]) -> Vec<bool> {
    redundant_faults_multi_wide::<DEFAULT_WIDTH>(network, faults)
}

/// Batch redundancy verdict for a single [`MultiFault`] at lane width `W`
/// (a one-element [`redundant_faults_multi_wide`] sweep).
///
/// # Panics
/// Panics if the fault does not fit the network or `n ≥ 32`.
#[must_use]
pub fn is_multi_fault_redundant_wide<const W: usize>(
    network: &Network,
    fault: &MultiFault,
) -> bool {
    redundant_faults_multi_wide::<W>(network, std::slice::from_ref(fault))[0]
}

// ---------------------------------------------------------------------------
// Typed (`try_*`) and budgeted entry points.
//
// The `try_*` forms validate every precondition up front and return the
// refusal as an `EngineError` instead of panicking; the `*_budgeted`
// forms additionally thread a `BudgetMeter` through the sweep — checked
// at every block boundary and every fork site — and degrade to a
// `Budgeted::Partial` that is exact for the committed prefix of tests.
// ---------------------------------------------------------------------------

/// Validates the shared preconditions of the faults × tests entry
/// points: the network fits the packing `P` (single-word for
/// [`BitString`], the multi-word channel cap for `ChannelVec` — see
/// [`TestVector::ensure_packable`]), every fault fits the network and
/// every test vector has the network's length.
fn check_matrix_inputs<P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
) -> Result<(), EngineError> {
    P::ensure_packable(network.lines())?;
    for fault in faults {
        fault.check_in_range(network)?;
    }
    for test in tests {
        if test.len() != network.lines() {
            return Err(EngineError::InputLengthMismatch {
                expected: network.lines(),
                actual: test.len(),
            });
        }
    }
    Ok(())
}

/// Validates the preconditions of the exhaustive `2^n` batch sweeps:
/// the sweep is admissible (`n < 32`) and every fault fits the network.
/// An empty fault slice never sweeps, so it passes for every `n` (the
/// same escape hatch the panicking path grants).
fn check_exhaustive_inputs(network: &Network, faults: &[MultiFault]) -> Result<(), EngineError> {
    if faults.is_empty() {
        return Ok(());
    }
    error::ensure_sweepable(network.lines())?;
    for fault in faults {
        fault.check_in_range(network)?;
    }
    Ok(())
}

/// [`detection_matrix_multi_on`] with typed validation instead of
/// panics: oversized networks, out-of-range faults and mismatched test
/// lengths come back as an [`EngineError`].
pub fn try_detection_matrix_multi_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    backend: Backend,
) -> Result<DetectionMatrix, EngineError> {
    try_detection_matrix_multi_packed_on::<W, BitString>(network, faults, tests, backend)
}

/// [`try_detection_matrix_multi_on`] on [`Backend::active`].
pub fn try_detection_matrix_multi_wide<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
) -> Result<DetectionMatrix, EngineError> {
    try_detection_matrix_multi_on::<W>(network, faults, tests, Backend::active())
}

/// [`detection_matrix_multi_packed_on`] with typed validation instead of
/// panics.  The packability guard is `P`'s own: [`BitString`] keeps the
/// single-word `n ≤ 64` refusal, `ChannelVec` admits any `n` up to the
/// [channel-line cap](sortnet_network::error::max_channel_lines).
pub fn try_detection_matrix_multi_packed_on<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
) -> Result<DetectionMatrix, EngineError> {
    check_matrix_inputs(network, faults, tests)?;
    Ok(detection_matrix_multi_packed_on::<W, P>(
        network, faults, tests, backend,
    ))
}

/// [`try_detection_matrix_multi_packed_on`] on [`Backend::active`].
pub fn try_detection_matrix_multi_packed<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
) -> Result<DetectionMatrix, EngineError> {
    try_detection_matrix_multi_packed_on::<W, P>(network, faults, tests, Backend::active())
}

/// [`detection_matrix_from_source_on`] with typed validation instead of
/// panics.
pub fn try_detection_matrix_from_source_on<const W: usize, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
    backend: Backend,
) -> Result<(DetectionMatrix, Vec<BitString>), EngineError> {
    try_detection_matrix_from_source_packed_on::<W, BitString, S>(network, faults, source, backend)
}

/// [`try_detection_matrix_from_source_on`] on [`Backend::active`].
pub fn try_detection_matrix_from_source<const W: usize, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
) -> Result<(DetectionMatrix, Vec<BitString>), EngineError> {
    try_detection_matrix_from_source_on(network, faults, source, Backend::active())
}

/// [`detection_matrix_from_source_packed_on`] with typed validation
/// instead of panics.
pub fn try_detection_matrix_from_source_packed_on<
    const W: usize,
    P: TestVector,
    S: BlockSource<W>,
>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
    backend: Backend,
) -> Result<(DetectionMatrix, Vec<P>), EngineError> {
    error::ensure_same_lines(network.lines(), source.lines())?;
    for fault in faults {
        fault.check_in_range(network)?;
    }
    Ok(detection_matrix_from_source_packed_on(
        network, faults, source, backend,
    ))
}

/// [`try_detection_matrix_from_source_packed_on`] on [`Backend::active`].
pub fn try_detection_matrix_from_source_packed<const W: usize, P: TestVector, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
) -> Result<(DetectionMatrix, Vec<P>), EngineError> {
    try_detection_matrix_from_source_packed_on(network, faults, source, Backend::active())
}

/// [`first_detections_multi_on`] with typed validation instead of
/// panics.
pub fn try_first_detections_multi_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    backend: Backend,
) -> Result<Vec<Option<usize>>, EngineError> {
    try_first_detections_multi_packed_on::<W, BitString>(network, faults, tests, backend)
}

/// [`try_first_detections_multi_on`] on [`Backend::active`].
pub fn try_first_detections_multi_wide<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
) -> Result<Vec<Option<usize>>, EngineError> {
    try_first_detections_multi_on::<W>(network, faults, tests, Backend::active())
}

/// [`first_detections_multi_packed_on`] with typed validation instead of
/// panics.
pub fn try_first_detections_multi_packed_on<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
) -> Result<Vec<Option<usize>>, EngineError> {
    check_matrix_inputs(network, faults, tests)?;
    Ok(first_detections_multi_packed_on::<W, P>(
        network, faults, tests, backend,
    ))
}

/// [`redundant_faults_multi_on`] with typed validation instead of
/// panics.
pub fn try_redundant_faults_multi_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    backend: Backend,
) -> Result<Vec<bool>, EngineError> {
    check_exhaustive_inputs(network, faults)?;
    Ok(redundant_faults_multi_on::<W>(network, faults, backend))
}

/// [`try_redundant_faults_multi_on`] on [`Backend::active`].
pub fn try_redundant_faults_multi_wide<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
) -> Result<Vec<bool>, EngineError> {
    try_redundant_faults_multi_on::<W>(network, faults, Backend::active())
}

/// [`detection_matrix_multi_on`] under a [`SweepBudget`]: validated
/// like [`try_detection_matrix_multi_on`], metered at every block
/// boundary and fork site.
///
/// On a trip, the [`Budgeted::Partial`] carries a matrix over the
/// *committed prefix* of `tests` only — [`DetectionMatrix::test_count`]
/// reports how many.  A mid-block trip (fork budget, cancellation,
/// deadline) discards that block's masks entirely, so no
/// partially-swept columns are observable: the partial matrix is
/// bit-identical to the full matrix restricted to its first
/// `test_count` columns, making every per-fault detection count an
/// exact lower bound.
pub fn detection_matrix_multi_budgeted_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    backend: Backend,
    budget: &SweepBudget,
) -> Result<Budgeted<DetectionMatrix>, EngineError> {
    detection_matrix_multi_budgeted_packed_on::<W, BitString>(
        network, faults, tests, backend, budget,
    )
}

/// The packing-generic budgeted-matrix core:
/// [`detection_matrix_multi_budgeted_on`] over any [`TestVector`]
/// representation, with the same whole-block-commit guarantee.
pub fn detection_matrix_multi_budgeted_packed_on<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
    budget: &SweepBudget,
) -> Result<Budgeted<DetectionMatrix>, EngineError> {
    check_matrix_inputs(network, faults, tests)?;
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let words_per_fault = tests.len().div_ceil(64).max(1);
    let mut bits = vec![0u64; faults.len() * words_per_fault];
    let capacity = WideBlock::<W>::capacity() as usize;
    let mut meter = BudgetMeter::new(budget);
    let mut committed = 0usize;
    // Per-block scratch: masks move into `bits` only once the whole
    // block has swept within budget (the no-partial-rows guarantee).
    let mut scratch = vec![[0u64; W]; faults.len()];
    for (block_idx, chunk) in tests.chunks(capacity).enumerate() {
        if !meter.admit_block(chunk.len() as u64) {
            break;
        }
        let block = WideBlock::<W>::from_strings(n, chunk);
        scratch.fill([0u64; W]);
        let swept = sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |_| false,
            |fault_idx, masks: [u64; W]| scratch[fault_idx] = masks,
            &mut meter,
        );
        if !swept {
            break;
        }
        let words_here = chunk.len().div_ceil(64);
        for (fault_idx, masks) in scratch.iter().enumerate() {
            let base = fault_idx * words_per_fault + block_idx * W;
            bits[base..base + words_here].copy_from_slice(&masks[..words_here]);
        }
        committed += chunk.len();
    }
    let matrix = if meter.tripped().is_some() {
        let wpf = committed.div_ceil(64).max(1);
        let mut partial = vec![0u64; faults.len() * wpf];
        for (dst, src) in partial
            .chunks_exact_mut(wpf)
            .zip(bits.chunks_exact(words_per_fault))
        {
            dst.copy_from_slice(&src[..wpf]);
        }
        DetectionMatrix {
            faults: faults.to_vec(),
            test_count: committed,
            words_per_fault: wpf,
            bits: partial,
        }
    } else {
        DetectionMatrix {
            faults: faults.to_vec(),
            test_count: tests.len(),
            words_per_fault,
            bits,
        }
    };
    Ok(meter.finish(matrix))
}

/// [`detection_matrix_multi_budgeted_on`] on [`Backend::active`].
pub fn detection_matrix_multi_budgeted<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    budget: &SweepBudget,
) -> Result<Budgeted<DetectionMatrix>, EngineError> {
    detection_matrix_multi_budgeted_on::<W>(network, faults, tests, Backend::active(), budget)
}

/// [`first_detections_multi_on`] under a [`SweepBudget`].
///
/// In a [`Budgeted::Partial`], a `Some` entry is exact (the same index
/// the unbudgeted sweep returns) and a `None` entry means *undecided
/// over the committed prefix* — a later test may still detect the
/// fault.  In a [`Budgeted::Complete`], `None` means what it always
/// meant: no test detects the fault.
pub fn first_detections_multi_budgeted_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    backend: Backend,
    budget: &SweepBudget,
) -> Result<Budgeted<Vec<Option<usize>>>, EngineError> {
    first_detections_multi_budgeted_packed_on::<W, BitString>(
        network, faults, tests, backend, budget,
    )
}

/// The packing-generic budgeted first-detection core:
/// [`first_detections_multi_budgeted_on`] over any [`TestVector`]
/// representation.
pub fn first_detections_multi_budgeted_packed_on<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
    budget: &SweepBudget,
) -> Result<Budgeted<Vec<Option<usize>>>, EngineError> {
    check_matrix_inputs(network, faults, tests)?;
    let mut meter = BudgetMeter::new(budget);
    let first = first_detections_multi_metered::<W, P>(network, faults, tests, backend, &mut meter);
    Ok(meter.finish(first))
}

/// The meter-threading core of [`first_detections_multi_budgeted_on`]:
/// inputs must already be validated.  `pub(crate)` so a coverage grade
/// (`crate::coverage`) can span its first-detection and redundancy
/// phases with one shared meter — the budget then bounds the whole
/// grade, not each phase separately.
pub(crate) fn first_detections_multi_metered<const W: usize, P: TestVector>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[P],
    backend: Backend,
    meter: &mut BudgetMeter,
) -> Vec<Option<usize>> {
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let mut first: Vec<Option<usize>> = vec![None; faults.len()];
    let mut undetected = faults.len();
    let capacity = WideBlock::<W>::capacity() as usize;
    let mut hits: Vec<(usize, u32)> = Vec::with_capacity(faults.len());
    for (block_idx, chunk) in tests.chunks(capacity).enumerate() {
        if undetected == 0 {
            break;
        }
        if !meter.admit_block(chunk.len() as u64) {
            break;
        }
        let block = WideBlock::<W>::from_strings(n, chunk);
        hits.clear();
        let swept = sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |fault_idx| first[fault_idx].is_some(),
            |fault_idx, masks| {
                if let Some(j) = lanes::mask_first(&masks) {
                    hits.push((fault_idx, j));
                }
            },
            meter,
        );
        if !swept {
            break;
        }
        for &(fault_idx, j) in &hits {
            first[fault_idx] = Some(block_idx * capacity + j as usize);
            undetected -= 1;
        }
    }
    first
}

/// [`first_detections_multi_budgeted_on`] on [`Backend::active`].
pub fn first_detections_multi_budgeted<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    tests: &[BitString],
    budget: &SweepBudget,
) -> Result<Budgeted<Vec<Option<usize>>>, EngineError> {
    first_detections_multi_budgeted_on::<W>(network, faults, tests, Backend::active(), budget)
}

/// [`detection_matrix_from_source_packed_on`] under a [`SweepBudget`]:
/// the streamed candidate-matrix sweep, metered at every block boundary
/// and fork site — this is the engine behind budgeted augmentation
/// candidate sweeps.
///
/// The whole-block-commit invariant of the other budgeted sweeps holds
/// here too: a block's columns and its echoed candidates are committed
/// **together, only after the block sweeps to completion** within
/// budget.  On a trip (block budget, fork budget, deadline or
/// cancellation) the in-flight block is discarded entirely, so the
/// [`Budgeted::Partial`] carries a matrix and candidate list truncated
/// to the same whole-block prefix — bit-identical to the unbudgeted
/// sweep restricted to its first `test_count` candidates, with no
/// partially-swept columns observable.
pub fn detection_matrix_from_source_budgeted_on<
    const W: usize,
    P: TestVector,
    S: BlockSource<W>,
>(
    network: &Network,
    faults: &[MultiFault],
    mut source: S,
    backend: Backend,
    budget: &SweepBudget,
) -> Result<Budgeted<(DetectionMatrix, Vec<P>)>, EngineError> {
    error::ensure_same_lines(network.lines(), source.lines())?;
    for fault in faults {
        fault.check_in_range(network)?;
    }
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); faults.len()];
    let mut candidates: Vec<P> = Vec::new();
    let mut meter = BudgetMeter::new(budget);
    let mut block = WideBlock::<W>::zeroed(n);
    // Per-block scratch: masks and candidates reach `rows`/`candidates`
    // only once the whole block has swept within budget.
    let mut scratch = vec![[0u64; W]; faults.len()];
    while source.next_block(&mut block) {
        let count = block.count() as usize;
        if !meter.admit_block(count as u64) {
            break;
        }
        scratch.fill([0u64; W]);
        let swept = sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |_| false,
            |fault_idx, masks: [u64; W]| scratch[fault_idx] = masks,
            &mut meter,
        );
        if !swept {
            break;
        }
        let offset = candidates.len();
        candidates.extend((0..block.count()).map(|j| block.extract_packed::<P>(j)));
        for (fault_idx, masks) in scratch.iter().enumerate() {
            append_mask_bits(&mut rows[fault_idx], offset, masks, count);
        }
    }
    let test_count = candidates.len();
    let words_per_fault = test_count.div_ceil(64).max(1);
    let mut bits = vec![0u64; faults.len() * words_per_fault];
    for (f, row) in rows.iter().enumerate() {
        bits[f * words_per_fault..f * words_per_fault + row.len()].copy_from_slice(row);
    }
    let matrix = DetectionMatrix {
        faults: faults.to_vec(),
        test_count,
        words_per_fault,
        bits,
    };
    Ok(meter.finish((matrix, candidates)))
}

/// [`detection_matrix_from_source_budgeted_on`] on [`Backend::active`].
pub fn detection_matrix_from_source_budgeted<const W: usize, P: TestVector, S: BlockSource<W>>(
    network: &Network,
    faults: &[MultiFault],
    source: S,
    budget: &SweepBudget,
) -> Result<Budgeted<(DetectionMatrix, Vec<P>)>, EngineError> {
    detection_matrix_from_source_budgeted_on(network, faults, source, Backend::active(), budget)
}

/// [`redundant_faults_multi_on`] under a [`SweepBudget`]: the streamed
/// `2^n` batch redundancy sweep, metered at every block boundary and
/// fork site.
///
/// Verdicts are three-valued while the budget may trip: `Some(false)`
/// is a witnessed detection (exact — the fault is *not* redundant),
/// `Some(true)` is issued only when the full `2^n` family has been
/// swept, and `None` in a [`Budgeted::Partial`] means the fault
/// survived the committed prefix but later inputs were never tried.
/// A [`Budgeted::Complete`] outcome never contains `None`.
pub fn redundant_faults_multi_budgeted_on<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    backend: Backend,
    budget: &SweepBudget,
) -> Result<Budgeted<Vec<Option<bool>>>, EngineError> {
    check_exhaustive_inputs(network, faults)?;
    let mut meter = BudgetMeter::new(budget);
    let verdicts = redundant_faults_multi_metered::<W>(network, faults, backend, &mut meter);
    Ok(meter.finish(verdicts))
}

/// The meter-threading core of [`redundant_faults_multi_budgeted_on`]:
/// inputs must already be validated.  `pub(crate)` for the same
/// shared-meter reason as [`first_detections_multi_metered`].
pub(crate) fn redundant_faults_multi_metered<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    backend: Backend,
    meter: &mut BudgetMeter,
) -> Vec<Option<bool>> {
    if faults.is_empty() {
        return Vec::new();
    }
    let n = network.lines();
    let plan = SweepPlan::new(network, faults);
    let mut verdicts: Vec<Option<bool>> = vec![None; faults.len()];
    let mut undecided = faults.len();
    let mut hits: Vec<usize> = Vec::with_capacity(faults.len());
    for b in 0..bitparallel::sweep_block_count_wide::<W>(n) {
        if undecided == 0 {
            break;
        }
        let (start, count) = bitparallel::sweep_block_range_wide::<W>(n, b);
        if !meter.admit_block(u64::from(count)) {
            break;
        }
        let block = WideBlock::<W>::from_range(n, start, count);
        hits.clear();
        let swept = sweep_block_multi(
            network,
            backend,
            &plan,
            faults,
            &block,
            |fault_idx| verdicts[fault_idx].is_some(),
            |fault_idx, masks| {
                if lanes::mask_any(&masks) {
                    hits.push(fault_idx);
                }
            },
            meter,
        );
        if !swept {
            break;
        }
        for &fault_idx in &hits {
            verdicts[fault_idx] = Some(false);
            undecided -= 1;
        }
    }
    if meter.tripped().is_none() {
        for verdict in &mut verdicts {
            if verdict.is_none() {
                *verdict = Some(true);
            }
        }
    }
    verdicts
}

/// [`redundant_faults_multi_budgeted_on`] on [`Backend::active`].
pub fn redundant_faults_multi_budgeted<const W: usize>(
    network: &Network,
    faults: &[MultiFault],
    budget: &SweepBudget,
) -> Result<Budgeted<Vec<Option<bool>>>, EngineError> {
    redundant_faults_multi_budgeted_on::<W>(network, faults, Backend::active(), budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::enumerate_faults;
    use crate::simulate::{detects, faulty_apply_bits, first_detection_index, is_fault_redundant};
    use sortnet_network::bitparallel::BitBlock;
    use sortnet_network::builders::batcher::odd_even_merge_sort;

    #[test]
    fn faulty_run_block_matches_scalar_simulation_exhaustively() {
        let net = odd_even_merge_sort(6);
        let inputs: Vec<BitString> = BitString::all(6).collect();
        for fault in enumerate_faults(&net) {
            for chunk in inputs.chunks(64) {
                let mut block = BitBlock::from_strings(6, chunk);
                faulty_run_block(&net, &fault, &mut block);
                for (j, input) in chunk.iter().enumerate() {
                    assert_eq!(
                        block.extract(j as u32),
                        faulty_apply_bits(&net, &fault, input),
                        "fault {fault:?} input {input}"
                    );
                }
            }
        }
    }

    #[test]
    fn faulty_run_block_is_width_independent() {
        let net = odd_even_merge_sort(5);
        let inputs: Vec<BitString> = BitString::all(5).collect();
        for fault in enumerate_faults(&net) {
            let mut wide = WideBlock::<2>::from_strings(5, &inputs);
            faulty_run_block(&net, &fault, &mut wide);
            for (j, input) in inputs.iter().enumerate() {
                assert_eq!(
                    wide.extract(j as u32),
                    faulty_apply_bits(&net, &fault, input),
                    "fault {fault:?} input {input}"
                );
            }
        }
    }

    #[test]
    fn detection_matrix_agrees_with_scalar_detects() {
        let net = odd_even_merge_sort(5);
        let faults = enumerate_faults(&net);
        let tests: Vec<BitString> = BitString::all(5).collect();
        let matrix = detection_matrix(&net, &faults, &tests);
        assert_eq!(matrix.fault_count(), faults.len());
        assert_eq!(matrix.test_count(), tests.len());
        for (f, fault) in faults.iter().enumerate() {
            for (t, test) in tests.iter().enumerate() {
                assert_eq!(
                    matrix.is_detected_by(f, t),
                    detects(&net, fault, test),
                    "fault {fault:?} test {test}"
                );
            }
        }
    }

    #[test]
    fn detection_matrix_is_identical_at_every_width() {
        let net = odd_even_merge_sort(6);
        let faults = enumerate_faults(&net);
        let tests: Vec<BitString> = BitString::all_unsorted(6).collect();
        let w1 = detection_matrix_wide::<1>(&net, &faults, &tests);
        let w2 = detection_matrix_wide::<2>(&net, &faults, &tests);
        let w4 = detection_matrix_wide::<4>(&net, &faults, &tests);
        assert_eq!(w1, w2);
        assert_eq!(w1, w4);
        assert_eq!(
            first_detections_wide::<1>(&net, &faults, &tests),
            first_detections_wide::<4>(&net, &faults, &tests)
        );
    }

    #[test]
    fn matrix_summaries_match_their_bitwise_definitions() {
        let net = odd_even_merge_sort(5);
        let faults = enumerate_faults(&net);
        let tests: Vec<BitString> = BitString::all(5).collect();
        let matrix = detection_matrix(&net, &faults, &tests);
        for (f, fault) in faults.iter().enumerate() {
            assert_eq!(
                matrix.first_detection(f),
                first_detection_index(&net, fault, &tests)
            );
            assert_eq!(matrix.detected(f), matrix.first_detection(f).is_some());
            assert_eq!(
                matrix.detection_count(f),
                tests.iter().filter(|t| detects(&net, fault, t)).count()
            );
        }
    }

    #[test]
    fn first_detections_early_exit_matches_the_full_matrix() {
        let net = odd_even_merge_sort(6);
        let faults = enumerate_faults(&net);
        let tests: Vec<BitString> = BitString::all_unsorted(6).collect();
        let matrix = detection_matrix(&net, &faults, &tests);
        let firsts = first_detections(&net, &faults, &tests);
        for f in 0..faults.len() {
            assert_eq!(
                firsts[f],
                matrix.first_detection(f),
                "fault {:?}",
                faults[f]
            );
        }
    }

    #[test]
    fn bitparallel_redundancy_agrees_with_scalar_at_every_width() {
        let net = odd_even_merge_sort(6);
        for fault in enumerate_faults(&net) {
            let scalar = is_fault_redundant(&net, &fault);
            assert_eq!(
                is_fault_redundant_bitparallel(&net, &fault),
                scalar,
                "fault {fault:?}"
            );
            assert_eq!(
                is_fault_redundant_wide::<1>(&net, &fault),
                scalar,
                "fault {fault:?} (W = 1)"
            );
            assert_eq!(
                is_fault_redundant_wide::<8>(&net, &fault),
                scalar,
                "fault {fault:?} (W = 8)"
            );
        }
    }

    #[test]
    fn degenerate_misroute_onto_own_top_is_a_no_op_in_both_engines() {
        // enumerate_faults never emits this shape, but the Fault type
        // admits it; the scalar simulator treats it as a no-op.
        let net = odd_even_merge_sort(5);
        let fault = Fault {
            comparator: 2,
            kind: crate::model::FaultKind::Misrouted {
                new_bottom: net.comparators()[2].top(),
            },
        };
        let inputs: Vec<BitString> = BitString::all(5).collect();
        let mut block = BitBlock::from_strings(5, &inputs[..32]);
        faulty_run_block(&net, &fault, &mut block);
        for (j, input) in inputs[..32].iter().enumerate() {
            assert_eq!(
                block.extract(j as u32),
                faulty_apply_bits(&net, &fault, input)
            );
        }
    }

    #[test]
    fn batch_redundancy_sweep_matches_the_per_fault_rerun_path() {
        // The ROADMAP fix: one streamed 2^n pass with shared-prefix forking
        // must classify exactly like the old per-fault re-run path (and the
        // scalar oracle) on every single-comparator fault.
        for n in [4usize, 6, 8] {
            let net = odd_even_merge_sort(n);
            let faults = enumerate_faults(&net);
            let multi: Vec<MultiFault> = faults.iter().copied().map(MultiFault::from).collect();
            let batch = redundant_faults_multi_wide::<4>(&net, &multi);
            let batch_w1 = redundant_faults_multi_wide::<1>(&net, &multi);
            assert_eq!(batch, batch_w1, "n={n}: width must not change verdicts");
            for (i, fault) in faults.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    is_fault_redundant_wide::<4>(&net, fault),
                    "n={n} fault {fault:?}"
                );
                assert_eq!(
                    batch[i],
                    is_fault_redundant(&net, fault),
                    "n={n} fault {fault:?} (scalar)"
                );
            }
        }
    }

    #[test]
    fn empty_batch_redundancy_sweep_is_accepted_even_beyond_the_sweep_bound() {
        // coverage_of_universe_with(check_redundancy = true) calls the
        // batch sweep with exactly the missed faults; when nothing was
        // missed that slice is empty and must not trip the n < 32
        // exhaustive-sweep assert (the old per-fault path short-circuited
        // the same way).
        let net = odd_even_merge_sort(32);
        assert!(net.lines() >= 32);
        assert_eq!(
            redundant_faults_multi_wide::<4>(&net, &[]),
            Vec::<bool>::new()
        );
    }

    #[test]
    fn sweep_plan_groups_realise_the_two_level_fork_invariant() {
        // The plan must (a) visit every fault exactly once, (b) group
        // faults by identical first lesion into contiguous runs, (c) keep
        // group fork sites nondecreasing across the sweep, and (d) keep
        // second-lesion sites nondecreasing within each group — the two
        // ordering preconditions `sweep_block_multi` debug-asserts.
        use crate::universe::{FaultUniverse, StandardUniverse};
        let net = odd_even_merge_sort(6);
        for universe in StandardUniverse::ALL {
            let faults: Vec<MultiFault> = universe.iter(&net).collect();
            let plan = SweepPlan::new(&net, &faults);
            let mut seen: Vec<usize> = plan.members.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..faults.len()).collect::<Vec<_>>());
            let mut prev_site = 0usize;
            let mut first_lesions = Vec::new();
            for group in plan.groups() {
                let first = faults[group[0]].lesions()[0];
                assert!(first.fork_site() >= prev_site, "{}", universe.name());
                prev_site = first.fork_site();
                first_lesions.push(first);
                let mut prev_second = 0usize;
                for &idx in group {
                    assert_eq!(
                        faults[idx].lesions()[0],
                        first,
                        "{}: group must share its first lesion",
                        universe.name()
                    );
                    let second = faults[idx].lesions().get(1).map_or(0, Lesion::fork_site);
                    assert!(second >= prev_second, "{}", universe.name());
                    prev_second = second;
                }
            }
            // Grouping is maximal: no first lesion spans two groups.
            let unique: std::collections::HashSet<_> = first_lesions.iter().collect();
            assert_eq!(unique.len(), first_lesions.len(), "{}", universe.name());
            // Pair universes actually exercise the second fork level.
            if matches!(
                universe,
                StandardUniverse::SingleComparatorPairs | StandardUniverse::StuckLinePairs
            ) {
                assert!(
                    plan.groups().any(|g| g.len() > 1),
                    "{}: expected multi-member groups",
                    universe.name()
                );
            }
        }
    }

    #[test]
    fn multi_run_block_matches_the_scalar_lesion_timeline() {
        use crate::universe::{multi_faulty_apply_bits, FaultUniverse, StandardUniverse};
        let net = odd_even_merge_sort(5);
        let inputs: Vec<BitString> = BitString::all(5).collect();
        for universe in StandardUniverse::ALL {
            for mf in universe.iter(&net) {
                let mut block = WideBlock::<2>::from_strings(5, &inputs);
                multi_faulty_run_block(&net, &mf, &mut block);
                for (j, input) in inputs.iter().enumerate() {
                    assert_eq!(
                        block.extract(j as u32),
                        multi_faulty_apply_bits(&net, &mf, input),
                        "universe {} fault {mf} input {input}",
                        universe.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bitparallel_engine_matches_scalar_at_the_word_boundary() {
        // n ∈ {63, 64}: the lane engine indexes lanes (no word shifts by
        // line), but its verdicts must still agree with the scalar word
        // engine whose stuck injection shifts `1u64 << line` at bit 62/63.
        use crate::universe::{multi_faulty_apply_bits, FaultUniverse, StuckLine};
        for n in [63usize, 64] {
            let net = Network::from_pairs(n, &[(0, n - 1), (n - 2, n - 1), (0, 1)]);
            let inputs: Vec<BitString> = [
                0u64,
                u64::MAX,
                1u64 << (n - 1),
                u64::MAX ^ (1u64 << (n - 1)),
                0x8000_0000_0000_0001,
            ]
            .into_iter()
            .map(|w| BitString::from_word(w, n))
            .collect();
            for mf in StuckLine.iter(&net) {
                let mut block = WideBlock::<1>::from_strings(n, &inputs);
                multi_faulty_run_block(&net, &mf, &mut block);
                for (j, input) in inputs.iter().enumerate() {
                    assert_eq!(
                        block.extract(j as u32),
                        multi_faulty_apply_bits(&net, &mf, input),
                        "n={n} fault {mf} input {input}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_fault_wrappers_agree_with_the_multi_core() {
        let net = odd_even_merge_sort(6);
        let faults = enumerate_faults(&net);
        let multi: Vec<MultiFault> = faults.iter().copied().map(MultiFault::from).collect();
        let tests: Vec<BitString> = BitString::all_unsorted(6).collect();
        assert_eq!(
            detection_matrix_wide::<2>(&net, &faults, &tests),
            detection_matrix_multi_wide::<2>(&net, &multi, &tests)
        );
        assert_eq!(
            first_detections_wide::<2>(&net, &faults, &tests),
            first_detections_multi_wide::<2>(&net, &multi, &tests)
        );
        for (i, fault) in multi.iter().enumerate() {
            assert_eq!(
                is_multi_fault_redundant_wide::<2>(&net, fault),
                is_fault_redundant_wide::<2>(&net, &faults[i])
            );
        }
    }

    #[test]
    fn streamed_matrix_equals_the_materialised_matrix_for_every_universe() {
        use crate::universe::{FaultUniverse, StandardUniverse};
        use sortnet_network::lanes::{ChainSource, IterSource, RangeSource};
        let net = odd_even_merge_sort(6);
        let tests: Vec<BitString> = BitString::all(6).collect();
        for universe in StandardUniverse::ALL {
            let faults: Vec<MultiFault> = universe.iter(&net).collect();
            let expected = detection_matrix_multi_wide::<2>(&net, &faults, &tests);
            let (streamed, candidates) =
                detection_matrix_from_source::<2, _>(&net, &faults, RangeSource::exhaustive(6));
            assert_eq!(streamed, expected, "universe {}", universe.name());
            assert_eq!(candidates, tests, "universe {}", universe.name());
        }
        // A chained source with a partial block mid-stream (the 7 sorted
        // strings end inside the first block) must index columns by
        // cumulative count, matching the materialised concatenation.
        let faults: Vec<MultiFault> = StandardUniverse::StuckLine.iter(&net).collect();
        let sorted: Vec<BitString> = (0..=6)
            .map(|ones| BitString::sorted_with(6 - ones, ones))
            .collect();
        let chained: Vec<BitString> = sorted
            .iter()
            .copied()
            .chain(BitString::all_unsorted(6))
            .collect();
        let expected = detection_matrix_multi_wide::<1>(&net, &faults, &chained);
        let (streamed, candidates) = detection_matrix_from_source::<1, _>(
            &net,
            &faults,
            ChainSource::new(
                IterSource::new(6, sorted),
                IterSource::new(6, BitString::all_unsorted(6)),
            ),
        );
        assert_eq!(streamed, expected);
        assert_eq!(candidates, chained);
    }

    #[test]
    fn row_words_expose_the_packed_detection_bitmap() {
        let net = odd_even_merge_sort(5);
        let faults = enumerate_faults(&net);
        let tests: Vec<BitString> = BitString::all(5).collect();
        let matrix = detection_matrix(&net, &faults, &tests);
        for f in 0..faults.len() {
            let row = matrix.row_words(f);
            assert_eq!(row.len(), tests.len().div_ceil(64));
            for (t, _) in tests.iter().enumerate() {
                assert_eq!(
                    (row[t / 64] >> (t % 64)) & 1 == 1,
                    matrix.is_detected_by(f, t)
                );
            }
        }
    }

    #[test]
    fn empty_test_list_yields_an_all_clear_matrix() {
        let net = odd_even_merge_sort(4);
        let faults = enumerate_faults(&net);
        let matrix = detection_matrix(&net, &faults, &[]);
        assert_eq!(matrix.test_count(), 0);
        for f in 0..faults.len() {
            assert!(!matrix.detected(f));
            assert_eq!(matrix.first_detection(f), None);
        }
        assert_eq!(
            first_detections(&net, &faults, &[]),
            vec![None; faults.len()]
        );
    }

    #[test]
    fn try_variants_reject_bad_inputs_and_match_the_panicking_engine() {
        let net = odd_even_merge_sort(5);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        let tests: Vec<BitString> = BitString::all_unsorted(5).collect();
        let bad = vec![BitString::from_word(0, 4)];
        assert_eq!(
            try_detection_matrix_multi_wide::<2>(&net, &multi, &bad).unwrap_err(),
            sortnet_network::EngineError::InputLengthMismatch {
                expected: 5,
                actual: 4
            }
        );
        let rogue = MultiFault::from(Fault {
            comparator: net.size(),
            kind: FaultKind::StuckPass,
        });
        assert!(matches!(
            try_first_detections_multi_wide::<1>(&net, &[rogue], &tests).unwrap_err(),
            sortnet_network::EngineError::IndexOutOfRange { .. }
        ));
        assert_eq!(
            try_detection_matrix_multi_wide::<2>(&net, &multi, &tests).unwrap(),
            detection_matrix_multi_wide::<2>(&net, &multi, &tests)
        );
        assert_eq!(
            try_first_detections_multi_wide::<2>(&net, &multi, &tests).unwrap(),
            first_detections_multi_wide::<2>(&net, &multi, &tests)
        );
        assert_eq!(
            try_redundant_faults_multi_wide::<2>(&net, &multi).unwrap(),
            redundant_faults_multi_wide::<2>(&net, &multi)
        );
        // The empty-slice escape hatch of the panicking path survives.
        let huge = odd_even_merge_sort(32);
        assert_eq!(
            try_redundant_faults_multi_wide::<2>(&huge, &[]).unwrap(),
            []
        );
        // Streamed matrices validate the source's line count.
        use sortnet_network::lanes::RangeSource;
        assert!(matches!(
            try_detection_matrix_from_source::<1, _>(&net, &multi, RangeSource::exhaustive(6))
                .unwrap_err(),
            sortnet_network::EngineError::ChannelMismatch {
                expected: 5,
                actual: 6
            }
        ));
        let (streamed, candidates) =
            try_detection_matrix_from_source::<1, _>(&net, &multi, RangeSource::exhaustive(5))
                .unwrap();
        let all: Vec<BitString> = BitString::all(5).collect();
        assert_eq!(candidates, all);
        assert_eq!(
            streamed,
            detection_matrix_multi_wide::<1>(&net, &multi, &all)
        );
    }

    #[test]
    fn budgeted_matrix_partial_is_an_exact_prefix_of_the_full_matrix() {
        use sortnet_network::budget::BudgetReason;
        let net = odd_even_merge_sort(7);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        let tests: Vec<BitString> = BitString::all(7).collect(); // 128 = two W=1 blocks
        let full = detection_matrix_multi_on::<1>(&net, &multi, &tests, Backend::Scalar);
        let complete = detection_matrix_multi_budgeted_on::<1>(
            &net,
            &multi,
            &tests,
            Backend::Scalar,
            &SweepBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(complete, Budgeted::Complete(full));
        let partial = detection_matrix_multi_budgeted_on::<1>(
            &net,
            &multi,
            &tests,
            Backend::Scalar,
            &SweepBudget::unlimited().with_max_blocks(1),
        )
        .unwrap();
        match partial {
            Budgeted::Partial {
                progress,
                reason,
                best_so_far,
            } => {
                assert_eq!(reason, BudgetReason::Blocks);
                assert_eq!(progress.blocks, 1);
                assert_eq!(progress.vectors, 64);
                assert_eq!(
                    best_so_far,
                    detection_matrix_multi_on::<1>(&net, &multi, &tests[..64], Backend::Scalar)
                );
            }
            Budgeted::Complete(_) => panic!("a one-block budget must trip on two blocks"),
        }
    }

    #[test]
    fn a_fork_trip_discards_the_inflight_block_entirely() {
        use sortnet_network::budget::BudgetReason;
        let net = odd_even_merge_sort(6);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        assert!(multi.len() > 3);
        let tests: Vec<BitString> = BitString::all(6).collect();
        let out = detection_matrix_multi_budgeted_on::<1>(
            &net,
            &multi,
            &tests,
            Backend::Scalar,
            &SweepBudget::unlimited().with_max_forks(3),
        )
        .unwrap();
        match out {
            Budgeted::Partial {
                reason,
                best_so_far,
                ..
            } => {
                // The fork budget tripped inside the first block, so the
                // partial matrix must not expose any of its columns.
                assert_eq!(reason, BudgetReason::Forks);
                assert_eq!(best_so_far.test_count(), 0);
                assert!((0..multi.len()).all(|f| !best_so_far.detected(f)));
            }
            Budgeted::Complete(_) => panic!("a three-fork budget must trip"),
        }
    }

    #[test]
    fn budgeted_first_detections_are_exact_inside_the_committed_prefix() {
        let net = odd_even_merge_sort(7);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        let tests: Vec<BitString> = BitString::all_unsorted(7).collect();
        let full = first_detections_multi_on::<1>(&net, &multi, &tests, Backend::Scalar);
        let out = first_detections_multi_budgeted_on::<1>(
            &net,
            &multi,
            &tests,
            Backend::Scalar,
            &SweepBudget::unlimited().with_max_blocks(1),
        )
        .unwrap();
        let committed = if out.is_complete() { tests.len() } else { 64 };
        for (partial, expected) in out.into_value().iter().zip(&full) {
            match partial {
                Some(i) => {
                    assert!(*i < committed);
                    assert_eq!(Some(*i), *expected);
                }
                None => assert!(expected.is_none() || expected.unwrap() >= committed),
            }
        }
    }

    #[test]
    fn budgeted_redundancy_degrades_to_three_valued_verdicts() {
        let net = odd_even_merge_sort(6);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        let full = redundant_faults_multi_on::<1>(&net, &multi, Backend::Scalar);
        let complete = redundant_faults_multi_budgeted_on::<1>(
            &net,
            &multi,
            Backend::Scalar,
            &SweepBudget::unlimited(),
        )
        .unwrap();
        assert!(complete.is_complete());
        assert_eq!(
            complete.into_value(),
            full.iter().map(|&b| Some(b)).collect::<Vec<_>>()
        );
        // A zero-block budget decides nothing: all verdicts stay open.
        let starved = redundant_faults_multi_budgeted_on::<1>(
            &net,
            &multi,
            Backend::Scalar,
            &SweepBudget::unlimited().with_max_blocks(0),
        )
        .unwrap();
        assert!(!starved.is_complete());
        assert!(starved.value().iter().all(Option::is_none));
        // A one-block budget may only issue witnessed (false) verdicts,
        // and each must agree with the full sweep.
        let partial = redundant_faults_multi_budgeted_on::<1>(
            &net,
            &multi,
            Backend::Scalar,
            &SweepBudget::unlimited().with_max_blocks(1),
        )
        .unwrap();
        for (verdict, &expected) in partial.value().iter().zip(&full) {
            if let Some(v) = verdict {
                assert!(partial.is_complete() || !*v);
                assert_eq!(*v, expected);
            }
        }
    }

    #[test]
    fn packed_matrix_crosses_the_64_line_wall_and_matches_the_channel_oracle() {
        // n = 96 (two channel words): the packed engine must agree bit for
        // bit with the scalar channel simulator on every stuck-line fault,
        // at W = 1 and W = 4, for BitString-impossible line counts.
        use crate::universe::{FaultUniverse, StuckLine};
        use sortnet_combinat::ChannelVec;
        let n = 96usize;
        let net = Network::from_pairs(n, &[(0, 95), (0, 64), (63, 65), (31, 64), (0, 1)]);
        let faults: Vec<MultiFault> = StuckLine.iter(&net).collect();
        let tests: Vec<ChannelVec> = vec![
            ChannelVec::zeros(n),
            ChannelVec::ones(n),
            ChannelVec::from_fn(n, |i| i == 64),
            ChannelVec::from_fn(n, |i| i != 63),
            ChannelVec::from_fn(n, |i| i % 2 == 0),
            ChannelVec::from_fn(n, |i| (32..66).contains(&i)),
        ];
        let w1 = detection_matrix_multi_packed_on::<1, ChannelVec>(
            &net,
            &faults,
            &tests,
            Backend::Scalar,
        );
        let w4 = detection_matrix_multi_packed::<4, ChannelVec>(&net, &faults, &tests);
        assert_eq!(w1, w4, "channel matrix must be width-independent");
        for (f, fault) in faults.iter().enumerate() {
            for (t, test) in tests.iter().enumerate() {
                assert_eq!(
                    w1.is_detected_by(f, t),
                    crate::universe::multi_detects_channels(&net, fault, test),
                    "fault {fault} test {test}"
                );
            }
        }
        assert_eq!(
            try_detection_matrix_multi_packed::<1, ChannelVec>(&net, &faults, &tests).unwrap(),
            w1
        );
        assert_eq!(
            first_detections_multi_packed_on::<2, ChannelVec>(
                &net,
                &faults,
                &tests,
                Backend::Scalar
            ),
            (0..faults.len())
                .map(|f| w1.first_detection(f))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn budgeted_streamed_matrix_commits_whole_blocks_only() {
        use sortnet_network::budget::BudgetReason;
        use sortnet_network::lanes::IterSource;
        let net = odd_even_merge_sort(7);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        let tests: Vec<BitString> = BitString::all(7).collect(); // 128 = two W=1 blocks
        let (full, all) = detection_matrix_from_source_packed_on::<1, BitString, _>(
            &net,
            &multi,
            IterSource::new(7, tests.clone()),
            Backend::Scalar,
        );
        let complete = detection_matrix_from_source_budgeted_on::<1, BitString, _>(
            &net,
            &multi,
            IterSource::new(7, tests.clone()),
            Backend::Scalar,
            &SweepBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(complete, Budgeted::Complete((full.clone(), all)));
        let partial = detection_matrix_from_source_budgeted_on::<1, BitString, _>(
            &net,
            &multi,
            IterSource::new(7, tests.clone()),
            Backend::Scalar,
            &SweepBudget::unlimited().with_max_blocks(1),
        )
        .unwrap();
        match partial {
            Budgeted::Partial {
                progress,
                reason,
                best_so_far: (matrix, candidates),
            } => {
                assert_eq!(reason, BudgetReason::Blocks);
                assert_eq!(progress.vectors, 64);
                // Whole-block commit: exactly one block of candidates, and
                // the matrix is the full matrix restricted to that prefix.
                assert_eq!(candidates, tests[..64]);
                assert_eq!(
                    matrix,
                    detection_matrix_multi_on::<1>(&net, &multi, &tests[..64], Backend::Scalar)
                );
            }
            Budgeted::Complete(_) => panic!("a one-block budget must trip on two blocks"),
        }
    }

    #[test]
    fn cancelling_the_streamed_matrix_discards_the_inflight_block() {
        use sortnet_network::budget::{BudgetReason, CancelToken};
        use sortnet_network::lanes::IterSource;
        let net = odd_even_merge_sort(6);
        let multi: Vec<MultiFault> = enumerate_faults(&net)
            .iter()
            .copied()
            .map(MultiFault::from)
            .collect();
        let tests: Vec<BitString> = BitString::all(6).collect();
        // A pre-cancelled token: the very first admission poll must trip,
        // and the whole-block-commit rule then demands an empty matrix —
        // no candidates, no columns from any block.
        let token = CancelToken::new();
        token.cancel();
        let out = detection_matrix_from_source_budgeted_on::<1, BitString, _>(
            &net,
            &multi,
            IterSource::new(6, tests),
            Backend::Scalar,
            &SweepBudget::unlimited().with_cancel(token),
        )
        .unwrap();
        match out {
            Budgeted::Partial {
                reason,
                best_so_far: (matrix, candidates),
                ..
            } => {
                assert_eq!(reason, BudgetReason::Cancelled);
                assert!(candidates.is_empty());
                assert_eq!(matrix.test_count(), 0);
                assert!((0..multi.len()).all(|f| !matrix.detected(f)));
            }
            Budgeted::Complete(_) => panic!("a cancelled sweep must come back partial"),
        }
    }
}
